//! `comms` — a message-passing collectives runtime.
//!
//! Unlike `samo::data_parallel`, where all ranks live in one `Vec` and a
//! sequential loop averages gradients in place, this crate moves real
//! messages between real OS threads: each rank owns a [`Transport`]
//! endpoint (typed channels in process today; the trait is shaped so a
//! TCP framing can slot in later) and a [`Communicator`] implementing
//! `barrier`, `broadcast`, `all_gather`, and a **chunked ring
//! all-reduce** over compressed fp16 gradient buckets — the collective
//! the paper's Sec. IV-A runs on `∇θ16` to cut message volume by `1/f`.
//!
//! # Determinism
//!
//! The ring all-reduce is bitwise-reproducible regardless of thread
//! timing, and bitwise-identical to the sequential oracle in
//! [`mod@reference`], because the reduction arithmetic is *exact*: every
//! finite f16 value is an integer multiple of 2⁻²⁴ with magnitude below
//! 2⁴¹·2⁻²⁴, so a sum of up to 2¹² such values fits in f64's 53-bit
//! mantissa without rounding. Exact addition is associative and
//! commutative, so the ring's per-segment accumulation order and the
//! oracle's rank-order loop compute the same f64 sum bit-for-bit; one
//! shared final rounding (`reference::f16_mean_from_exact_sum`) turns it
//! into the same f16 everywhere. See DESIGN.md §12 for the full
//! argument, including the non-finite cases.
//!
//! # Fault injection
//!
//! Every link of an in-process mesh consults a shared
//! [`FaultController`]: tests cut links (messages silently vanish, the
//! receiver times out with a [`CommsError::Timeout`] instead of
//! hanging), delay them, or drive seeded per-message jitter from
//! `summit_sim`'s failure models.

pub mod bootstrap;
pub mod collectives;
pub mod fault;
pub mod heartbeat;
pub mod reference;
pub mod tcp;
pub mod trace;
pub mod transport;

pub use bootstrap::{bootstrap_tcp, BootstrapConfig, BootstrapInfo, Rendezvous};
pub use collectives::Communicator;
pub use fault::FaultController;
pub use heartbeat::HeartbeatConfig;
pub use tcp::TcpTransport;
pub use transport::{InProcTransport, Kind, Message, Payload, Tag, Transport};

use std::fmt;

/// Errors a collective can surface. All are fail-stop: after any error
/// the communicator's in-flight state is undefined and the caller must
/// [`Communicator::bump_epoch`] (draining stale traffic) before reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommsError {
    /// No message arrived from `from` before the deadline — a cut link,
    /// a dead peer, or a peer wedged in an earlier collective.
    Timeout { rank: usize, from: usize },
    /// The peer's endpoint was dropped entirely (rank death).
    Closed { rank: usize, peer: usize },
    /// Ranks disagree about a collective's layout or message schedule —
    /// a programming error, not a transient fault.
    Mismatch(String),
    /// A previous collective failed and the communicator has not been
    /// recovered; refusing to run rather than deadlock on stale traffic.
    Poisoned,
    /// A socket-level failure (bind, connect, read, write, or a
    /// malformed frame). Carries the OS error text; like every other
    /// variant it is fail-stop, never a panic or a hang.
    Io(String),
    /// Heartbeat-based failure detection declared `peer` dead: its
    /// traffic went silent for longer than the configured liveness
    /// window. Surfaced *immediately* by receives instead of waiting
    /// out the deadline, so recovery starts within the heartbeat
    /// window, not the collective timeout.
    PeerDead { rank: usize, peer: usize },
}

impl fmt::Display for CommsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommsError::Timeout { rank, from } => {
                write!(f, "rank {rank}: timed out waiting on rank {from}")
            }
            CommsError::Closed { rank, peer } => {
                write!(f, "rank {rank}: link to rank {peer} is closed")
            }
            CommsError::Mismatch(msg) => write!(f, "collective mismatch: {msg}"),
            CommsError::Poisoned => {
                write!(f, "communicator poisoned by an earlier failure; recover first")
            }
            CommsError::Io(msg) => write!(f, "transport I/O error: {msg}"),
            CommsError::PeerDead { rank, peer } => {
                write!(f, "rank {rank}: peer {peer} declared dead (missed heartbeats)")
            }
        }
    }
}

impl std::error::Error for CommsError {}

/// Per-rank wire bytes of a bandwidth-optimal ring all-reduce over `n`
/// elements of `elem_bytes` each across `world` ranks:
/// `2·(G−1)/G · n · elem_bytes` (the reduce-scatter and all-gather
/// phases each move `(G−1)/G` of the buffer). This is the model both
/// byte-accounting formulas in `samo::trainer` and the `repro comms`
/// bench report; a single rank moves nothing.
pub fn ring_allreduce_model_bytes(n: u64, world: u64, elem_bytes: u64) -> u64 {
    if world <= 1 {
        return 0;
    }
    2 * elem_bytes * n * (world - 1) / world
}

/// Contiguous partition of `n` elements into `parts` chunks, remainder
/// spread one-per-chunk from the front — the same rule
/// `samo::sharded::shard_bounds` uses for optimizer shards, duplicated
/// here so `comms` stays independent of the training crates.
pub fn segment_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts >= 1);
    let base = n / parts;
    let rem = n % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_bytes_ring_formula() {
        // G=2 coincides with the naive 2·n·elem formula.
        assert_eq!(ring_allreduce_model_bytes(100, 2, 2), 200);
        // G=4: 2 · 3/4 · n · 2B.
        assert_eq!(ring_allreduce_model_bytes(100, 4, 2), 300);
        // Single rank moves nothing; dense f16 at G=8.
        assert_eq!(ring_allreduce_model_bytes(100, 1, 2), 0);
        assert_eq!(ring_allreduce_model_bytes(1 << 20, 8, 2), 2 * 7 * (1 << 20) / 8 * 2);
    }

    #[test]
    fn segment_bounds_cover_everything_once() {
        for n in [0usize, 1, 5, 8, 13, 64] {
            for g in 1..=9 {
                let b = segment_bounds(n, g);
                assert_eq!(b.len(), g);
                assert_eq!(b[0].0, 0);
                assert_eq!(b[g - 1].1, n);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
                // Balanced within one element.
                let lens: Vec<usize> = b.iter().map(|(lo, hi)| hi - lo).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }
}
