//! The collectives: barrier, broadcast, all-gather, and the chunked
//! ring all-reduce, implemented over any [`Transport`].
//!
//! # Ring all-reduce schedule
//!
//! A bucket of `n` f16 values is split into `G` contiguous segments
//! ([`crate::segment_bounds`]). Rank `r` talks only to its ring
//! neighbours `r±1 (mod G)`:
//!
//! * **Reduce-scatter** (`G−1` hops, f64 payloads): at hop 0 rank `r`
//!   sends its own segment `r`, widened to f64. On receiving the
//!   partial for segment `(r−s−1) mod G` at hop `s` it adds its own
//!   values exactly and forwards; after the last hop it owns the full
//!   exact sum of segment `(r+1) mod G`, divides by `G`, and rounds
//!   once to f16.
//! * **All-gather** (`G−1` hops, f16 payloads): the finished f16
//!   segments rotate around the ring until every rank holds all of
//!   them.
//!
//! Per-rank wire volume is `(G−1)/G · n` elements per phase — the
//! bandwidth-optimal `2·(G−1)/G · n` total the byte-accounting formulas
//! model. The f64 partials make the sum *exact*, hence order-free,
//! hence bitwise equal to [`crate::reference`] no matter how threads
//! interleave (see the crate docs for the argument).
//!
//! # Overlap
//!
//! Rings are asynchronous: [`Communicator::ring_start`] posts the first
//! hop and returns, [`Communicator::ring_pump`] makes progress without
//! blocking (called between gradient buckets while backward still
//! runs), and [`Communicator::ring_finish`] blocks until every ring
//! completes. Several rings may be in flight at once; messages are
//! self-describing (tagged with a collective id every rank assigns in
//! the same program order), and early arrivals — a fast neighbour
//! already working on the next bucket or the next step — are stashed
//! until this rank catches up, never misrouted.

use crate::reference::f16_mean_from_exact_sum;
use crate::transport::{Kind, Message, Payload, Tag, Transport};
use crate::{ring_allreduce_model_bytes, segment_bounds, CommsError};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use telemetry::json::Json;
use tensor::f16::F16;

/// Default per-collective deadline. Generous for healthy in-process
/// meshes; tests with injected faults shrink it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// One in-flight chunked ring all-reduce.
struct RingState {
    id: u64,
    /// Input values; progressively overwritten with the mean.
    data: Vec<F16>,
    /// `G` contiguous segment bounds.
    segs: Vec<(usize, usize)>,
    /// Incoming hops processed so far (of `2·(G−1)`); doubles as the
    /// next expected message `step`, since per-link FIFO order makes
    /// hops of one ring arrive in schedule order.
    hops_done: u32,
}

/// A rank's collective interface over a transport endpoint.
pub struct Communicator<T: Transport> {
    t: T,
    epoch: u32,
    next_id: u64,
    timeout: Duration,
    poisoned: bool,
    /// Early arrivals keyed by `(source, tag)`: traffic for collectives
    /// this rank has not reached yet.
    stash: HashMap<(usize, Tag), Message>,
    rings: Vec<RingState>,
    completed: Vec<(u64, Vec<F16>)>,
    model_allreduce_bytes: u64,
    /// Trace `tid` this rank's comms slices/flows land on. Defaults to
    /// the transport rank; runtimes that own several meshes per OS
    /// thread (the pipeline's pipe + data communicators) override it so
    /// one thread's traffic shares one Perfetto lane.
    trace_lane: u64,
}

impl<T: Transport> Communicator<T> {
    pub fn new(t: T) -> Communicator<T> {
        let trace_lane = t.rank() as u64;
        Communicator {
            t,
            epoch: 0,
            next_id: 0,
            timeout: DEFAULT_TIMEOUT,
            poisoned: false,
            stash: HashMap::new(),
            rings: Vec::new(),
            completed: Vec::new(),
            model_allreduce_bytes: 0,
            trace_lane,
        }
    }

    /// Sets the per-collective deadline (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Communicator<T> {
        self.timeout = timeout;
        self
    }

    /// Sets the Perfetto lane (`tid` on pid 2) this communicator's
    /// trace events render on (builder style). See `trace_lane`.
    pub fn with_trace_lane(mut self, lane: u64) -> Communicator<T> {
        self.trace_lane = lane;
        self
    }

    /// The trace lane this communicator records on.
    pub fn trace_lane(&self) -> u64 {
        self.trace_lane
    }

    /// The per-collective deadline duration.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    pub fn rank(&self) -> usize {
        self.t.rank()
    }

    pub fn world(&self) -> usize {
        self.t.world()
    }

    /// The underlying endpoint (byte counters etc.).
    pub fn transport(&self) -> &T {
        &self.t
    }

    /// Modeled f16 ring volume of every all-reduce issued so far
    /// (`2·(G−1)/G · n · 2B` each) — the paper's Eq. 9 accounting.
    pub fn model_allreduce_bytes(&self) -> u64 {
        self.model_allreduce_bytes
    }

    /// Current recovery epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn prev(&self) -> usize {
        let g = self.world();
        (self.rank() + g - 1) % g
    }

    fn next(&self) -> usize {
        (self.rank() + 1) % self.world()
    }

    fn deadline(&self) -> Instant {
        Instant::now() + self.timeout
    }

    fn ready(&self) -> Result<(), CommsError> {
        if self.poisoned {
            Err(CommsError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn tag(&self, kind: Kind, id: u64, step: u32) -> Tag {
        Tag { epoch: self.epoch, kind, id, step }
    }

    /// Deterministic flow-event id for one message: FNV-1a over
    /// `(mesh, tag, sender)`. Both endpoints compute the same id with
    /// no negotiation; the mesh id keeps identical tags on different
    /// meshes (pipeline pipe vs. data groups) from colliding in a
    /// merged trace.
    fn flow_id(&self, tag: &Tag, from: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            self.t.mesh_id(),
            u64::from(tag.epoch),
            tag.kind as u64,
            tag.id,
            u64::from(tag.step),
            from as u64,
        ] {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Sends with tracing: a `send` slice on this rank's lane encloses
    /// a flow-start arrow keyed by the message tag, which the matching
    /// consumption site closes with a flow-finish.
    fn send_traced(&mut self, to: usize, msg: Message) -> Result<(), CommsError> {
        if !telemetry::enabled() {
            return self.t.send(to, msg);
        }
        let fid = self.flow_id(&msg.tag, self.rank());
        let name = flow_name(&msg.tag);
        let t0 = crate::trace::now_us();
        let res = self.t.send(to, msg);
        let t1 = crate::trace::now_us();
        crate::trace::record_hop(
            self.trace_lane,
            format!("send {name}"),
            t0,
            t1 - t0,
            vec![("to".to_string(), Json::from(to))],
        );
        crate::trace::record_flow(self.trace_lane, name, t0, fid, true);
        res
    }

    /// Records the flow-finish for a message consumed at `ts_us`.
    fn flow_consumed(&self, tag: &Tag, from: usize, ts_us: f64) {
        crate::trace::record_flow(
            self.trace_lane,
            flow_name(tag),
            ts_us,
            self.flow_id(tag, from),
            false,
        );
    }

    /// After any collective error the communicator refuses further work
    /// ([`CommsError::Poisoned`]) until this runs: stale in-flight
    /// traffic is filtered out by the epoch bump (messages from the new
    /// epoch that already arrived are kept), in-flight rings are
    /// abandoned, and the collective-id counter restarts. Every rank of
    /// the group must bump together (same count of bumps) or tags stop
    /// agreeing.
    pub fn bump_epoch(&mut self) {
        self.set_epoch(self.epoch + 1);
    }

    /// Adopts an externally agreed epoch — the rendezvous/bootstrap
    /// path, where the host hands every (re)joining rank
    /// `max(reported epochs) + 1` so a worker rejoining with a stale
    /// epoch is drained and re-synced instead of aliasing old traffic.
    /// Epochs never move backwards; adopting the current epoch still
    /// drains, exactly like [`Self::bump_epoch`].
    pub fn adopt_epoch(&mut self, epoch: u32) {
        self.set_epoch(self.epoch.max(epoch));
    }

    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.next_id = 0;
        self.poisoned = false;
        self.rings.clear();
        self.completed.clear();
        let epoch = self.epoch;
        self.stash.retain(|(_, tag), _| tag.epoch >= epoch);
        for from in 0..self.world() {
            if from == self.rank() {
                continue;
            }
            while let Ok(Some(msg)) = self.t.try_recv_from(from) {
                if msg.tag.epoch >= epoch {
                    self.stash.insert((from, msg.tag), msg);
                }
            }
        }
    }

    /// Receives from `from` until the wanted tag shows up, stashing
    /// everything else and discarding stale-epoch traffic.
    ///
    /// With telemetry enabled the blocking window is recorded as a
    /// `wait` slice (timeouts included — a killed peer's stall is
    /// visible in the trace) and the matched message closes its causal
    /// flow arrow.
    fn recv_match(
        &mut self,
        from: usize,
        want: Tag,
        deadline: Instant,
    ) -> Result<Message, CommsError> {
        let tel = telemetry::enabled();
        if let Some(m) = self.stash.remove(&(from, want)) {
            if tel {
                self.flow_consumed(&want, from, crate::trace::now_us());
            }
            return Ok(m);
        }
        let t0 = tel.then(crate::trace::now_us);
        let res = loop {
            match self.t.recv_from(from, deadline) {
                Err(e) => break Err(e),
                Ok(msg) => {
                    if msg.tag.epoch < self.epoch {
                        continue;
                    }
                    if msg.tag == want {
                        break Ok(msg);
                    }
                    self.stash.insert((from, msg.tag), msg);
                }
            }
        };
        if let Some(t0) = t0 {
            let t1 = crate::trace::now_us();
            let mut args = vec![("from".to_string(), Json::from(from))];
            if res.is_err() {
                args.push(("timed_out".to_string(), Json::Bool(true)));
            }
            crate::trace::record_wait(
                self.trace_lane,
                format!("recv {}", flow_name(&want)),
                t0,
                t1 - t0,
                args,
            );
            if res.is_ok() {
                self.flow_consumed(&want, from, t1);
            }
        }
        res
    }

    // --- Barrier ------------------------------------------------------

    /// Dissemination barrier: `⌈log₂ G⌉` rounds, in round `k` rank `r`
    /// signals `r + 2ᵏ` and waits on `r − 2ᵏ`. Returns only after every
    /// rank has entered the barrier.
    pub fn barrier(&mut self) -> Result<(), CommsError> {
        self.ready()?;
        let res = self.barrier_inner();
        self.poisoned |= res.is_err();
        res
    }

    fn barrier_inner(&mut self) -> Result<(), CommsError> {
        let g = self.world();
        if g == 1 {
            return Ok(());
        }
        let sp = telemetry::enabled().then(|| telemetry::span("comms.barrier"));
        let id = self.fresh_id();
        let deadline = self.deadline();
        let r = self.rank();
        let mut k = 1usize;
        let mut round = 0u32;
        while k < g {
            let to = (r + k) % g;
            let from = (r + g - k) % g;
            let tag = self.tag(Kind::Barrier, id, round);
            self.send_traced(to, Message { tag, payload: Payload::Bytes(Vec::new()) })?;
            self.recv_match(from, tag, deadline)?;
            k *= 2;
            round += 1;
        }
        drop(sp);
        Ok(())
    }

    // --- Broadcast ----------------------------------------------------

    /// Broadcasts `root`'s buffer to every rank (ring chain). Buffer
    /// lengths must agree across ranks.
    pub fn broadcast_f16(&mut self, root: usize, buf: &mut [F16]) -> Result<(), CommsError> {
        self.ready()?;
        let res = self.broadcast_inner(root, &mut |payload| match payload {
            None => Some(Payload::F16(buf.to_vec())),
            Some(Payload::F16(v)) if v.len() == buf.len() => {
                buf.copy_from_slice(&v);
                None
            }
            Some(_) => Some(Payload::Bytes(Vec::new())), // signals mismatch below
        });
        self.poisoned |= res.is_err();
        res
    }

    /// Broadcasts `root`'s bytes to every rank; non-root inputs are
    /// replaced.
    pub fn broadcast_bytes(&mut self, root: usize, data: &mut Vec<u8>) -> Result<(), CommsError> {
        self.ready()?;
        let res = self.broadcast_inner(root, &mut |payload| match payload {
            None => Some(Payload::Bytes(data.clone())),
            Some(Payload::Bytes(v)) => {
                *data = v;
                None
            }
            Some(_) => Some(Payload::Bytes(Vec::new())),
        });
        self.poisoned |= res.is_err();
        res
    }

    /// Chain broadcast from `root`. `exchange(None)` yields the local
    /// payload to forward (root, or mismatch sentinel); `exchange(Some)`
    /// installs a received payload and returns `None`, or a sentinel on
    /// type/length mismatch.
    fn broadcast_inner(
        &mut self,
        root: usize,
        exchange: &mut dyn FnMut(Option<Payload>) -> Option<Payload>,
    ) -> Result<(), CommsError> {
        let g = self.world();
        if root >= g {
            return Err(CommsError::Mismatch(format!("broadcast root {root} out of range")));
        }
        let id = self.fresh_id();
        if g == 1 {
            return Ok(());
        }
        let sp = telemetry::enabled().then(|| telemetry::span("comms.broadcast"));
        let deadline = self.deadline();
        let r = self.rank();
        let pos = (r + g - root) % g; // position along the chain
        let tag = self.tag(Kind::Broadcast, id, pos as u32);
        let payload = if pos == 0 {
            exchange(None).expect("root yields its payload")
        } else {
            let prev_tag = Tag { step: pos as u32 - 1, ..tag };
            let msg = self.recv_match(self.prev(), prev_tag, deadline)?;
            if exchange(Some(msg.payload.clone())).is_some() {
                return Err(CommsError::Mismatch(
                    "broadcast payload type/length disagrees across ranks".into(),
                ));
            }
            msg.payload
        };
        if pos < g - 1 {
            let next = self.next();
            self.send_traced(next, Message { tag, payload })?;
        }
        drop(sp);
        Ok(())
    }

    // --- All-gather ---------------------------------------------------

    /// Ring all-gather: rank `r` contributes `mine` (whose length must
    /// equal `counts[r]`); returns the concatenation of every rank's
    /// contribution in rank order.
    pub fn all_gather_f16(
        &mut self,
        mine: &[F16],
        counts: &[usize],
    ) -> Result<Vec<F16>, CommsError> {
        self.ready()?;
        let res = self.all_gather_inner(mine, counts);
        self.poisoned |= res.is_err();
        res
    }

    fn all_gather_inner(
        &mut self,
        mine: &[F16],
        counts: &[usize],
    ) -> Result<Vec<F16>, CommsError> {
        let g = self.world();
        let r = self.rank();
        if counts.len() != g {
            return Err(CommsError::Mismatch(format!(
                "all_gather counts has {} entries for world {g}",
                counts.len()
            )));
        }
        if mine.len() != counts[r] {
            return Err(CommsError::Mismatch(format!(
                "rank {r} contributes {} elements, counts says {}",
                mine.len(),
                counts[r]
            )));
        }
        let mut offsets = Vec::with_capacity(g + 1);
        let mut total = 0usize;
        for &c in counts {
            offsets.push(total);
            total += c;
        }
        offsets.push(total);
        let mut out = vec![F16::ZERO; total];
        out[offsets[r]..offsets[r] + mine.len()].copy_from_slice(mine);
        if g == 1 {
            return Ok(out);
        }
        let sp = telemetry::enabled().then(|| telemetry::span("comms.allgather"));
        let id = self.fresh_id();
        let deadline = self.deadline();
        for s in 0..g - 1 {
            let send_seg = (r + g - s) % g;
            let tag = self.tag(Kind::AllGather, id, s as u32);
            let chunk = out[offsets[send_seg]..offsets[send_seg + 1]].to_vec();
            let next = self.next();
            self.send_traced(next, Message { tag, payload: Payload::F16(chunk) })?;
            let recv_seg = (r + g - s - 1) % g;
            let msg = self.recv_match(self.prev(), tag, deadline)?;
            let Payload::F16(vals) = msg.payload else {
                return Err(CommsError::Mismatch("all_gather expects f16 payloads".into()));
            };
            if vals.len() != counts[recv_seg] {
                return Err(CommsError::Mismatch(format!(
                    "all_gather segment {recv_seg}: got {} elements, want {}",
                    vals.len(),
                    counts[recv_seg]
                )));
            }
            out[offsets[recv_seg]..offsets[recv_seg + 1]].copy_from_slice(&vals);
        }
        drop(sp);
        Ok(out)
    }

    /// Ring all-gather of **f32** segments — the f32 twin of
    /// [`Self::all_gather_f16`]. Used by the dynamic-sparsity remap path
    /// to reassemble full-precision shard state (`θ32`/moments) on every
    /// rank before the masks move; gradients keep using the f16 gather.
    pub fn all_gather_f32(
        &mut self,
        mine: &[f32],
        counts: &[usize],
    ) -> Result<Vec<f32>, CommsError> {
        self.ready()?;
        let res = self.all_gather_f32_inner(mine, counts);
        self.poisoned |= res.is_err();
        res
    }

    fn all_gather_f32_inner(
        &mut self,
        mine: &[f32],
        counts: &[usize],
    ) -> Result<Vec<f32>, CommsError> {
        let g = self.world();
        let r = self.rank();
        if counts.len() != g {
            return Err(CommsError::Mismatch(format!(
                "all_gather counts has {} entries for world {g}",
                counts.len()
            )));
        }
        if mine.len() != counts[r] {
            return Err(CommsError::Mismatch(format!(
                "rank {r} contributes {} elements, counts says {}",
                mine.len(),
                counts[r]
            )));
        }
        let mut offsets = Vec::with_capacity(g + 1);
        let mut total = 0usize;
        for &c in counts {
            offsets.push(total);
            total += c;
        }
        offsets.push(total);
        let mut out = vec![0.0f32; total];
        out[offsets[r]..offsets[r] + mine.len()].copy_from_slice(mine);
        if g == 1 {
            return Ok(out);
        }
        let sp = telemetry::enabled().then(|| telemetry::span("comms.allgather"));
        let id = self.fresh_id();
        let deadline = self.deadline();
        for s in 0..g - 1 {
            let send_seg = (r + g - s) % g;
            let tag = self.tag(Kind::AllGather, id, s as u32);
            let chunk = out[offsets[send_seg]..offsets[send_seg + 1]].to_vec();
            let next = self.next();
            self.send_traced(next, Message { tag, payload: Payload::F32(chunk) })?;
            let recv_seg = (r + g - s - 1) % g;
            let msg = self.recv_match(self.prev(), tag, deadline)?;
            let Payload::F32(vals) = msg.payload else {
                return Err(CommsError::Mismatch("all_gather_f32 expects f32 payloads".into()));
            };
            if vals.len() != counts[recv_seg] {
                return Err(CommsError::Mismatch(format!(
                    "all_gather segment {recv_seg}: got {} elements, want {}",
                    vals.len(),
                    counts[recv_seg]
                )));
            }
            out[offsets[recv_seg]..offsets[recv_seg + 1]].copy_from_slice(&vals);
        }
        drop(sp);
        Ok(out)
    }

    // --- Point-to-point (pipeline boundary traffic) -------------------

    /// Sends `data` to rank `to` as a tagged point-to-point message —
    /// the inter-layer (pipeline) primitive carrying boundary
    /// activations forward and activation-gradients backward.
    ///
    /// Unlike collectives, p2p tags are **caller-supplied**: both
    /// endpoints derive the same `(id, step)` from `(training step,
    /// microbatch, direction)` without consuming the shared collective
    /// counter, so pipeline stages that exchange different message
    /// counts still agree on every subsequent collective's id.
    pub fn send_p2p(
        &mut self,
        to: usize,
        id: u64,
        step: u32,
        data: Vec<f32>,
    ) -> Result<(), CommsError> {
        self.ready()?;
        let tag = self.tag(Kind::P2p, id, step);
        let res = self.send_traced(to, Message { tag, payload: Payload::F32(data) });
        self.poisoned |= res.is_err();
        res
    }

    /// Blocks until the p2p message tagged `(id, step)` arrives from
    /// `from`, or the communicator deadline passes (a killed stage
    /// surfaces as a bounded [`CommsError::Timeout`], never a hang).
    /// Early arrivals with other tags are stashed, never misrouted.
    pub fn recv_p2p(&mut self, from: usize, id: u64, step: u32) -> Result<Vec<f32>, CommsError> {
        self.ready()?;
        let deadline = self.deadline();
        let res = self.recv_p2p_inner(from, id, step, deadline);
        self.poisoned |= res.is_err();
        res
    }

    fn recv_p2p_inner(
        &mut self,
        from: usize,
        id: u64,
        step: u32,
        deadline: Instant,
    ) -> Result<Vec<f32>, CommsError> {
        let want = self.tag(Kind::P2p, id, step);
        let msg = self.recv_match(from, want, deadline)?;
        let Payload::F32(v) = msg.payload else {
            return Err(CommsError::Mismatch("p2p expects f32 payloads".into()));
        };
        Ok(v)
    }

    /// Non-blocking variant of [`Self::recv_p2p`]: returns `Ok(None)`
    /// when the wanted message has not arrived yet. The message-driven
    /// pipeline scheduler polls this to prefer backward work over
    /// forward without committing to a blocking wait on either link.
    pub fn try_recv_p2p(
        &mut self,
        from: usize,
        id: u64,
        step: u32,
    ) -> Result<Option<Vec<f32>>, CommsError> {
        self.ready()?;
        let res = self.try_recv_p2p_inner(from, id, step);
        self.poisoned |= res.is_err();
        res
    }

    fn try_recv_p2p_inner(
        &mut self,
        from: usize,
        id: u64,
        step: u32,
    ) -> Result<Option<Vec<f32>>, CommsError> {
        let want = self.tag(Kind::P2p, id, step);
        let tel = telemetry::enabled();
        if let Some(msg) = self.stash.remove(&(from, want)) {
            let Payload::F32(v) = msg.payload else {
                return Err(CommsError::Mismatch("p2p expects f32 payloads".into()));
            };
            if tel {
                self.flow_consumed(&want, from, crate::trace::now_us());
            }
            return Ok(Some(v));
        }
        loop {
            match self.t.try_recv_from(from)? {
                None => return Ok(None),
                Some(msg) => {
                    if msg.tag.epoch < self.epoch {
                        continue;
                    }
                    if msg.tag == want {
                        let Payload::F32(v) = msg.payload else {
                            return Err(CommsError::Mismatch("p2p expects f32 payloads".into()));
                        };
                        if tel {
                            self.flow_consumed(&want, from, crate::trace::now_us());
                        }
                        return Ok(Some(v));
                    }
                    self.stash.insert((from, msg.tag), msg);
                }
            }
        }
    }

    // --- Telemetry (best-effort metrics snapshots) --------------------

    /// Ships a metrics snapshot to rank `to`, tagged `(id, step)` like
    /// p2p traffic (caller-supplied, no collective counter consumed).
    ///
    /// Best-effort: a send failure is logged and swallowed and the
    /// communicator is **not** poisoned — telemetry must never take
    /// down training.
    pub fn send_telemetry(&mut self, to: usize, id: u64, step: u32, bytes: Vec<u8>) {
        let tag = self.tag(Kind::Telemetry, id, step);
        if let Err(e) = self.send_traced(to, Message { tag, payload: Payload::Bytes(bytes) }) {
            telemetry::log_warn!("telemetry snapshot send to rank {to} failed: {e}");
        }
    }

    /// Blocks up to `wait` for the snapshot tagged `(id, step)` from
    /// `from`. Best-effort: a missing or malformed snapshot returns
    /// `None` (with a warning) instead of poisoning, and stashed
    /// telemetry from steps already passed is discarded so a straggling
    /// sender can't grow the stash without bound.
    pub fn recv_telemetry(
        &mut self,
        from: usize,
        id: u64,
        step: u32,
        wait: Duration,
    ) -> Option<Vec<u8>> {
        let want = self.tag(Kind::Telemetry, id, step);
        let deadline = Instant::now() + wait;
        let res = self.recv_match(from, want, deadline);
        self.stash
            .retain(|(_, tag), _| tag.kind != Kind::Telemetry || tag.step >= step);
        match res {
            Ok(Message { payload: Payload::Bytes(b), .. }) => Some(b),
            Ok(_) => {
                telemetry::log_warn!("telemetry snapshot from rank {from} had a non-bytes payload");
                None
            }
            Err(e) => {
                telemetry::log_warn!("telemetry snapshot from rank {from} missed: {e}");
                None
            }
        }
    }

    // --- Chunked ring all-reduce -------------------------------------

    /// Starts an asynchronous ring all-reduce (mean) over `data`,
    /// returning its collective id. Post the first hop and return;
    /// drive with [`Self::ring_pump`] / [`Self::ring_finish`], collect
    /// with [`Self::take_completed`].
    pub fn ring_start(&mut self, data: Vec<F16>) -> Result<u64, CommsError> {
        self.ready()?;
        let res = self.ring_start_inner(data);
        self.poisoned |= res.is_err();
        res
    }

    fn ring_start_inner(&mut self, mut data: Vec<F16>) -> Result<u64, CommsError> {
        let g = self.world();
        let r = self.rank();
        let id = self.fresh_id();
        self.model_allreduce_bytes += ring_allreduce_model_bytes(data.len() as u64, g as u64, 2);
        if g == 1 {
            // Mean over one rank still goes through the shared rounding
            // so G=1 matches the oracle bit-for-bit.
            for v in &mut data {
                *v = f16_mean_from_exact_sum(f64::from(v.to_f32()), 1.0);
            }
            self.completed.push((id, data));
            return Ok(id);
        }
        let segs = segment_bounds(data.len(), g);
        let (lo, hi) = segs[r];
        let partial: Vec<f64> = data[lo..hi].iter().map(|v| f64::from(v.to_f32())).collect();
        let tag = self.tag(Kind::AllReduce, id, 0);
        let next = self.next();
        self.send_traced(next, Message { tag, payload: Payload::F64(partial) })?;
        self.rings.push(RingState { id, data, segs, hops_done: 0 });
        // A fast neighbour may already have sent hops for this id.
        self.ring_drain_stash()?;
        Ok(id)
    }

    /// Makes progress on every in-flight ring without blocking. Call
    /// between gradient buckets to overlap communication with compute.
    pub fn ring_pump(&mut self) -> Result<(), CommsError> {
        self.ready()?;
        let res = self.ring_pump_inner();
        self.poisoned |= res.is_err();
        res
    }

    fn ring_pump_inner(&mut self) -> Result<(), CommsError> {
        self.ring_drain_stash()?;
        let prev = self.prev();
        while !self.rings.is_empty() {
            match self.t.try_recv_from(prev)? {
                Some(msg) => self.handle_from_prev(msg)?,
                None => break,
            }
        }
        Ok(())
    }

    /// Blocks until every in-flight ring completes (or the deadline
    /// passes — a cut link surfaces here as `Timeout`, never a hang).
    pub fn ring_finish(&mut self) -> Result<(), CommsError> {
        self.ready()?;
        let res = self.ring_finish_inner();
        self.poisoned |= res.is_err();
        res
    }

    fn ring_finish_inner(&mut self) -> Result<(), CommsError> {
        let deadline = self.deadline();
        let prev = self.prev();
        self.ring_drain_stash()?;
        while !self.rings.is_empty() {
            let t0 = telemetry::enabled().then(crate::trace::now_us);
            let res = self.t.recv_from(prev, deadline);
            if let Some(t0) = t0 {
                let t1 = crate::trace::now_us();
                let mut args = vec![("from".to_string(), Json::from(prev))];
                if res.is_err() {
                    args.push(("timed_out".to_string(), Json::Bool(true)));
                }
                crate::trace::record_wait(
                    self.trace_lane,
                    "ring stall".to_string(),
                    t0,
                    t1 - t0,
                    args,
                );
            }
            self.handle_from_prev(res?)?;
        }
        Ok(())
    }

    /// Drains finished rings as `(id, mean)` pairs, in completion order.
    pub fn take_completed(&mut self) -> Vec<(u64, Vec<F16>)> {
        std::mem::take(&mut self.completed)
    }

    /// Blocking convenience: full ring all-reduce of one buffer in
    /// place. Equivalent to start + finish + take.
    pub fn allreduce_mean_f16(&mut self, buf: &mut [F16]) -> Result<(), CommsError> {
        let sp = telemetry::enabled().then(|| telemetry::span("comms.allreduce"));
        let id = self.ring_start(buf.to_vec())?;
        self.ring_finish()?;
        let pos = self
            .completed
            .iter()
            .position(|(cid, _)| *cid == id)
            .expect("finished ring must be in completed");
        let (_, data) = self.completed.swap_remove(pos);
        buf.copy_from_slice(&data);
        drop(sp);
        Ok(())
    }

    /// Routes one message that arrived from the ring predecessor.
    fn handle_from_prev(&mut self, msg: Message) -> Result<(), CommsError> {
        if msg.tag.epoch < self.epoch {
            return Ok(());
        }
        if msg.tag.epoch == self.epoch && msg.tag.kind == Kind::AllReduce {
            if let Some(idx) = self.rings.iter().position(|ring| ring.id == msg.tag.id) {
                if msg.tag.step == self.rings[idx].hops_done {
                    self.ring_process(idx, msg)?;
                    return self.ring_drain_stash();
                }
            }
        }
        self.stash.insert((self.prev(), msg.tag), msg);
        Ok(())
    }

    /// Applies stashed hops to every ring that can advance (early
    /// arrivals for rings we started late, or hops pulled in while
    /// matching another collective).
    fn ring_drain_stash(&mut self) -> Result<(), CommsError> {
        let prev = self.prev();
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.rings.len() {
                let want = Tag {
                    epoch: self.epoch,
                    kind: Kind::AllReduce,
                    id: self.rings[i].id,
                    step: self.rings[i].hops_done,
                };
                if let Some(msg) = self.stash.remove(&(prev, want)) {
                    // May advance or complete ring `i`; re-examine the
                    // same index either way.
                    self.ring_process(i, msg)?;
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Executes one ring hop: accumulate-and-forward (reduce-scatter),
    /// finalize-and-seed (last reduce-scatter hop), or install-and-
    /// forward (all-gather).
    fn ring_process(&mut self, idx: usize, msg: Message) -> Result<(), CommsError> {
        let g = self.world();
        let r = self.rank();
        let tel = telemetry::enabled();
        let t0 = tel.then(crate::trace::now_us);
        let in_tag = msg.tag;
        let step = msg.tag.step as usize;
        let id = msg.tag.id;

        enum Outgoing {
            None,
            F64(u32, Vec<f64>),
            F16(u32, Vec<F16>),
        }
        let outgoing;
        let done;
        let seg;
        let phase;
        {
            let ring = &mut self.rings[idx];
            if step != ring.hops_done as usize {
                return Err(CommsError::Mismatch(format!(
                    "ring {id}: hop {step} arrived, expected {}",
                    ring.hops_done
                )));
            }
            if step <= g - 2 {
                phase = "rs";
                seg = (r + g - 1 - step) % g;
                let (lo, hi) = ring.segs[seg];
                let Payload::F64(mut partial) = msg.payload else {
                    return Err(CommsError::Mismatch(
                        "reduce-scatter hop expects f64 partial sums".into(),
                    ));
                };
                if partial.len() != hi - lo {
                    return Err(CommsError::Mismatch(format!(
                        "ring {id} segment {seg}: got {} elements, want {}",
                        partial.len(),
                        hi - lo
                    )));
                }
                for (a, x) in partial.iter_mut().zip(&ring.data[lo..hi]) {
                    *a += f64::from(x.to_f32());
                }
                if step < g - 2 {
                    outgoing = Outgoing::F64(step as u32 + 1, partial);
                } else {
                    // Last reduce-scatter hop: this rank now owns the
                    // exact sum of segment (r+1) mod G.
                    let w = g as f64;
                    for (slot, &sum) in ring.data[lo..hi].iter_mut().zip(&partial) {
                        *slot = f16_mean_from_exact_sum(sum, w);
                    }
                    outgoing = Outgoing::F16(g as u32 - 1, ring.data[lo..hi].to_vec());
                }
            } else {
                phase = "ag";
                let sa = step - (g - 1);
                seg = (r + g - sa) % g;
                let (lo, hi) = ring.segs[seg];
                let Payload::F16(vals) = msg.payload else {
                    return Err(CommsError::Mismatch("all-gather hop expects f16 values".into()));
                };
                if vals.len() != hi - lo {
                    return Err(CommsError::Mismatch(format!(
                        "ring {id} segment {seg}: got {} elements, want {}",
                        vals.len(),
                        hi - lo
                    )));
                }
                ring.data[lo..hi].copy_from_slice(&vals);
                if sa < g - 2 {
                    outgoing = Outgoing::F16(step as u32 + 1, vals);
                } else {
                    outgoing = Outgoing::None;
                }
            }
            ring.hops_done += 1;
            done = ring.hops_done as usize == 2 * (g - 1);
        }
        let next = self.next();
        match outgoing {
            Outgoing::F64(s, v) => {
                let tag = self.tag(Kind::AllReduce, id, s);
                self.send_traced(next, Message { tag, payload: Payload::F64(v) })?;
            }
            Outgoing::F16(s, v) => {
                let tag = self.tag(Kind::AllReduce, id, s);
                self.send_traced(next, Message { tag, payload: Payload::F16(v) })?;
            }
            Outgoing::None => {}
        }
        if done {
            let ring = self.rings.swap_remove(idx);
            self.completed.push((ring.id, ring.data));
            if tel {
                telemetry::global().counter("comms.allreduce.completed").inc();
            }
        }
        if let Some(t0) = t0 {
            crate::trace::record_hop(
                self.trace_lane,
                format!("ring{id} {phase} seg{seg}"),
                t0,
                crate::trace::now_us() - t0,
                vec![("step".to_string(), Json::from(step))],
            );
            // Close the incoming hop's causal arrow inside the hop
            // slice (the forward send above opened the next one).
            self.flow_consumed(&in_tag, self.prev(), t0);
        }
        Ok(())
    }
}

/// Human-readable flow/slice label for a message tag. Flow pairs match
/// on `cat` + `id`; the name is what Perfetto shows on the arrow.
fn flow_name(tag: &Tag) -> String {
    let kind = match tag.kind {
        Kind::AllReduce => "ar",
        Kind::AllGather => "ag",
        Kind::Broadcast => "bc",
        Kind::Barrier => "bar",
        Kind::P2p => "p2p",
        Kind::Telemetry => "tel",
        Kind::Heartbeat => "hb",
    };
    format!("{kind} {}:{}", tag.id, tag.step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use crate::FaultController;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Runs `f(communicator, rank)` on one OS thread per rank and
    /// returns the results in rank order.
    fn run_ranks<R: Send>(
        world: usize,
        faults: Arc<FaultController>,
        timeout: Duration,
        f: impl Fn(&mut Communicator<InProcTransport>, usize) -> R + Sync,
    ) -> Vec<R> {
        let mesh = InProcTransport::mesh_with_faults(world, faults);
        std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .enumerate()
                .map(|(rank, t)| {
                    let f = &f;
                    s.spawn(move || {
                        let mut comm = Communicator::new(t).with_timeout(timeout);
                        f(&mut comm, rank)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }

    fn vals(seed: u64, n: usize) -> Vec<F16> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                F16::from_f32(((s >> 40) as f32) / (1 << 22) as f32 - 2.0)
            })
            .collect()
    }

    fn oracle(world: usize, n: usize, seed: u64) -> Vec<F16> {
        let mut copies: Vec<Vec<F16>> = (0..world).map(|r| vals(seed + r as u64, n)).collect();
        let mut bufs: Vec<&mut [F16]> = copies.iter_mut().map(|c| c.as_mut_slice()).collect();
        crate::reference::allreduce_mean_f16(&mut bufs).unwrap();
        copies.pop().unwrap()
    }

    #[test]
    fn barrier_orders_a_shared_counter() {
        let entered = AtomicUsize::new(0);
        run_ranks(4, Arc::default(), DEFAULT_TIMEOUT, |comm, _| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must see all 4 entries.
            assert_eq!(entered.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn broadcast_delivers_roots_buffer() {
        let want = vals(9, 37);
        let got = run_ranks(3, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            let mut buf = if rank == 1 { want.clone() } else { vec![F16::ZERO; 37] };
            comm.broadcast_f16(1, &mut buf).unwrap();
            let mut bytes = if rank == 1 { vec![7u8, 8, 9] } else { Vec::new() };
            if rank != 1 {
                bytes.clear();
            }
            comm.broadcast_bytes(1, &mut bytes).unwrap();
            (buf, bytes)
        });
        for (buf, bytes) in got {
            assert_eq!(buf, want);
            assert_eq!(bytes, vec![7, 8, 9]);
        }
    }

    #[test]
    fn all_gather_assembles_uneven_contributions() {
        let counts = [3usize, 0, 5, 2];
        let per_rank: Vec<Vec<F16>> =
            (0..4).map(|r| vals(100 + r as u64, counts[r as usize])).collect();
        let want: Vec<F16> = per_rank.iter().flatten().copied().collect();
        let got = run_ranks(4, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            comm.all_gather_f16(&per_rank[rank], &counts).unwrap()
        });
        for g in got {
            assert_eq!(g, want);
        }
    }

    #[test]
    fn all_gather_f32_assembles_uneven_contributions() {
        let counts = [3usize, 0, 5, 2];
        let per_rank: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..counts[r]).map(|i| (r * 100 + i) as f32 * 0.5 + 0.25).collect())
            .collect();
        let want: Vec<f32> = per_rank.iter().flatten().copied().collect();
        let got = run_ranks(4, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            comm.all_gather_f32(&per_rank[rank], &counts).unwrap()
        });
        for g in got {
            assert_eq!(g, want);
        }
    }

    #[test]
    fn ring_allreduce_matches_oracle_across_world_sizes() {
        // Sizes straddle the divisible/remainder boundary; world 1 hits
        // the degenerate path.
        for world in 1..=5usize {
            for n in [0usize, 1, 7, 64, 65] {
                let want = oracle(world, n, 7000);
                let got = run_ranks(world, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
                    let mut buf = vals(7000 + rank as u64, n);
                    comm.allreduce_mean_f16(&mut buf).unwrap();
                    buf
                });
                for (r, g) in got.iter().enumerate() {
                    assert_eq!(g, &want, "world {world} n {n} rank {r}");
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_is_timing_independent() {
        // Jittered links perturb thread interleaving; the result must
        // not move by a single bit.
        let want = oracle(4, 131, 42);
        for trial in 0..3u64 {
            let faults = Arc::new(FaultController::new());
            for link in 0..4usize {
                faults.jitter_link(
                    link,
                    (link + 1) % 4,
                    trial * 97 + link as u64,
                    summit_sim::StragglerModel { prob: 0.4, slowdown: 3.0 },
                    Duration::from_micros(300),
                );
            }
            let got = run_ranks(4, faults, DEFAULT_TIMEOUT, |comm, rank| {
                let mut buf = vals(42 + rank as u64, 131);
                comm.allreduce_mean_f16(&mut buf).unwrap();
                buf
            });
            for g in got {
                assert_eq!(g, want, "trial {trial}");
            }
        }
    }

    #[test]
    fn pipelined_rings_complete_out_of_lockstep() {
        // Three buckets in flight at once, finished together; results
        // must match per-bucket oracles.
        let sizes = [33usize, 8, 50];
        let wants: Vec<Vec<F16>> =
            (0..3).map(|b| oracle(3, sizes[b], 500 + 10 * b as u64)).collect();
        let got = run_ranks(3, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            let mut ids = Vec::new();
            for (b, &n) in sizes.iter().enumerate() {
                ids.push(comm.ring_start(vals(500 + 10 * b as u64 + rank as u64, n)).unwrap());
                comm.ring_pump().unwrap();
            }
            comm.ring_finish().unwrap();
            let mut done = comm.take_completed();
            done.sort_by_key(|(id, _)| *id);
            (ids, done)
        });
        for (ids, done) in got {
            assert_eq!(done.len(), 3);
            for (b, (id, data)) in done.into_iter().enumerate() {
                assert_eq!(id, ids[b]);
                assert_eq!(data, wants[b], "bucket {b}");
            }
        }
    }

    #[test]
    fn cut_link_times_out_poisons_and_recovers() {
        let faults = Arc::new(FaultController::new());
        faults.cut_link(1, 2);
        let faults2 = Arc::clone(&faults);
        let results = run_ranks(3, faults, Duration::from_millis(200), move |comm, rank| {
            let mut buf = vals(rank as u64, 48);
            let first = comm.allreduce_mean_f16(&mut buf);
            if first.is_err() {
                // Whatever failed must now refuse further collectives.
                assert_eq!(comm.barrier(), Err(CommsError::Poisoned));
            }
            // Heal + recover: every rank bumps its epoch together. The
            // healer must be rank 1 — the only sender on the cut link —
            // so the heal happens-before any epoch-1 traffic could be
            // dropped (rank 0 healing raced with rank 1's retry).
            if rank == 1 {
                faults2.heal_link(1, 2);
            }
            comm.bump_epoch();
            let mut buf = vals(rank as u64, 48);
            let second = comm.allreduce_mean_f16(&mut buf);
            (first, second)
        });
        assert!(
            results.iter().any(|(first, _)| matches!(first, Err(CommsError::Timeout { .. }))),
            "a cut ring link must surface a timeout: {results:?}"
        );
        for (rank, (_, second)) in results.iter().enumerate() {
            assert_eq!(second, &Ok(()), "rank {rank} must work after recovery");
        }
    }

    #[test]
    fn p2p_delivers_by_tag_even_out_of_order() {
        // Rank 0 sends three tagged messages; rank 1 asks for them in a
        // different order — the stash must route them, never misdeliver.
        let got = run_ranks(2, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            if rank == 0 {
                for (id, step) in [(7u64, 0u32), (7, 1), (9, 0)] {
                    comm.send_p2p(1, id, step, vec![id as f32, f32::from(step as u16)]).unwrap();
                }
                Vec::new()
            } else {
                let mut out = Vec::new();
                for (id, step) in [(9u64, 0u32), (7, 1), (7, 0)] {
                    out.push(comm.recv_p2p(0, id, step).unwrap());
                }
                out
            }
        });
        assert_eq!(
            got[1],
            vec![vec![9.0, 0.0], vec![7.0, 1.0], vec![7.0, 0.0]],
            "p2p messages must be matched by tag, not arrival order"
        );
    }

    #[test]
    fn p2p_survives_interleaved_collectives() {
        // A p2p message already in flight while both ranks run a
        // barrier must be stashed by the barrier's matcher and still be
        // retrievable afterwards (and via try_recv_p2p's stash path).
        let got = run_ranks(2, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            if rank == 0 {
                comm.send_p2p(1, 3, 0, vec![1.25, -2.5]).unwrap();
            }
            comm.barrier().unwrap();
            if rank == 1 {
                // Arrived before the barrier traffic; may be stashed.
                comm.try_recv_p2p(0, 3, 0).unwrap()
            } else {
                None
            }
        });
        assert_eq!(got[1], Some(vec![1.25, -2.5]));
    }

    #[test]
    fn p2p_cut_link_times_out_bounded_then_recovers() {
        let faults = Arc::new(FaultController::new());
        faults.cut_link(0, 1);
        let faults2 = Arc::clone(&faults);
        let got = run_ranks(2, faults, Duration::from_millis(150), move |comm, rank| {
            if rank == 0 {
                comm.send_p2p(1, 0, 0, vec![4.0]).unwrap();
                comm.bump_epoch();
                // Wait for rank 1's go-ahead (the 1→0 link is healthy)
                // so the retry happens strictly after the heal. Rank 1
                // spends its own timeout discovering the cut first, so
                // poll rather than risk a timeout of our own.
                let wait = Instant::now() + DEFAULT_TIMEOUT;
                while comm.try_recv_p2p(1, 99, 0).unwrap().is_none() {
                    assert!(Instant::now() < wait, "go-ahead never arrived");
                    std::thread::yield_now();
                }
                comm.send_p2p(1, 0, 0, vec![5.0]).unwrap();
                Ok(vec![])
            } else {
                let t0 = Instant::now();
                let first = comm.recv_p2p(0, 0, 0);
                assert_eq!(first, Err(CommsError::Timeout { rank: 1, from: 0 }));
                assert!(t0.elapsed() < Duration::from_secs(5), "bounded wait");
                // Failure poisons until recovery.
                assert_eq!(comm.recv_p2p(0, 0, 0), Err(CommsError::Poisoned));
                faults2.heal_link(0, 1);
                comm.bump_epoch();
                comm.send_p2p(0, 99, 0, vec![]).unwrap();
                comm.recv_p2p(0, 0, 0)
            }
        });
        assert_eq!(got[1], Ok(vec![5.0]), "post-heal epoch must deliver fresh traffic");
    }

    #[test]
    fn try_recv_p2p_is_nonblocking_and_eventually_sees_the_message() {
        let got = run_ranks(2, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            if rank == 0 {
                // Give rank 1 time to observe the empty link first.
                std::thread::sleep(Duration::from_millis(30));
                comm.send_p2p(1, 11, 2, vec![0.5]).unwrap();
                (None, None)
            } else {
                let early = comm.try_recv_p2p(0, 11, 2).unwrap();
                let deadline = Instant::now() + DEFAULT_TIMEOUT;
                let mut late = None;
                while late.is_none() && Instant::now() < deadline {
                    late = comm.try_recv_p2p(0, 11, 2).unwrap();
                    std::thread::yield_now();
                }
                (early, late)
            }
        });
        assert_eq!(got[1].0, None, "nothing sent yet: try_recv must not block or invent data");
        assert_eq!(got[1].1, Some(vec![0.5]));
    }

    #[test]
    fn telemetry_snapshots_are_best_effort_and_never_poison() {
        let faults = Arc::new(FaultController::new());
        faults.cut_link(2, 0);
        let got = run_ranks(3, faults, Duration::from_millis(100), |comm, rank| {
            if rank == 0 {
                let ok = comm.recv_telemetry(1, 1, 5, Duration::from_millis(500));
                // Rank 2's link is cut: the snapshot is simply missing.
                let missing = comm.recv_telemetry(2, 2, 5, Duration::from_millis(50));
                // A lost snapshot must not poison the communicator for
                // later real collectives (barrier still pending below
                // would deadlock with rank 0 poisoned).
                (ok, missing)
            } else {
                comm.send_telemetry(0, rank as u64, 5, vec![rank as u8; 3]);
                (None, None)
            }
        });
        assert_eq!(got[0].0, Some(vec![1, 1, 1]));
        assert_eq!(got[0].1, None);
    }

    #[test]
    fn stale_telemetry_is_evicted_from_the_stash() {
        let got = run_ranks(2, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            if rank == 0 {
                // Old snapshots for steps 0 and 1 arrive before rank 0
                // asks for step 2; asking must evict them.
                let missing = comm.recv_telemetry(1, 1, 2, Duration::from_millis(200));
                let stash_len = comm.stash.len();
                (missing, stash_len)
            } else {
                comm.send_telemetry(0, 1, 0, vec![0]);
                comm.send_telemetry(0, 1, 1, vec![1]);
                (None, 0)
            }
        });
        assert_eq!(got[0].0, None);
        assert_eq!(got[0].1, 0, "stale telemetry must not linger in the stash");
    }

    #[test]
    fn traced_run_pairs_every_flow_and_records_waits() {
        let _guard = telemetry::registry::test_lock();
        let was = telemetry::enabled();
        telemetry::set_enabled(true);
        crate::trace::take_events();
        crate::trace::take_flows();

        run_ranks(3, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            let mut buf = vals(rank as u64, 64);
            comm.allreduce_mean_f16(&mut buf).unwrap();
            comm.barrier().unwrap();
            if rank == 0 {
                comm.send_p2p(1, 4, 0, vec![1.0]).unwrap();
            } else if rank == 1 {
                comm.recv_p2p(0, 4, 0).unwrap();
            }
        });
        telemetry::set_enabled(was);

        let events = crate::trace::take_events();
        let flows = crate::trace::take_flows();
        assert!(events.iter().any(|e| e.cat == "comms"), "hop/send slices recorded");
        assert!(events.iter().any(|e| e.cat == "wait"), "wait slices recorded");

        // Matched pairs must exist in volume (the strict every-flow
        // pairing invariant is asserted by the `trace_golden`
        // integration test, which owns its whole process — here other
        // tests may run concurrently while telemetry is enabled).
        let mut by_id: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new();
        for f in &flows {
            let e = by_id.entry(f.id).or_insert((0, 0));
            if f.start {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let matched = by_id.values().filter(|&&(s, f)| s == 1 && f == 1).count();
        // Our run alone: 3 ranks × 4 ring hops + 2 barrier rounds × 3
        // ranks + 1 p2p ≥ 19 matched sends.
        assert!(matched >= 19, "expected ≥19 matched flow pairs, got {matched}");
    }

    #[test]
    fn model_byte_counter_tracks_ring_volume() {
        let got = run_ranks(4, Arc::default(), DEFAULT_TIMEOUT, |comm, rank| {
            let mut buf = vals(rank as u64, 1000);
            comm.allreduce_mean_f16(&mut buf).unwrap();
            (comm.model_allreduce_bytes(), comm.transport().bytes_sent())
        });
        for (model, wire) in got {
            assert_eq!(model, ring_allreduce_model_bytes(1000, 4, 2));
            assert!(wire > 0);
        }
    }
}
