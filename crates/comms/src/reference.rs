//! The sequential oracle: exact-sum mean all-reduce over f16 replicas.
//!
//! This is the function the chunked ring all-reduce must equal
//! bit-for-bit (property-tested in `tests/ring_oracle.rs`), and the one
//! `samo::trainer::allreduce_mean_f16` delegates to so the in-process
//! `DataParallelSamo` and the threaded runtime compute the same bits.
//!
//! # Why exact summation buys determinism
//!
//! Every finite f16 is `k · 2⁻²⁴` for an integer `k` with `|k| < 2⁴¹`
//! (largest magnitude 65504 = 65504·2²⁴·2⁻²⁴). A sum of `G` such values
//! is an integer multiple of 2⁻²⁴ with magnitude below `G · 2⁴¹`, which
//! f64's 53-bit mantissa represents exactly for `G ≤ 2¹²`. Exact
//! floating-point addition is associative and commutative, so *any*
//! summation order — this oracle's rank loop, the ring's segment
//! rotation, a tree — produces identical f64 bits. The single final
//! rounding `f64 → f32 → f16` in [`f16_mean_from_exact_sum`] then
//! yields identical f16 bits everywhere.
//!
//! Non-finite inputs stay deterministic too: ±∞ inputs drive the exact
//! sum to ±∞ (or NaN for ∞ − ∞) identically in every order, and every
//! NaN mean is canonicalized to the one [`F16::NAN`] bit pattern, so no
//! order-dependent NaN payload can leak through.

use crate::CommsError;
use tensor::f16::F16;

/// Supported world size for the exactness argument above. Enforced so a
/// hypothetical 2¹³-rank group fails loudly instead of rounding subtly.
pub const MAX_EXACT_WORLD: usize = 1 << 12;

/// One shared final rounding from the exact f64 sum to the f16 mean.
/// Both the oracle and the ring call this — the double rounding
/// (f64→f32→f16) is part of the contract, not an accident, and NaN is
/// canonicalized for bitwise reproducibility.
#[inline]
pub fn f16_mean_from_exact_sum(sum: f64, world: f64) -> F16 {
    let mean = sum / world;
    if mean.is_nan() {
        F16::NAN
    } else {
        F16::from_f32(mean as f32)
    }
}

/// In-place mean all-reduce over per-replica compressed f16 buffers,
/// with exact f64 accumulation. All buffers end up holding the mean.
///
/// An empty replica set is a no-op `Ok`; mismatched buffer lengths —
/// ranks disagreeing about the compressed layout — are a collective
/// error and return `Err` without writing anything.
pub fn allreduce_mean_f16(replicas: &mut [&mut [F16]]) -> Result<(), CommsError> {
    let Some(first) = replicas.first() else {
        return Ok(());
    };
    let n = first.len();
    if let Some(bad) = replicas.iter().position(|r| r.len() != n) {
        return Err(CommsError::Mismatch(format!(
            "allreduce length mismatch: rank 0 has {n} elements, rank {bad} has {}",
            replicas[bad].len()
        )));
    }
    let world = replicas.len();
    if world > MAX_EXACT_WORLD {
        return Err(CommsError::Mismatch(format!(
            "world size {world} exceeds the exact-summation bound {MAX_EXACT_WORLD}"
        )));
    }
    let mut acc = vec![0.0f64; n];
    for r in replicas.iter() {
        for (a, g) in acc.iter_mut().zip(r.iter()) {
            *a += f64::from(g.to_f32());
        }
    }
    let w = world as f64;
    let mean16: Vec<F16> = acc.iter().map(|&s| f16_mean_from_exact_sum(s, w)).collect();
    for r in replicas.iter_mut() {
        r.copy_from_slice(&mean16);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_elementwise() {
        let mut a = vec![F16::from_f32(1.0), F16::from_f32(4.0)];
        let mut b = vec![F16::from_f32(3.0), F16::from_f32(0.0)];
        let mut bufs: Vec<&mut [F16]> = vec![&mut a, &mut b];
        allreduce_mean_f16(&mut bufs).unwrap();
        assert_eq!(a, vec![F16::from_f32(2.0); 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn single_replica_is_identity_on_finite_values() {
        let vals: Vec<F16> = (0..200).map(|i| F16::from_f32(i as f32 * 0.37 - 31.0)).collect();
        let mut buf = vals.clone();
        let mut bufs: Vec<&mut [F16]> = vec![&mut buf];
        allreduce_mean_f16(&mut bufs).unwrap();
        assert_eq!(buf, vals);
    }

    #[test]
    fn summation_order_is_irrelevant() {
        // The core exactness claim, checked directly: permuting the
        // replica order never changes a single bit of the result.
        let mk = |seed: u64, n: usize| -> Vec<F16> {
            let mut s = seed;
            (0..n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    F16((s >> 48) as u16 & 0x7BFF) // any finite bit pattern
                })
                .collect()
        };
        let ranks: Vec<Vec<F16>> = (0..7).map(|r| mk(1000 + r, 129)).collect();
        let reduce = |order: &[usize]| -> Vec<F16> {
            let mut copies: Vec<Vec<F16>> = order.iter().map(|&i| ranks[i].clone()).collect();
            let mut bufs: Vec<&mut [F16]> = copies.iter_mut().map(|c| c.as_mut_slice()).collect();
            allreduce_mean_f16(&mut bufs).unwrap();
            copies.pop().unwrap()
        };
        let fwd = reduce(&[0, 1, 2, 3, 4, 5, 6]);
        let rev = reduce(&[6, 5, 4, 3, 2, 1, 0]);
        let mixed = reduce(&[3, 0, 6, 1, 5, 2, 4]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, mixed);
    }

    #[test]
    fn non_finite_inputs_are_canonical() {
        let mut a = vec![F16::INFINITY, F16::INFINITY, F16(0x7E37)]; // odd NaN payload
        let mut b = vec![F16::NEG_INFINITY, F16::INFINITY, F16::from_f32(1.0)];
        let mut bufs: Vec<&mut [F16]> = vec![&mut a, &mut b];
        allreduce_mean_f16(&mut bufs).unwrap();
        assert_eq!(a[0], F16::NAN, "inf - inf canonicalizes");
        assert_eq!(a[1], F16::INFINITY);
        assert_eq!(a[2], F16::NAN, "NaN payload canonicalizes");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut none: Vec<&mut [F16]> = vec![];
        assert!(allreduce_mean_f16(&mut none).is_ok());
        let mut a = vec![F16::from_f32(1.0); 4];
        let a_before = a.clone();
        let mut b = vec![F16::from_f32(1.0); 3];
        let mut bufs: Vec<&mut [F16]> = vec![&mut a, &mut b];
        let err = allreduce_mean_f16(&mut bufs).unwrap_err();
        assert!(matches!(err, CommsError::Mismatch(_)));
        assert_eq!(a, a_before, "failed allreduce must not write");
    }
}
