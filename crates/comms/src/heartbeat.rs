//! Heartbeat-based peer failure detection for socket transports.
//!
//! Every [`crate::TcpTransport`] runs one background thread that pings
//! each peer every [`HeartbeatConfig::interval`] with a
//! [`crate::Kind::Heartbeat`] frame and checks the per-peer last-seen
//! clock. *Any* inbound frame refreshes the clock (data traffic counts
//! as liveness), and a peer silent for more than
//! [`HeartbeatConfig::window`] is marked dead: receives from it return
//! [`crate::CommsError::PeerDead`] immediately instead of waiting out
//! the collective deadline, so the epoch-bump/poison/heal recovery path
//! starts within the liveness window, not the timeout.
//!
//! Pings carry a wall-clock micros timestamp as their collective `id`;
//! the peer's reader answers in line (`step` 1, same `id`) and the
//! answer's age becomes a per-link RTT gauge
//! (`comms.tcp.rtt_us.<rank>-><peer>`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Liveness parameters for one transport endpoint.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Ping period, and the granularity of the liveness check.
    pub interval: Duration,
    /// Consecutive missed beats before a peer is declared dead.
    pub miss_limit: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig { interval: Duration::from_millis(100), miss_limit: 10 }
    }
}

impl HeartbeatConfig {
    /// The detection window: a peer silent for longer than
    /// `interval × miss_limit` is declared dead.
    pub fn window(&self) -> Duration {
        self.interval * self.miss_limit
    }
}

struct PeerHealth {
    /// Micros since the transport's `t0` when a frame last arrived.
    last_seen_us: AtomicU64,
    dead: AtomicBool,
    /// Last measured ping→pong round trip (0 = not measured yet).
    rtt_us: AtomicU64,
}

/// Shared liveness state: written by reader threads and the heartbeat
/// monitor, read by the transport's receive paths.
pub(crate) struct Health {
    t0: Instant,
    cfg: HeartbeatConfig,
    peers: Vec<PeerHealth>,
}

impl Health {
    pub(crate) fn new(world: usize, cfg: HeartbeatConfig) -> Health {
        Health {
            t0: Instant::now(),
            cfg,
            peers: (0..world)
                .map(|_| PeerHealth {
                    last_seen_us: AtomicU64::new(0),
                    dead: AtomicBool::new(false),
                    rtt_us: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    pub(crate) fn config(&self) -> &HeartbeatConfig {
        &self.cfg
    }

    fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// A frame (any kind) arrived from `peer`.
    pub(crate) fn note_seen(&self, peer: usize) {
        self.peers[peer].last_seen_us.store(self.now_us(), Ordering::Relaxed);
    }

    pub(crate) fn is_dead(&self, peer: usize) -> bool {
        self.peers[peer].dead.load(Ordering::Relaxed)
    }

    /// How long `peer` has been silent.
    pub(crate) fn silent_for(&self, peer: usize) -> Duration {
        let last = self.peers[peer].last_seen_us.load(Ordering::Relaxed);
        Duration::from_micros(self.now_us().saturating_sub(last))
    }

    /// Whether `peer` has exceeded the liveness window.
    pub(crate) fn overdue(&self, peer: usize) -> bool {
        self.silent_for(peer) > self.cfg.window()
    }

    /// Marks `peer` dead; returns `true` only for the transition (so
    /// the caller warns and counts exactly once).
    pub(crate) fn mark_dead(&self, peer: usize) -> bool {
        !self.peers[peer].dead.swap(true, Ordering::Relaxed)
    }

    pub(crate) fn record_rtt(&self, peer: usize, rtt_us: u64) {
        self.peers[peer].rtt_us.store(rtt_us, Ordering::Relaxed);
    }

    /// Last measured round trip to `peer`, if any.
    pub(crate) fn rtt_us(&self, peer: usize) -> Option<u64> {
        match self.peers[peer].rtt_us.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_interval_times_misses() {
        let cfg = HeartbeatConfig { interval: Duration::from_millis(20), miss_limit: 5 };
        assert_eq!(cfg.window(), Duration::from_millis(100));
    }

    #[test]
    fn silence_accumulates_and_note_seen_resets_it() {
        let h = Health::new(2, HeartbeatConfig { interval: Duration::from_millis(5), miss_limit: 2 });
        std::thread::sleep(Duration::from_millis(15));
        assert!(h.overdue(1), "silent past the 10ms window");
        h.note_seen(1);
        assert!(!h.overdue(1), "a frame resets the clock");
        assert!(h.silent_for(1) < Duration::from_millis(10));
    }

    #[test]
    fn mark_dead_reports_the_transition_once() {
        let h = Health::new(2, HeartbeatConfig::default());
        assert!(!h.is_dead(1));
        assert!(h.mark_dead(1), "first marking is the transition");
        assert!(!h.mark_dead(1), "second is idempotent");
        assert!(h.is_dead(1));
    }

    #[test]
    fn rtt_gauge_roundtrips() {
        let h = Health::new(2, HeartbeatConfig::default());
        assert_eq!(h.rtt_us(1), None);
        h.record_rtt(1, 420);
        assert_eq!(h.rtt_us(1), Some(420));
    }
}
