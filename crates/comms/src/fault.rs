//! Per-link fault injection for in-process meshes.
//!
//! A [`FaultController`] is shared (`Arc`) by every endpoint of a mesh;
//! `send` consults it per message. Faults are *sender-side* — a cut
//! link silently discards traffic exactly like an unplugged cable, so
//! the receiver's only signal is its own timeout, which is the failure
//! mode the collectives must surface as [`crate::CommsError::Timeout`]
//! rather than a hang.
//!
//! Randomized schedules reuse `summit_sim::failure`: seeded
//! [`SplitMix64`] streams drive [`StragglerModel`] per-message delay
//! jitter, so an injected fault pattern is a pure function of the seed.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use summit_sim::{SplitMix64, StragglerModel};

/// What `send` should do with one message on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Deliver, optionally after a delay.
    Deliver(Option<Duration>),
    /// Silently lose the message.
    Drop,
}

#[derive(Default)]
struct LinkFault {
    cut: bool,
    drop_next: u32,
    delay: Option<Duration>,
    jitter: Option<Jitter>,
}

struct Jitter {
    rng: SplitMix64,
    model: StragglerModel,
    base: Duration,
}

/// Thread-safe fault plan for every directed link `(from, to)` of a
/// mesh. Healthy links (the default) pay one mutex lock and a hash
/// lookup per send.
#[derive(Default)]
pub struct FaultController {
    links: Mutex<HashMap<(usize, usize), LinkFault>>,
}

impl FaultController {
    pub fn new() -> FaultController {
        FaultController::default()
    }

    fn with_link<R>(&self, from: usize, to: usize, f: impl FnOnce(&mut LinkFault) -> R) -> R {
        let mut links = self.links.lock().unwrap();
        f(links.entry((from, to)).or_default())
    }

    /// Cuts the directed link: every message from `from` to `to` is lost
    /// until [`Self::heal_link`].
    pub fn cut_link(&self, from: usize, to: usize) {
        self.with_link(from, to, |l| l.cut = true);
    }

    /// Restores the link to healthy (clears every fault on it).
    pub fn heal_link(&self, from: usize, to: usize) {
        self.links.lock().unwrap().remove(&(from, to));
    }

    /// Loses the next `n` messages on the link, then heals by itself —
    /// a transient drop burst.
    pub fn drop_next(&self, from: usize, to: usize, n: u32) {
        self.with_link(from, to, |l| l.drop_next += n);
    }

    /// Adds a fixed delivery delay to every message on the link.
    pub fn delay_link(&self, from: usize, to: usize, delay: Duration) {
        self.with_link(from, to, |l| l.delay = Some(delay));
    }

    /// Seeded per-message jitter: each message independently straggles
    /// with probability `model.prob`, adding `model.slowdown × base` to
    /// its delivery time. Deterministic per `(seed, message index)`.
    pub fn jitter_link(
        &self,
        from: usize,
        to: usize,
        seed: u64,
        model: StragglerModel,
        base: Duration,
    ) {
        self.with_link(from, to, |l| {
            l.jitter = Some(Jitter { rng: SplitMix64::new(seed), model, base })
        });
    }

    /// Cuts every link in and out of `rank` — the whole node is gone.
    pub fn kill_rank(&self, rank: usize, world: usize) {
        for peer in 0..world {
            if peer != rank {
                self.cut_link(rank, peer);
                self.cut_link(peer, rank);
            }
        }
    }

    /// Heals every link in and out of `rank`.
    pub fn heal_rank(&self, rank: usize, world: usize) {
        for peer in 0..world {
            if peer != rank {
                self.heal_link(rank, peer);
                self.heal_link(peer, rank);
            }
        }
    }

    /// Whether the directed link is currently cut, *without* consuming
    /// drop budgets or advancing jitter streams. The TCP heartbeat
    /// thread consults this (a cut link must starve the peer's liveness
    /// monitor exactly like a dead process) while leaving the
    /// per-message fault schedule untouched for data traffic — a
    /// background probe must never perturb a seeded drop/jitter plan.
    pub fn is_cut(&self, from: usize, to: usize) -> bool {
        self.links
            .lock()
            .unwrap()
            .get(&(from, to))
            .is_some_and(|l| l.cut)
    }

    pub(crate) fn decide(&self, from: usize, to: usize) -> Decision {
        let mut links = self.links.lock().unwrap();
        let Some(l) = links.get_mut(&(from, to)) else {
            return Decision::Deliver(None);
        };
        if l.cut {
            return Decision::Drop;
        }
        if l.drop_next > 0 {
            l.drop_next -= 1;
            return Decision::Drop;
        }
        let mut delay = l.delay;
        if let Some(j) = &mut l.jitter {
            let mult = j.model.sample(&mut j.rng);
            if mult > 1.0 {
                delay = Some(delay.unwrap_or(Duration::ZERO) + j.base.mul_f64(mult));
            }
        }
        Decision::Deliver(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_by_default_and_cut_heal_roundtrip() {
        let f = FaultController::new();
        assert_eq!(f.decide(0, 1), Decision::Deliver(None));
        f.cut_link(0, 1);
        assert_eq!(f.decide(0, 1), Decision::Drop);
        assert_eq!(f.decide(1, 0), Decision::Deliver(None), "directed");
        f.heal_link(0, 1);
        assert_eq!(f.decide(0, 1), Decision::Deliver(None));
    }

    #[test]
    fn drop_next_is_transient() {
        let f = FaultController::new();
        f.drop_next(2, 3, 2);
        assert_eq!(f.decide(2, 3), Decision::Drop);
        assert_eq!(f.decide(2, 3), Decision::Drop);
        assert_eq!(f.decide(2, 3), Decision::Deliver(None));
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let run = || {
            let f = FaultController::new();
            f.jitter_link(
                0,
                1,
                42,
                StragglerModel { prob: 0.5, slowdown: 3.0 },
                Duration::from_millis(10),
            );
            (0..32).map(|_| f.decide(0, 1)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|d| *d != Decision::Deliver(None)), "some straggle");
        assert!(a.contains(&Decision::Deliver(None)), "some don't");
    }

    #[test]
    fn fixed_delay_applies_to_every_message() {
        let f = FaultController::new();
        f.delay_link(0, 1, Duration::from_millis(7));
        for _ in 0..4 {
            assert_eq!(f.decide(0, 1), Decision::Deliver(Some(Duration::from_millis(7))));
        }
        // Healing clears the delay along with everything else.
        f.heal_link(0, 1);
        assert_eq!(f.decide(0, 1), Decision::Deliver(None));
    }

    #[test]
    fn delay_and_jitter_compose_additively() {
        // A straggling message on a link that also has a fixed delay
        // must pay both: base delay + slowdown × jitter base.
        let f = FaultController::new();
        f.delay_link(0, 1, Duration::from_millis(5));
        f.jitter_link(
            0,
            1,
            7,
            StragglerModel { prob: 1.0, slowdown: 2.0 },
            Duration::from_millis(10),
        );
        let Decision::Deliver(Some(d)) = f.decide(0, 1) else {
            panic!("delayed+jittered link must deliver with a delay");
        };
        assert_eq!(d, Duration::from_millis(5) + Duration::from_millis(10).mul_f64(2.0));
    }

    #[test]
    fn drop_burst_takes_priority_over_delay_then_expires() {
        let f = FaultController::new();
        f.delay_link(3, 1, Duration::from_millis(4));
        f.drop_next(3, 1, 1);
        assert_eq!(f.decide(3, 1), Decision::Drop, "drop budget first");
        assert_eq!(
            f.decide(3, 1),
            Decision::Deliver(Some(Duration::from_millis(4))),
            "delay survives the transient drop burst"
        );
    }

    #[test]
    fn is_cut_probe_does_not_consume_fault_budgets() {
        let f = FaultController::new();
        f.drop_next(0, 1, 1);
        f.jitter_link(
            2,
            3,
            9,
            StragglerModel { prob: 1.0, slowdown: 1.5 },
            Duration::from_millis(1),
        );
        // Probing must not consume the drop token or advance the RNG.
        for _ in 0..5 {
            assert!(!f.is_cut(0, 1));
            assert!(!f.is_cut(2, 3));
        }
        assert_eq!(f.decide(0, 1), Decision::Drop, "drop token still unspent");
        f.cut_link(0, 1);
        assert!(f.is_cut(0, 1));
        assert!(!f.is_cut(1, 0), "directed");
    }

    #[test]
    fn kill_rank_cuts_both_directions() {
        let f = FaultController::new();
        f.kill_rank(1, 3);
        assert_eq!(f.decide(1, 0), Decision::Drop);
        assert_eq!(f.decide(2, 1), Decision::Drop);
        assert_eq!(f.decide(0, 2), Decision::Deliver(None));
        f.heal_rank(1, 3);
        assert_eq!(f.decide(1, 0), Decision::Deliver(None));
    }
}
