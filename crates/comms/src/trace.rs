//! Perfetto trace of the ring schedule.
//!
//! Every ring hop a rank processes is recorded as one Chrome
//! `trace_event` complete event on **pid 2** (pid 0 is the simulated
//! pipeline schedule, pid 1 the live span timers), one `tid` lane per
//! rank — load the combined file from `repro comms --trace` in
//! <https://ui.perfetto.dev> and the reduce-scatter / all-gather wave
//! moving around the ring is directly visible. Recording is gated on
//! `telemetry::enabled()` so the hot path pays one branch when off.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use telemetry::json::Json;
use telemetry::trace::TraceEvent;

/// The pid lane for comms rank events in combined trace files.
pub const COMMS_TRACE_PID: u64 = 2;

static ORIGIN: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

/// Microseconds since the first comms trace observation in the process.
pub fn now_us() -> f64 {
    ORIGIN.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// Records one ring hop (or collective phase) on the rank's lane.
pub fn record_hop(rank: usize, name: String, ts_us: f64, dur_us: f64, args: Vec<(String, Json)>) {
    EVENTS.lock().unwrap().push(TraceEvent {
        name,
        cat: "comms".into(),
        pid: COMMS_TRACE_PID,
        tid: rank as u64,
        ts_us,
        dur_us,
        args,
    });
}

/// Drains every recorded comms event (for trace-file assembly).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut EVENTS.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_once() {
        record_hop(3, "rs b0 s1".into(), now_us(), 1.0, vec![]);
        let evs = take_events();
        assert!(evs.iter().any(|e| e.tid == 3 && e.pid == COMMS_TRACE_PID));
        assert!(take_events().is_empty());
    }
}
