//! Perfetto trace of the comms layer: ring hops, sends, waits, flows.
//!
//! Every ring hop, p2p/collective send and blocking recv wait a rank
//! observes is recorded as one Chrome `trace_event` complete event on
//! **pid 2** (pid 0 is the simulated pipeline schedule, pid 1 the live
//! span timers, pid 3 the pipeline runtime), one `tid` lane per trace
//! lane — load the combined file from `repro comms --trace` in
//! <https://ui.perfetto.dev> and the reduce-scatter / all-gather wave
//! moving around the ring is directly visible. Alongside the slices,
//! every send→recv pair emits a matched [`FlowEvent`] pair keyed by a
//! hash of `(mesh, tag, sender)`, which Perfetto renders as causal
//! arrows across lanes and `telemetry::critical_path` walks as
//! dependency edges.
//!
//! Recording is gated on `telemetry::enabled()` so the hot path pays
//! one branch when off. Each recording thread buffers into its own
//! [`telemetry::ThreadLocalSink`] buffer (no cross-rank lock
//! contention); buffers survive thread death, so a rank killed by a
//! fault drill still contributes its events to [`take_events`].
//! Timestamps come from the shared resettable [`telemetry::clock`], so
//! comms slices line up with span and pipeline lanes in one session.

use telemetry::json::Json;
use telemetry::sink::Handle;
use telemetry::trace::{FlowEvent, TraceEvent};
use telemetry::ThreadLocalSink;

/// The pid lane for comms rank events in combined trace files.
pub const COMMS_TRACE_PID: u64 = 2;

static EVENTS: ThreadLocalSink<TraceEvent> = ThreadLocalSink::new();
static FLOWS: ThreadLocalSink<FlowEvent> = ThreadLocalSink::new();

thread_local! {
    static LOCAL_EVENTS: Handle<TraceEvent> = EVENTS.handle();
    static LOCAL_FLOWS: Handle<FlowEvent> = FLOWS.handle();
}

/// Microseconds on the shared trace clock (see [`telemetry::clock`]).
pub fn now_us() -> f64 {
    telemetry::clock::now_us()
}

/// Records one ring hop (or collective phase) on the rank's lane.
pub fn record_hop(lane: u64, name: String, ts_us: f64, dur_us: f64, args: Vec<(String, Json)>) {
    record_slice(lane, "comms", name, ts_us, dur_us, args);
}

/// Records a blocking-receive wait (deadline recv, ring-hop stall) on
/// the rank's lane. Wait slices carry `cat: "wait"` so the analyzer
/// can split each step into compute / comm / wait / idle.
pub fn record_wait(lane: u64, name: String, ts_us: f64, dur_us: f64, args: Vec<(String, Json)>) {
    record_slice(lane, "wait", name, ts_us, dur_us, args);
}

fn record_slice(
    lane: u64,
    cat: &str,
    name: String,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Json)>,
) {
    LOCAL_EVENTS.with(|buf| {
        buf.lock().push(TraceEvent {
            name,
            cat: cat.into(),
            pid: COMMS_TRACE_PID,
            tid: lane,
            ts_us,
            dur_us,
            args,
        })
    });
}

/// Records one half of a causal send→recv flow arrow on the rank's
/// lane. The sender emits `start = true` from inside its send slice;
/// the consumer emits `start = false` (same `id`) from inside the slice
/// that absorbed the message.
pub fn record_flow(lane: u64, name: String, ts_us: f64, id: u64, start: bool) {
    LOCAL_FLOWS.with(|buf| {
        buf.lock().push(FlowEvent {
            name,
            cat: "msg".into(),
            pid: COMMS_TRACE_PID,
            tid: lane,
            ts_us,
            id,
            start,
        })
    });
}

/// Drains every recorded comms slice (for trace-file assembly),
/// including buffers of threads that have already exited.
pub fn take_events() -> Vec<TraceEvent> {
    EVENTS.drain()
}

/// Drains every recorded flow event.
pub fn take_flows() -> Vec<FlowEvent> {
    FLOWS.drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_once() {
        let _guard = telemetry::registry::test_lock();
        record_hop(3, "rs b0 s1".into(), now_us(), 1.0, vec![]);
        let evs = take_events();
        assert!(evs.iter().any(|e| e.tid == 3 && e.pid == COMMS_TRACE_PID));
        assert!(take_events().is_empty());
    }

    #[test]
    fn waits_and_flows_drain_separately() {
        let _guard = telemetry::registry::test_lock();
        record_wait(1, "recv rank0".into(), now_us(), 5.0, vec![]);
        record_flow(1, "p2p".into(), now_us(), 99, false);
        let evs = take_events();
        assert!(evs.iter().any(|e| e.cat == "wait" && e.tid == 1));
        let flows = take_flows();
        assert!(flows.iter().any(|f| f.id == 99 && !f.start));
        assert!(take_flows().is_empty());
    }

    #[test]
    fn events_from_dead_threads_survive() {
        let _guard = telemetry::registry::test_lock();
        std::thread::spawn(|| {
            record_hop(7, "from the beyond".into(), 1.0, 2.0, vec![]);
        })
        .join()
        .unwrap();
        let evs = take_events();
        assert!(evs.iter().any(|e| e.name == "from the beyond" && e.tid == 7));
    }
}
