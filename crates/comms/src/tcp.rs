//! Cross-process transport: length-prefixed frames over `TcpStream`.
//!
//! [`TcpTransport`] implements the same [`Transport`] trait as the
//! in-process mesh, so [`crate::Communicator`], the ring collectives,
//! and both threaded runtimes run over it unchanged. Each directed
//! link is its own TCP connection: the outbound stream is written
//! under a mutex (shared with the heartbeat thread), the inbound
//! stream is owned by a per-peer **reader thread** that decodes frames
//! and feeds the same `mpsc`-channel inbox the in-process transport
//! uses — so the tagged-stash/deadline-receive machinery is identical
//! on both transports.
//!
//! # Wire format
//!
//! Every frame is `[len: u32 LE]` followed by `len` bytes:
//!
//! ```text
//! ptype: u8 | kind: u8 | epoch: u32 | id: u64 | step: u32 | delay_us: u32 | payload…
//! ```
//!
//! (all integers little-endian; f16 as raw bit patterns, so payloads
//! round-trip bitwise). `delay_us` carries a [`FaultController`]
//! injected delivery delay: the *sender* stamps it and the *reader*
//! turns it into a future `deliver_at` at enqueue time, so a delayed
//! link never blocks the reader thread and per-link FIFO order is
//! preserved — exactly the in-process semantics.
//!
//! # Failure detection
//!
//! A background heartbeat thread pings every peer each
//! [`HeartbeatConfig::interval`] and declares a peer dead after
//! [`HeartbeatConfig::window`] of silence (any inbound frame counts as
//! liveness). Receives from a dead peer return
//! [`CommsError::PeerDead`] immediately — detection is bounded by the
//! heartbeat window even when the collective deadline is much longer.
//! A SIGKILLed peer usually surfaces even faster: the OS closes its
//! sockets, the reader sees EOF, and the inbox disconnect becomes
//! [`CommsError::Closed`].

use crate::fault::{Decision, FaultController};
use crate::heartbeat::{Health, HeartbeatConfig};
use crate::transport::{Envelope, Kind, Message, Payload, Tag, Transport};
use crate::CommsError;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::json::Json;
use tensor::f16::F16;

/// One outbound stream, shared between `send` and the heartbeat thread
/// (pings and pongs interleave with data frames under the lock — TCP
/// preserves the write order, the reader demultiplexes by kind).
type SharedWriter = Arc<Mutex<TcpStream>>;

/// Frame body bytes before the payload (everything after the length
/// word): ptype + kind + epoch + id + step + delay_us.
const FRAME_HEADER: u32 = 22;
/// Upper bound on one frame's body — anything larger is a corrupt
/// length word, not a real message.
const MAX_FRAME: u32 = 1 << 28;
/// Reader-thread read timeout and receive poll slice: bounds both
/// shutdown latency and how stale a `PeerDead` check can be.
const POLL: Duration = Duration::from_millis(20);

fn kind_code(k: Kind) -> u8 {
    match k {
        Kind::AllReduce => 0,
        Kind::AllGather => 1,
        Kind::Broadcast => 2,
        Kind::Barrier => 3,
        Kind::P2p => 4,
        Kind::Telemetry => 5,
        Kind::Heartbeat => 6,
    }
}

fn kind_from(c: u8) -> Option<Kind> {
    Some(match c {
        0 => Kind::AllReduce,
        1 => Kind::AllGather,
        2 => Kind::Broadcast,
        3 => Kind::Barrier,
        4 => Kind::P2p,
        5 => Kind::Telemetry,
        6 => Kind::Heartbeat,
        _ => return None,
    })
}

fn payload_code(p: &Payload) -> u8 {
    match p {
        Payload::F16(_) => 0,
        Payload::F32(_) => 1,
        Payload::F64(_) => 2,
        Payload::Bytes(_) => 3,
    }
}

/// Encodes one message (plus its injected delivery delay) as a
/// complete frame, length word included.
fn encode_frame(msg: &Message, delay_us: u32) -> Vec<u8> {
    let body_len = FRAME_HEADER as usize + msg.payload.data_bytes() as usize;
    let mut buf = Vec::with_capacity(4 + body_len);
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    buf.push(payload_code(&msg.payload));
    buf.push(kind_code(msg.tag.kind));
    buf.extend_from_slice(&msg.tag.epoch.to_le_bytes());
    buf.extend_from_slice(&msg.tag.id.to_le_bytes());
    buf.extend_from_slice(&msg.tag.step.to_le_bytes());
    buf.extend_from_slice(&delay_us.to_le_bytes());
    match &msg.payload {
        Payload::F16(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Payload::F32(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::F64(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::Bytes(v) => buf.extend_from_slice(v),
    }
    buf
}

/// Decodes one frame body (everything after the length word).
fn decode_frame(body: &[u8]) -> Result<(Message, u32), String> {
    if body.len() < FRAME_HEADER as usize {
        return Err(format!("frame body too short: {} bytes", body.len()));
    }
    let ptype = body[0];
    let kind = kind_from(body[1]).ok_or_else(|| format!("unknown kind code {}", body[1]))?;
    let epoch = u32::from_le_bytes(body[2..6].try_into().unwrap());
    let id = u64::from_le_bytes(body[6..14].try_into().unwrap());
    let step = u32::from_le_bytes(body[14..18].try_into().unwrap());
    let delay_us = u32::from_le_bytes(body[18..22].try_into().unwrap());
    let data = &body[FRAME_HEADER as usize..];
    let payload = match ptype {
        0 => {
            if !data.len().is_multiple_of(2) {
                return Err(format!("f16 payload of {} bytes", data.len()));
            }
            Payload::F16(
                data.chunks_exact(2)
                    .map(|c| F16::from_bits(u16::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            )
        }
        1 => {
            if !data.len().is_multiple_of(4) {
                return Err(format!("f32 payload of {} bytes", data.len()));
            }
            Payload::F32(
                data.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        2 => {
            if !data.len().is_multiple_of(8) {
                return Err(format!("f64 payload of {} bytes", data.len()));
            }
            Payload::F64(
                data.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        3 => Payload::Bytes(data.to_vec()),
        _ => return Err(format!("unknown payload code {ptype}")),
    };
    Ok((Message { tag: Tag { epoch, kind, id, step }, payload }, delay_us))
}

fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Reads exactly `buf.len()` bytes, riding out read timeouts (the
/// stream has a [`POLL`] read timeout so shutdown stays responsive).
/// Returns `Ok(false)` on orderly EOF or shutdown, `Err` on a real
/// socket error. Partial progress is preserved across timeouts.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Per-peer reader: decodes inbound frames, refreshes the liveness
/// clock, answers heartbeat pings in line, and enqueues data frames
/// with their injected-delay delivery instant. Exits (dropping the
/// inbox sender, which surfaces as [`CommsError::Closed`]) on EOF,
/// socket error, corrupt frame, or transport shutdown.
fn reader_loop(
    rank: usize,
    peer: usize,
    mut stream: TcpStream,
    tx: Sender<Envelope>,
    pong: Option<SharedWriter>,
    health: Arc<Health>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        let mut len_buf = [0u8; 4];
        match read_full(&mut stream, &mut len_buf, &shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_le_bytes(len_buf);
        if !(FRAME_HEADER..=MAX_FRAME).contains(&len) {
            telemetry::log_warn!(
                "rank {rank}: corrupt frame length {len} from peer {peer}; closing link"
            );
            return;
        }
        let mut body = vec![0u8; len as usize];
        match read_full(&mut stream, &mut body, &shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let (msg, delay_us) = match decode_frame(&body) {
            Ok(d) => d,
            Err(e) => {
                telemetry::log_warn!(
                    "rank {rank}: corrupt frame from peer {peer} ({e}); closing link"
                );
                return;
            }
        };
        health.note_seen(peer);
        match msg.tag.kind {
            Kind::Heartbeat if msg.tag.step == 0 => {
                // Ping: answer with a pong carrying the same timestamp.
                if let Some(w) = &pong {
                    let reply = Message {
                        tag: Tag { step: 1, ..msg.tag },
                        payload: Payload::Bytes(Vec::new()),
                    };
                    let _ = w.lock().unwrap().write_all(&encode_frame(&reply, 0));
                }
            }
            Kind::Heartbeat => {
                // Pong: the id is our ping's send time in unix micros.
                let rtt = unix_micros().saturating_sub(msg.tag.id);
                health.record_rtt(peer, rtt);
                if telemetry::enabled() {
                    telemetry::global()
                        .gauge(&format!("comms.tcp.rtt_us.{rank}->{peer}"))
                        .set(rtt as f64);
                }
            }
            _ => {
                let deliver_at =
                    (delay_us > 0).then(|| Instant::now() + Duration::from_micros(delay_us.into()));
                if tx.send(Envelope { deliver_at, msg }).is_err() {
                    return;
                }
            }
        }
    }
}

/// Heartbeat monitor: pings every live peer each interval and declares
/// peers dead after a full window of silence. Pings consult
/// [`FaultController::is_cut`] — a *non-consuming* probe, so the
/// background traffic never perturbs seeded drop/jitter schedules —
/// which makes a cut link starve the remote monitor exactly like a
/// dead process.
fn monitor_loop(
    rank: usize,
    world: usize,
    writers: Vec<Option<SharedWriter>>,
    health: Arc<Health>,
    faults: Arc<FaultController>,
    shutdown: Arc<AtomicBool>,
) {
    let interval = health.config().interval;
    let mut warned = vec![false; world];
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            let nap = (interval - slept).min(Duration::from_millis(10));
            std::thread::sleep(nap);
            slept += nap;
        }
        for peer in 0..world {
            if peer == rank || health.is_dead(peer) {
                continue;
            }
            if !faults.is_cut(rank, peer) {
                if let Some(w) = &writers[peer] {
                    let ping = Message {
                        tag: Tag {
                            epoch: 0,
                            kind: Kind::Heartbeat,
                            id: unix_micros(),
                            step: 0,
                        },
                        payload: Payload::Bytes(Vec::new()),
                    };
                    let _ = w.lock().unwrap().write_all(&encode_frame(&ping, 0));
                }
            }
            let silent = health.silent_for(peer);
            if silent <= interval {
                warned[peer] = false;
            } else if !warned[peer] && silent > interval * 2 {
                warned[peer] = true;
                telemetry::log_warn!(
                    "rank {rank}: peer {peer} silent for {}ms (heartbeat misses)",
                    silent.as_millis()
                );
                if telemetry::enabled() {
                    telemetry::global().counter("comms.tcp.heartbeat_misses").inc();
                }
                telemetry::jsonl::emit_link_event(
                    "heartbeat_miss",
                    rank,
                    Some(peer),
                    vec![("silent_ms".into(), Json::UInt(silent.as_millis() as u64))],
                );
            }
            if health.overdue(peer) && health.mark_dead(peer) {
                telemetry::log_warn!(
                    "rank {rank}: peer {peer} silent for {}ms — declaring dead",
                    silent.as_millis()
                );
                if telemetry::enabled() {
                    telemetry::global().counter("comms.tcp.peers_dead").inc();
                }
                telemetry::jsonl::emit_link_event(
                    "peer_dead",
                    rank,
                    Some(peer),
                    vec![("silent_ms".into(), Json::UInt(silent.as_millis() as u64))],
                );
            }
        }
    }
}

/// A cross-process mesh endpoint: one TCP connection per directed
/// link, per-peer reader threads, and a heartbeat failure detector.
/// Built by [`crate::bootstrap_tcp`] (multi-process rendezvous) or
/// [`TcpTransport::local_mesh`] (in-process loopback, for tests and
/// benches).
pub struct TcpTransport {
    rank: usize,
    world: usize,
    mesh_id: u64,
    writers: Vec<Option<SharedWriter>>,
    inbox: Vec<Option<Receiver<Envelope>>>,
    held: Vec<Option<Envelope>>,
    health: Arc<Health>,
    faults: Arc<FaultController>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    bytes_sent: u64,
    msgs_sent: u64,
    msgs_dropped: u64,
}

impl TcpTransport {
    /// Wires one endpoint from already-connected streams: `outbound[p]`
    /// is written to peer `p`, `inbound[p]` is read by a dedicated
    /// thread. Spawns `world − 1` readers plus the heartbeat monitor.
    pub(crate) fn from_streams(
        rank: usize,
        world: usize,
        mesh_id: u64,
        outbound: Vec<Option<TcpStream>>,
        inbound: Vec<Option<TcpStream>>,
        faults: Arc<FaultController>,
        hb: HeartbeatConfig,
    ) -> Result<TcpTransport, CommsError> {
        assert_eq!(outbound.len(), world);
        assert_eq!(inbound.len(), world);
        let io_err = |what: &str, e: std::io::Error| CommsError::Io(format!("{what}: {e}"));
        let mut writers: Vec<Option<SharedWriter>> = Vec::with_capacity(world);
        for s in outbound {
            writers.push(match s {
                Some(s) => {
                    s.set_nodelay(true).map_err(|e| io_err("set_nodelay", e))?;
                    Some(Arc::new(Mutex::new(s)))
                }
                None => None,
            });
        }
        let health = Arc::new(Health::new(world, hb));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut inbox = Vec::with_capacity(world);
        let mut threads = Vec::new();
        for (peer, stream) in inbound.into_iter().enumerate() {
            let Some(s) = stream else {
                inbox.push(None);
                continue;
            };
            s.set_nodelay(true).map_err(|e| io_err("set_nodelay", e))?;
            s.set_read_timeout(Some(POLL)).map_err(|e| io_err("set_read_timeout", e))?;
            let (tx, rx) = channel();
            inbox.push(Some(rx));
            let pong = writers[peer].clone();
            let h = Arc::clone(&health);
            let sd = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-rd-{rank}<{peer}"))
                    .spawn(move || reader_loop(rank, peer, s, tx, pong, h, sd))
                    .map_err(|e| io_err("spawn reader", e))?,
            );
        }
        let w = writers.clone();
        let h = Arc::clone(&health);
        let f = Arc::clone(&faults);
        let sd = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("tcp-hb-{rank}"))
                .spawn(move || monitor_loop(rank, world, w, h, f, sd))
                .map_err(|e| io_err("spawn heartbeat", e))?,
        );
        Ok(TcpTransport {
            rank,
            world,
            mesh_id,
            writers,
            inbox,
            held: (0..world).map(|_| None).collect(),
            health,
            faults,
            shutdown,
            threads,
            bytes_sent: 0,
            msgs_sent: 0,
            msgs_dropped: 0,
        })
    }

    /// A fault-free loopback mesh with default heartbeat parameters.
    pub fn local_mesh(world: usize) -> Result<Vec<TcpTransport>, CommsError> {
        Self::local_mesh_with(world, Arc::new(FaultController::new()), HeartbeatConfig::default())
    }

    /// Builds a full mesh of `world` endpoints over 127.0.0.1 sockets in
    /// one process — real TCP framing and reader threads, no rendezvous.
    /// Every link consults `faults` on send, exactly like
    /// [`InProcTransport::mesh_with_faults`](crate::InProcTransport::mesh_with_faults).
    pub fn local_mesh_with(
        world: usize,
        faults: Arc<FaultController>,
        hb: HeartbeatConfig,
    ) -> Result<Vec<TcpTransport>, CommsError> {
        assert!(world >= 1, "a mesh needs at least one rank");
        let io_err = |what: &str, e: std::io::Error| CommsError::Io(format!("{what}: {e}"));
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind loopback", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
        let mut outbound: Vec<Vec<Option<TcpStream>>> =
            (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
        let mut inbound: Vec<Vec<Option<TcpStream>>> =
            (0..world).map(|_| (0..world).map(|_| None).collect()).collect();
        for from in 0..world {
            for to in 0..world {
                if from == to {
                    continue;
                }
                // The listener backlog queues the connection, so a
                // sequential connect-then-accept cannot deadlock.
                let c = TcpStream::connect(addr).map_err(|e| io_err("connect loopback", e))?;
                let (a, _) = listener.accept().map_err(|e| io_err("accept loopback", e))?;
                outbound[from][to] = Some(c);
                inbound[to][from] = Some(a);
            }
        }
        let mesh_id = next_mesh_id();
        outbound
            .into_iter()
            .zip(inbound)
            .enumerate()
            .map(|(rank, (out, inb))| {
                Self::from_streams(rank, world, mesh_id, out, inb, Arc::clone(&faults), hb)
            })
            .collect()
    }

    /// The shared fault controller (for tests that only hold endpoints).
    pub fn faults(&self) -> &Arc<FaultController> {
        &self.faults
    }

    /// Whether the failure detector has declared `peer` dead.
    pub fn peer_dead(&self, peer: usize) -> bool {
        self.health.is_dead(peer)
    }

    /// Last measured heartbeat round trip to `peer`, if any pong has
    /// come back yet.
    pub fn rtt_us(&self, peer: usize) -> Option<u64> {
        self.health.rtt_us(peer)
    }

    fn closed(&self, peer: usize) -> CommsError {
        CommsError::Closed { rank: self.rank, peer }
    }

    fn dead(&self, peer: usize) -> CommsError {
        CommsError::PeerDead { rank: self.rank, peer }
    }
}

/// Process-unique mesh ids for loopback meshes, salted into a distinct
/// range from in-process mesh ids so flow-trace ids never collide.
fn next_mesh_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    (1 << 32) | NEXT.fetch_add(1, Ordering::Relaxed)
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("mesh_id", &self.mesh_id)
            .finish_non_exhaustive()
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn mesh_id(&self) -> u64 {
        self.mesh_id
    }

    fn send(&mut self, to: usize, msg: Message) -> Result<(), CommsError> {
        let Some(w) = self.writers.get(to).and_then(|o| o.as_ref()).map(Arc::clone) else {
            return Err(CommsError::Mismatch(format!("send to invalid rank {to}")));
        };
        self.bytes_sent += msg.payload.wire_bytes();
        self.msgs_sent += 1;
        if self.health.is_dead(to) {
            self.msgs_dropped += 1;
            return Err(self.dead(to));
        }
        match self.faults.decide(self.rank, to) {
            Decision::Drop => {
                self.msgs_dropped += 1;
                Ok(())
            }
            Decision::Deliver(delay) => {
                let delay_us =
                    delay.map_or(0u32, |d| d.as_micros().min(u128::from(u32::MAX)) as u32);
                let frame = encode_frame(&msg, delay_us);
                w.lock()
                    .unwrap()
                    .write_all(&frame)
                    .map_err(|e| CommsError::Io(format!("write to rank {to}: {e}")))
            }
        }
    }

    fn recv_from(&mut self, from: usize, deadline: Instant) -> Result<Message, CommsError> {
        let timeout = || CommsError::Timeout { rank: self.rank, from };
        loop {
            if self.health.is_dead(from) {
                return Err(self.dead(from));
            }
            let now = Instant::now();
            if let Some(env) = self.held[from].take() {
                match env.deliver_at {
                    Some(at) if at > now => {
                        if at > deadline {
                            // FIFO: this *is* the next message and it
                            // cannot arrive in time.
                            self.held[from] = Some(env);
                            return Err(timeout());
                        }
                        std::thread::sleep((at - now).min(POLL));
                        self.held[from] = Some(env);
                        continue;
                    }
                    _ => return Ok(env.msg),
                }
            }
            if now >= deadline {
                return Err(timeout());
            }
            let rx = self.inbox[from]
                .as_ref()
                .ok_or_else(|| CommsError::Mismatch(format!("recv from invalid rank {from}")))?;
            // Poll in short slices so a mid-wait PeerDead verdict
            // surfaces within ~POLL instead of the full deadline.
            match rx.recv_timeout((deadline - now).min(POLL)) {
                Ok(env) => self.held[from] = Some(env),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(self.closed(from)),
            }
        }
    }

    fn try_recv_from(&mut self, from: usize) -> Result<Option<Message>, CommsError> {
        if from < self.world && from != self.rank && self.health.is_dead(from) {
            return Err(self.dead(from));
        }
        let now = Instant::now();
        if let Some(env) = self.held[from].take() {
            match env.deliver_at {
                Some(at) if at > now => {
                    self.held[from] = Some(env);
                    return Ok(None);
                }
                _ => return Ok(Some(env.msg)),
            }
        }
        let Some(rx) = self.inbox[from].as_ref() else {
            return Ok(None);
        };
        match rx.try_recv() {
            Ok(env) => match env.deliver_at {
                Some(at) if at > now => {
                    self.held[from] = Some(env);
                    Ok(None)
                }
                _ => Ok(Some(env.msg)),
            },
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.closed(from)),
        }
    }

    fn drain(&mut self) {
        for from in 0..self.world {
            self.held[from] = None;
            if let Some(rx) = self.inbox[from].as_ref() {
                while rx.try_recv().is_ok() {}
            }
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn msgs_dropped(&self) -> u64 {
        self.msgs_dropped
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Closing the outbound half lets the peer's readers see EOF
        // promptly; our own readers exit on the flag within one POLL.
        for w in self.writers.iter().flatten() {
            let _ = w.lock().unwrap().shutdown(Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Client-side reuse of the transport's wire format: the same
/// length-prefixed frames [`TcpTransport`] speaks, exposed for peers
/// that are not mesh ranks — the serving tier's request/response
/// protocol (`crates/serve`) rides on these so a `samo-serve` client is
/// just another frame speaker on the same wire. Frames written here are
/// indistinguishable on the wire from transport frames; the `delay_us`
/// word is always 0 (fault injection is a mesh concern).
pub mod framing {
    use super::*;

    /// Largest frame body the reader accepts; mirrors the transport's
    /// own corrupt-length guard.
    pub const MAX_FRAME_BYTES: u32 = MAX_FRAME;

    /// Encodes one message as a complete frame, length word included.
    pub fn encode(msg: &Message) -> Vec<u8> {
        encode_frame(msg, 0)
    }

    /// Decodes one frame body (everything after the length word).
    pub fn decode(body: &[u8]) -> Result<Message, String> {
        decode_frame(body).map(|(msg, _delay)| msg)
    }

    /// Writes one message as a frame. The caller serializes access to
    /// the stream (frames must not interleave).
    pub fn write_message(stream: &mut TcpStream, msg: &Message) -> std::io::Result<()> {
        stream.write_all(&encode(msg))
    }

    /// Reads one complete frame, riding out read timeouts like the
    /// transport's reader threads. Returns `Ok(None)` on orderly EOF or
    /// when `shutdown` flips, `Err` on a socket error or a corrupt
    /// frame (bad length word, undecodable body).
    pub fn read_message(
        stream: &mut TcpStream,
        shutdown: &AtomicBool,
    ) -> std::io::Result<Option<Message>> {
        let mut len_buf = [0u8; 4];
        match read_full(stream, &mut len_buf, shutdown)? {
            true => {}
            false => return Ok(None),
        }
        let len = u32::from_le_bytes(len_buf);
        if !(FRAME_HEADER..=MAX_FRAME).contains(&len) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt frame length {len}"),
            ));
        }
        let mut body = vec![0u8; len as usize];
        match read_full(stream, &mut body, shutdown)? {
            true => {}
            false => return Ok(None),
        }
        decode_frame(&body)
            .map(|(msg, _delay)| Some(msg))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: Kind, id: u64, payload: Payload) -> Message {
        Message { tag: Tag { epoch: 3, kind, id, step: 7 }, payload }
    }

    #[test]
    fn frames_roundtrip_every_payload_type_bitwise() {
        let cases = vec![
            msg(Kind::AllReduce, 1, Payload::F16(vec![
                F16::from_bits(0x3c00),
                F16::from_bits(0x8001), // -min subnormal: bit pattern must survive
                F16::from_bits(0x7e00), // NaN
            ])),
            msg(Kind::P2p, 2, Payload::F32(vec![1.5, -0.0, f32::NAN])),
            msg(Kind::AllGather, 3, Payload::F64(vec![2.0_f64.powi(-40)])),
            msg(Kind::Barrier, 4, Payload::Bytes(vec![0, 255, 7])),
            msg(Kind::Heartbeat, 5, Payload::Bytes(Vec::new())),
        ];
        for m in cases {
            let frame = encode_frame(&m, 1234);
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
            assert_eq!(len as usize, frame.len() - 4);
            let (back, delay) = decode_frame(&frame[4..]).unwrap();
            assert_eq!(delay, 1234);
            assert_eq!(back.tag, m.tag);
            // Bitwise comparison (PartialEq on f32/f64 fails on NaN).
            match (&back.payload, &m.payload) {
                (Payload::F16(a), Payload::F16(b)) => {
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
                (Payload::F32(a), Payload::F32(b)) => {
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
                (Payload::F64(a), Payload::F64(b)) => {
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
                (Payload::Bytes(a), Payload::Bytes(b)) => assert_eq!(a, b),
                _ => panic!("payload type changed in transit"),
            }
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        assert!(decode_frame(&[0u8; 5]).is_err(), "truncated header");
        let good = encode_frame(&msg(Kind::Barrier, 0, Payload::Bytes(vec![])), 0);
        let mut bad_kind = good[4..].to_vec();
        bad_kind[1] = 99;
        assert!(decode_frame(&bad_kind).is_err());
        let mut bad_ptype = good[4..].to_vec();
        bad_ptype[0] = 42;
        assert!(decode_frame(&bad_ptype).is_err());
        // An f64 payload whose byte count is not a multiple of 8.
        let mut ragged = encode_frame(&msg(Kind::AllReduce, 0, Payload::F64(vec![1.0])), 0);
        ragged.truncate(ragged.len() - 3);
        assert!(decode_frame(&ragged[4..]).is_err());
    }

    #[test]
    fn framing_module_roundtrips_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
            let shutdown = AtomicBool::new(false);
            // Echo frames until the client hangs up.
            while let Some(m) = framing::read_message(&mut stream, &shutdown).unwrap() {
                framing::write_message(&mut stream, &m).unwrap();
            }
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let shutdown = AtomicBool::new(false);
        for id in 0..3u64 {
            let m = msg(Kind::P2p, id, Payload::F32(vec![id as f32, -0.0, f32::MIN_POSITIVE]));
            framing::write_message(&mut client, &m).unwrap();
            let back = framing::read_message(&mut client, &shutdown).unwrap().unwrap();
            assert_eq!(back.tag, m.tag);
            let (Payload::F32(a), Payload::F32(b)) = (&back.payload, &m.payload) else {
                panic!("payload type changed in transit");
            };
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn wire_bytes_model_matches_frame_overhead_order() {
        // The accounting model charges HEADER_BYTES = 16 per message;
        // the real frame spends 4 (len) + 22 (header) = 26. Both are
        // O(1) per message — assert the real header stays a small
        // constant so the model remains a sane proxy.
        let m = msg(Kind::AllReduce, 9, Payload::F16(vec![F16::from_f32(1.0); 10]));
        let frame = encode_frame(&m, 0);
        assert_eq!(frame.len(), 4 + 22 + 20);
    }
}
