//! The transport layer: typed messages and point-to-point endpoints.
//!
//! [`Transport`] is the narrow waist between the collectives and the
//! wire. The in-process implementation ([`InProcTransport`]) is a full
//! mesh of `mpsc` channels — one FIFO per directed link, exactly the
//! ordering guarantee TCP gives — so a socket-framed transport can
//! implement the same five operations later without touching the
//! collective algorithms.

use crate::fault::{Decision, FaultController};
use crate::CommsError;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;
use tensor::f16::F16;

/// Typed message body. Reduce-scatter hops carry f64 partial sums (the
/// exactness that makes the ring deterministic — see the crate docs);
/// everything else moves compressed f16 or raw bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    F16(Vec<F16>),
    /// Full-precision boundary activations / activation-gradients for
    /// inter-layer (pipeline) point-to-point traffic, which must move
    /// bit-exact f32 values to keep the pipelined backward bitwise
    /// identical to the single-process trainer.
    F32(Vec<f32>),
    F64(Vec<f64>),
    Bytes(Vec<u8>),
}

impl Payload {
    /// Fixed per-message framing a real wire pays: tag + length.
    pub const HEADER_BYTES: u64 = 16;

    /// Payload data bytes (excluding framing).
    pub fn data_bytes(&self) -> u64 {
        match self {
            Payload::F16(v) => 2 * v.len() as u64,
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::Bytes(v) => v.len() as u64,
        }
    }

    /// Bytes this message occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        Self::HEADER_BYTES + self.data_bytes()
    }
}

/// Which collective a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    AllReduce,
    AllGather,
    Broadcast,
    Barrier,
    /// Point-to-point pipeline traffic (boundary activations and
    /// activation-gradients). Unlike the collectives above, p2p tags
    /// are caller-supplied — both endpoints derive the same
    /// `(id, step)` from `(training step, microbatch, direction)`
    /// instead of consuming the shared monotonic collective counter,
    /// so stages exchanging different message counts stay aligned.
    P2p,
    /// Best-effort metrics snapshots shipped to rank 0 for mesh-wide
    /// aggregation. Like [`Kind::P2p`] the tags are caller-supplied;
    /// unlike everything else a lost or late snapshot must never fail
    /// a collective, so telemetry traffic is sent and received through
    /// the non-poisoning best-effort paths only.
    Telemetry,
    /// Liveness probes on a socket transport: a background thread pings
    /// every peer each interval (`step` 0) and the peer's reader
    /// answers in line (`step` 1), yielding a per-link RTT gauge.
    /// Heartbeats are consumed inside the transport — they refresh the
    /// peer's last-seen clock and never reach the tagged inbox, so the
    /// collectives are oblivious to them.
    Heartbeat,
}

/// Self-describing routing header. `(epoch, kind, id, step)` is unique
/// per directed link for the lifetime of an epoch: `id` is a
/// per-communicator monotonic counter and every rank issues collectives
/// in the same program order, so tags agree across ranks without
/// negotiation, and a fast rank's early traffic for collective `id+k`
/// can be stashed instead of misrouted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Bumped on recovery so post-restore traffic never aliases stale
    /// in-flight messages from a failed step.
    pub epoch: u32,
    pub kind: Kind,
    /// Which collective (monotonic per epoch).
    pub id: u64,
    /// Hop index within the collective's schedule.
    pub step: u32,
}

/// One message: routing tag plus typed payload.
#[derive(Debug)]
pub struct Message {
    pub tag: Tag,
    pub payload: Payload,
}

/// An envelope in flight; the fault injector may stamp a future
/// delivery instant (link delay). Shared with the TCP transport, whose
/// reader threads stamp `deliver_at` at enqueue time (carrying the
/// injected delay in the frame) so a slow link never blocks the reader.
pub(crate) struct Envelope {
    pub(crate) deliver_at: Option<Instant>,
    pub(crate) msg: Message,
}

/// A rank's endpoint: non-blocking sends, per-peer FIFO receives with a
/// deadline. `Send` so each rank thread owns its endpoint outright.
pub trait Transport: Send {
    fn rank(&self) -> usize;
    fn world(&self) -> usize;

    /// Process-unique id of the mesh this endpoint belongs to. Folded
    /// into trace flow-event ids so identical tags on different meshes
    /// (e.g. the pipeline's per-replica p2p meshes and per-stage data
    /// meshes) never collide in a merged trace.
    fn mesh_id(&self) -> u64;

    /// Queues a message to `to`. Never blocks; a cut link "succeeds"
    /// (the loss only surfaces as the receiver's timeout).
    fn send(&mut self, to: usize, msg: Message) -> Result<(), CommsError>;

    /// Blocks until a message from `from` arrives or `deadline` passes.
    fn recv_from(&mut self, from: usize, deadline: Instant) -> Result<Message, CommsError>;

    /// Non-blocking receive from `from`.
    fn try_recv_from(&mut self, from: usize) -> Result<Option<Message>, CommsError>;

    /// Discards every queued inbound message (recovery path).
    fn drain(&mut self);

    /// Cumulative wire bytes offered to the link layer (dropped
    /// messages included — the sender did transmit them).
    fn bytes_sent(&self) -> u64;
    fn msgs_sent(&self) -> u64;
    /// Messages the fault injector discarded.
    fn msgs_dropped(&self) -> u64;
}

/// In-process mesh endpoint: one `mpsc` channel per directed link.
pub struct InProcTransport {
    rank: usize,
    world: usize,
    mesh_id: u64,
    /// `out[to]` — `None` at `to == rank`.
    out: Vec<Option<Sender<Envelope>>>,
    /// `inbox[from]` — `None` at `from == rank`.
    inbox: Vec<Option<Receiver<Envelope>>>,
    /// A received envelope whose delivery instant is still in the
    /// future (injected delay); per-link FIFO order is preserved.
    held: Vec<Option<Envelope>>,
    faults: Arc<FaultController>,
    bytes_sent: u64,
    msgs_sent: u64,
    msgs_dropped: u64,
}

impl InProcTransport {
    /// Builds a fully connected fault-free mesh of `world` endpoints.
    pub fn mesh(world: usize) -> Vec<InProcTransport> {
        Self::mesh_with_faults(world, Arc::new(FaultController::new()))
    }

    /// Builds a mesh whose every link consults `faults` on each send.
    pub fn mesh_with_faults(
        world: usize,
        faults: Arc<FaultController>,
    ) -> Vec<InProcTransport> {
        assert!(world >= 1, "a mesh needs at least one rank");
        static NEXT_MESH_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mesh_id = NEXT_MESH_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // txs[from][to] / rxs[to][from]
        let mut txs: Vec<Vec<Option<Sender<Envelope>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for from in 0..world {
            for to in 0..world {
                if from != to {
                    let (tx, rx) = channel();
                    txs[from][to] = Some(tx);
                    rxs[to][from] = Some(rx);
                }
            }
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (out, inbox))| InProcTransport {
                rank,
                world,
                mesh_id,
                out,
                inbox,
                held: (0..world).map(|_| None).collect(),
                faults: Arc::clone(&faults),
                bytes_sent: 0,
                msgs_sent: 0,
                msgs_dropped: 0,
            })
            .collect()
    }

    /// The shared fault controller (for tests that only hold endpoints).
    pub fn faults(&self) -> &Arc<FaultController> {
        &self.faults
    }

    fn closed(&self, peer: usize) -> CommsError {
        CommsError::Closed { rank: self.rank, peer }
    }
}

impl Transport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn mesh_id(&self) -> u64 {
        self.mesh_id
    }

    fn send(&mut self, to: usize, msg: Message) -> Result<(), CommsError> {
        let tx = self
            .out
            .get(to)
            .and_then(|o| o.as_ref())
            .ok_or_else(|| CommsError::Mismatch(format!("send to invalid rank {to}")))?;
        self.bytes_sent += msg.payload.wire_bytes();
        self.msgs_sent += 1;
        match self.faults.decide(self.rank, to) {
            Decision::Drop => {
                self.msgs_dropped += 1;
                Ok(())
            }
            Decision::Deliver(delay) => {
                let env = Envelope { deliver_at: delay.map(|d| Instant::now() + d), msg };
                tx.send(env).map_err(|_| self.closed(to))
            }
        }
    }

    fn recv_from(&mut self, from: usize, deadline: Instant) -> Result<Message, CommsError> {
        let timeout = || CommsError::Timeout { rank: self.rank, from };
        loop {
            let now = Instant::now();
            if let Some(env) = self.held[from].take() {
                match env.deliver_at {
                    Some(at) if at > now => {
                        if at > deadline {
                            // FIFO: this *is* the next message and it
                            // cannot arrive in time.
                            self.held[from] = Some(env);
                            return Err(timeout());
                        }
                        std::thread::sleep(at - now);
                        self.held[from] = Some(env);
                        continue;
                    }
                    _ => return Ok(env.msg),
                }
            }
            if now >= deadline {
                return Err(timeout());
            }
            let rx = self.inbox[from]
                .as_ref()
                .ok_or_else(|| CommsError::Mismatch(format!("recv from invalid rank {from}")))?;
            match rx.recv_timeout(deadline - now) {
                Ok(env) => self.held[from] = Some(env),
                Err(RecvTimeoutError::Timeout) => return Err(timeout()),
                Err(RecvTimeoutError::Disconnected) => return Err(self.closed(from)),
            }
        }
    }

    fn try_recv_from(&mut self, from: usize) -> Result<Option<Message>, CommsError> {
        let now = Instant::now();
        if let Some(env) = self.held[from].take() {
            match env.deliver_at {
                Some(at) if at > now => {
                    self.held[from] = Some(env);
                    return Ok(None);
                }
                _ => return Ok(Some(env.msg)),
            }
        }
        let Some(rx) = self.inbox[from].as_ref() else {
            return Ok(None);
        };
        match rx.try_recv() {
            Ok(env) => match env.deliver_at {
                Some(at) if at > now => {
                    self.held[from] = Some(env);
                    Ok(None)
                }
                _ => Ok(Some(env.msg)),
            },
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.closed(from)),
        }
    }

    fn drain(&mut self) {
        for from in 0..self.world {
            self.held[from] = None;
            if let Some(rx) = self.inbox[from].as_ref() {
                while rx.try_recv().is_ok() {}
            }
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn msgs_dropped(&self) -> u64 {
        self.msgs_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tag(id: u64, step: u32) -> Tag {
        Tag { epoch: 0, kind: Kind::Barrier, id, step }
    }

    fn deadline_ms(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn mesh_delivers_in_fifo_order() {
        let mut mesh = InProcTransport::mesh(2);
        let (mut a, mut b) = {
            let b = mesh.pop().unwrap();
            (mesh.pop().unwrap(), b)
        };
        for i in 0..4 {
            a.send(1, Message { tag: tag(i, 0), payload: Payload::Bytes(vec![i as u8]) })
                .unwrap();
        }
        for i in 0..4 {
            let m = b.recv_from(0, deadline_ms(1000)).unwrap();
            assert_eq!(m.tag.id, i);
            assert_eq!(m.payload, Payload::Bytes(vec![i as u8]));
        }
        assert!(b.try_recv_from(0).unwrap().is_none());
        assert_eq!(a.bytes_sent(), 4 * (Payload::HEADER_BYTES + 1));
        assert_eq!(a.msgs_sent(), 4);
    }

    #[test]
    fn cut_link_times_out_instead_of_hanging() {
        let faults = Arc::new(FaultController::new());
        let mut mesh = InProcTransport::mesh_with_faults(2, Arc::clone(&faults));
        let mut b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        faults.cut_link(0, 1);
        a.send(1, Message { tag: tag(0, 0), payload: Payload::Bytes(vec![]) }).unwrap();
        let t0 = Instant::now();
        let err = b.recv_from(0, deadline_ms(30)).unwrap_err();
        assert_eq!(err, CommsError::Timeout { rank: 1, from: 0 });
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded wait");
        assert_eq!(a.msgs_dropped(), 1);
    }

    #[test]
    fn delayed_message_arrives_late_but_intact() {
        let faults = Arc::new(FaultController::new());
        let mut mesh = InProcTransport::mesh_with_faults(2, Arc::clone(&faults));
        let mut b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        faults.delay_link(0, 1, Duration::from_millis(20));
        a.send(1, Message { tag: tag(7, 1), payload: Payload::F64(vec![1.5]) }).unwrap();
        // Not deliverable yet.
        assert!(b.try_recv_from(0).unwrap().is_none());
        let m = b.recv_from(0, deadline_ms(1000)).unwrap();
        assert_eq!(m.tag, tag(7, 1));
        assert_eq!(m.payload, Payload::F64(vec![1.5]));
    }

    #[test]
    fn drain_discards_queued_traffic() {
        let mut mesh = InProcTransport::mesh(2);
        let mut b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        a.send(1, Message { tag: tag(0, 0), payload: Payload::Bytes(vec![1]) }).unwrap();
        a.send(1, Message { tag: tag(1, 0), payload: Payload::Bytes(vec![2]) }).unwrap();
        b.drain();
        assert!(b.try_recv_from(0).unwrap().is_none());
    }

    #[test]
    fn dead_peer_surfaces_closed() {
        let mut mesh = InProcTransport::mesh(2);
        let b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        drop(b);
        let err = a.send(1, Message { tag: tag(0, 0), payload: Payload::Bytes(vec![]) });
        assert_eq!(err, Err(CommsError::Closed { rank: 0, peer: 1 }));
    }
}
