//! Rendezvous and mesh wiring for the cross-process TCP transport.
//!
//! A [`Rendezvous`] host (conventionally rank 0's process) listens on
//! one well-known address. Each worker calls [`bootstrap_tcp`]: it
//! binds a private data listener, registers `(rank, world, epoch,
//! data-address)` with the host, and blocks until the host has seen
//! all `world` ranks — at which point the host broadcasts the address
//! book plus an agreed epoch (one past the max any rank reported, so
//! post-restart traffic can never alias stale in-flight frames) and a
//! monotonically increasing **generation** number. Workers then dial
//! every peer's data address (bounded retry with exponential backoff)
//! and accept `world − 1` inbound connections, each verified by a
//! preamble carrying the sender's rank and generation — a connection
//! from a previous generation is silently discarded, so a relaunched
//! rank can never be wired to a survivor's stale socket.
//!
//! The host keeps serving after a generation completes: when a rank is
//! SIGKILLed and relaunched, the survivors' next [`bootstrap_tcp`]
//! call re-registers alongside the fresh process and everyone receives
//! a new generation + epoch. That loop — detect failure, re-rendezvous,
//! restore from checkpoint, resync — is exercised end to end by the
//! `samo-launch` kill drill.

use crate::heartbeat::HeartbeatConfig;
use crate::tcp::TcpTransport;
use crate::{CommsError, FaultController};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::json::Json;

/// "RDZ1" — leads every registration so the host can reject strays.
const RDV_MAGIC: u32 = 0x5244_5A31;
/// "PRE1" — leads every data-link preamble.
const PRE_MAGIC: u32 = 0x5052_4531;
/// Per-connection read timeout for the short fixed-size handshakes.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);
/// Dial timeout for one TCP connect attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

fn io_err(what: &str, e: std::io::Error) -> CommsError {
    CommsError::Io(format!("{what}: {e}"))
}

/// Knobs for [`bootstrap_tcp`]. The defaults suit a localhost drill;
/// tests shrink them to keep failure paths fast.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// How long a worker waits for the world to assemble (both the
    /// rendezvous response and the inbound data connections).
    pub rendezvous_timeout: Duration,
    /// Connect attempts per address before giving up.
    pub connect_retries: u32,
    /// Initial retry backoff; doubles per attempt (capped at 2 s).
    pub connect_backoff: Duration,
    /// Liveness parameters for the resulting transport.
    pub heartbeat: HeartbeatConfig,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            rendezvous_timeout: Duration::from_secs(30),
            connect_retries: 10,
            connect_backoff: Duration::from_millis(50),
            heartbeat: HeartbeatConfig::default(),
        }
    }
}

/// What the rendezvous agreed on for this join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapInfo {
    /// 0 for the first assembly, +1 per re-rendezvous. Folded into the
    /// transport's mesh id and checked in data-link preambles.
    pub generation: u32,
    /// The epoch every rank must adopt
    /// ([`crate::Communicator::adopt_epoch`]): one past the max epoch
    /// any joining rank reported.
    pub epoch: u32,
}

// ---- tiny wire helpers (all little-endian) --------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    buf.extend_from_slice(&(b.len() as u16).to_le_bytes());
    buf.extend_from_slice(b);
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_str(r: &mut impl Read) -> std::io::Result<String> {
    let mut lb = [0u8; 2];
    r.read_exact(&mut lb)?;
    let mut b = vec![0u8; u16::from_le_bytes(lb) as usize];
    r.read_exact(&mut b)?;
    Ok(String::from_utf8_lossy(&b).into_owned())
}

// ---- rendezvous host ------------------------------------------------

struct Registration {
    addr: String,
    epoch: u32,
    stream: TcpStream,
}

/// The rendezvous service: accepts registrations until all `world`
/// ranks of the current generation have checked in, then broadcasts
/// the address book. Runs on its own thread; dropping the handle shuts
/// it down.
pub struct Rendezvous {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Rendezvous {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and starts serving a world
    /// of `world` ranks, generation after generation.
    pub fn host(bind: &str, world: usize) -> Result<Rendezvous, CommsError> {
        assert!(world >= 1);
        let listener = TcpListener::bind(bind).map_err(|e| io_err("bind rendezvous", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("rendezvous local_addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("rendezvous set_nonblocking", e))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("samo-rdv".into())
            .spawn(move || serve(listener, world, sd))
            .map_err(|e| io_err("spawn rendezvous", e))?;
        Ok(Rendezvous { addr, shutdown, thread: Some(thread) })
    }

    /// The address workers pass to [`bootstrap_tcp`].
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }
}

impl Drop for Rendezvous {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn write_err(stream: &mut TcpStream, msg: &str) {
    let mut buf = vec![1u8];
    put_str(&mut buf, msg);
    let _ = stream.write_all(&buf);
}

fn serve(listener: TcpListener, world: usize, shutdown: Arc<AtomicBool>) {
    let mut generation: u32 = 0;
    let mut pending: Vec<Option<Registration>> = (0..world).map(|_| None).collect();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => continue,
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let _ = stream.set_nodelay(true);
        // Registration: magic, rank, world, epoch, data address.
        let reg = (|| -> std::io::Result<(u32, u32, u32, String)> {
            let magic = read_u32(&mut stream)?;
            let rank = read_u32(&mut stream)?;
            let w = read_u32(&mut stream)?;
            let epoch = read_u32(&mut stream)?;
            let addr = read_str(&mut stream)?;
            if magic != RDV_MAGIC {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad magic"));
            }
            Ok((rank, w, epoch, addr))
        })();
        let Ok((rank, w, epoch, addr)) = reg else {
            continue; // stray or truncated connection: drop it
        };
        if w as usize != world {
            write_err(&mut stream, &format!("world mismatch: host {world}, rank sent {w}"));
            continue;
        }
        let Some(slot) = pending.get_mut(rank as usize) else {
            write_err(&mut stream, &format!("rank {rank} out of range for world {world}"));
            continue;
        };
        if slot.is_some() {
            write_err(
                &mut stream,
                &format!("rank {rank} already registered in generation {generation}"),
            );
            continue;
        }
        *slot = Some(Registration { addr, epoch, stream });
        if pending.iter().all(Option::is_some) {
            // World assembled: agree on an epoch past every stale one,
            // broadcast the address book, advance the generation.
            let regs: Vec<Registration> =
                pending.iter_mut().map(|s| s.take().unwrap()).collect();
            let adopt = regs.iter().map(|r| r.epoch).max().unwrap_or(0) + 1;
            let mut buf = vec![0u8];
            put_u32(&mut buf, generation);
            put_u32(&mut buf, adopt);
            put_u32(&mut buf, world as u32);
            for r in &regs {
                put_str(&mut buf, &r.addr);
            }
            for mut r in regs {
                let _ = r.stream.write_all(&buf);
            }
            generation += 1;
        }
    }
}

// ---- worker side ----------------------------------------------------

fn connect_with_retry(
    addr: &str,
    cfg: &BootstrapConfig,
    what: &str,
) -> Result<TcpStream, CommsError> {
    let sa: SocketAddr = addr
        .parse()
        .map_err(|e| CommsError::Io(format!("{what}: bad address {addr:?}: {e}")))?;
    let mut backoff = cfg.connect_backoff;
    let mut last = String::new();
    for attempt in 0..cfg.connect_retries.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_secs(2));
        }
        match TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT) {
            Ok(s) => {
                // Every bootstrap exchange is a short request/response
                // (registration, preambles): without TCP_NODELAY each
                // leg eats a Nagle/delayed-ACK stall.
                s.set_nodelay(true).map_err(|e| io_err(&format!("{what}: set_nodelay"), e))?;
                return Ok(s);
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(CommsError::Io(format!(
        "{what}: gave up connecting to {addr} after {} attempts: {last}",
        cfg.connect_retries.max(1)
    )))
}

/// Joins the mesh: registers with the rendezvous at `rdv_addr`, waits
/// for the world to assemble, wires one TCP connection per directed
/// link, and returns a live [`TcpTransport`] plus the agreed
/// generation/epoch. `epoch` is this rank's *current* communicator
/// epoch (0 on first boot) so the host can hand everyone one past the
/// stalest survivor.
pub fn bootstrap_tcp(
    rdv_addr: &str,
    rank: usize,
    world: usize,
    epoch: u32,
    cfg: &BootstrapConfig,
    faults: Arc<FaultController>,
) -> Result<(TcpTransport, BootstrapInfo), CommsError> {
    assert!(world >= 1 && rank < world);
    // A private listener for inbound data links, advertised via the
    // rendezvous.
    let data_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind data listener", e))?;
    let data_addr = data_listener
        .local_addr()
        .map_err(|e| io_err("data local_addr", e))?
        .to_string();
    data_listener
        .set_nonblocking(true)
        .map_err(|e| io_err("data set_nonblocking", e))?;

    // Register and wait for the address book.
    let mut rdv = connect_with_retry(rdv_addr, cfg, "rendezvous")?;
    let mut reg = Vec::new();
    put_u32(&mut reg, RDV_MAGIC);
    put_u32(&mut reg, rank as u32);
    put_u32(&mut reg, world as u32);
    put_u32(&mut reg, epoch);
    put_str(&mut reg, &data_addr);
    rdv.write_all(&reg).map_err(|e| io_err("rendezvous register", e))?;
    rdv.set_read_timeout(Some(cfg.rendezvous_timeout))
        .map_err(|e| io_err("rendezvous set_read_timeout", e))?;
    let rdv_io = |e: std::io::Error| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            CommsError::Io(format!(
                "rendezvous timed out after {:?} waiting for world {world} to assemble",
                cfg.rendezvous_timeout
            ))
        } else {
            io_err("rendezvous response", e)
        }
    };
    let status = read_u8(&mut rdv).map_err(rdv_io)?;
    if status != 0 {
        let msg = read_str(&mut rdv).unwrap_or_else(|_| "unreadable rejection".into());
        return Err(CommsError::Mismatch(format!("rendezvous rejected rank {rank}: {msg}")));
    }
    let generation = read_u32(&mut rdv).map_err(rdv_io)?;
    let adopt_epoch = read_u32(&mut rdv).map_err(rdv_io)?;
    let w = read_u32(&mut rdv).map_err(rdv_io)? as usize;
    if w != world {
        return Err(CommsError::Mismatch(format!(
            "rendezvous answered for world {w}, expected {world}"
        )));
    }
    let mut peer_addrs = Vec::with_capacity(world);
    for _ in 0..world {
        peer_addrs.push(read_str(&mut rdv).map_err(rdv_io)?);
    }

    // Dial every peer (outbound links), announcing rank + generation.
    let mut outbound: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    for (peer, addr) in peer_addrs.iter().enumerate() {
        if peer == rank {
            continue;
        }
        let mut s = connect_with_retry(addr, cfg, &format!("data link to rank {peer}"))?;
        let mut pre = Vec::new();
        put_u32(&mut pre, PRE_MAGIC);
        put_u32(&mut pre, rank as u32);
        put_u32(&mut pre, generation);
        s.write_all(&pre).map_err(|e| io_err(&format!("preamble to rank {peer}"), e))?;
        outbound[peer] = Some(s);
    }

    // Accept the world − 1 inbound links; everyone dialed before
    // accepting, but listener backlogs make that deadlock-free.
    let mut inbound: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    let deadline = Instant::now() + cfg.rendezvous_timeout;
    while inbound.iter().filter(|s| s.is_some()).count() < world - 1 {
        if Instant::now() >= deadline {
            return Err(CommsError::Io(format!(
                "rank {rank}: timed out accepting inbound data links (generation {generation})"
            )));
        }
        let mut s = match data_listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(io_err("accept data link", e)),
        };
        let _ = s.set_nonblocking(false);
        let _ = s.set_nodelay(true);
        let _ = s.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let pre = (|| -> std::io::Result<(u32, u32)> {
            let magic = read_u32(&mut s)?;
            if magic != PRE_MAGIC {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad magic"));
            }
            Ok((read_u32(&mut s)?, read_u32(&mut s)?))
        })();
        let Ok((from, gen)) = pre else {
            continue; // stray connection
        };
        if gen != generation || from as usize >= world || from as usize == rank {
            // A previous generation's socket (or nonsense): discard so
            // stale links never join the fresh mesh.
            continue;
        }
        inbound[from as usize] = Some(s);
    }

    let mesh_id = (2u64 << 32) | u64::from(generation);
    let transport = TcpTransport::from_streams(
        rank,
        world,
        mesh_id,
        outbound,
        inbound,
        faults,
        cfg.heartbeat,
    )?;
    if generation > 0 {
        if telemetry::enabled() {
            telemetry::global().counter("comms.tcp.reconnects").inc();
        }
        telemetry::jsonl::emit_link_event(
            "reconnect",
            rank,
            None,
            vec![
                ("generation".into(), Json::UInt(u64::from(generation))),
                ("epoch".into(), Json::UInt(u64::from(adopt_epoch))),
            ],
        );
    }
    Ok((transport, BootstrapInfo { generation, epoch: adopt_epoch }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_helpers_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_str(&mut buf, "127.0.0.1:4242");
        let mut r = &buf[..];
        assert_eq!(read_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(read_str(&mut r).unwrap(), "127.0.0.1:4242");
    }

    #[test]
    fn rendezvous_single_rank_world_assembles_immediately() {
        let rdv = Rendezvous::host("127.0.0.1:0", 1).unwrap();
        let cfg = BootstrapConfig {
            rendezvous_timeout: Duration::from_secs(5),
            ..BootstrapConfig::default()
        };
        let (t, info) =
            bootstrap_tcp(&rdv.addr(), 0, 1, 0, &cfg, Arc::new(FaultController::new())).unwrap();
        assert_eq!(info, BootstrapInfo { generation: 0, epoch: 1 });
        drop(t);
    }
}
