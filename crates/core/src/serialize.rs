//! Binary serialization of SAMO training state — save/resume for long
//! training runs (the paper's runs train to completion over many jobs;
//! checkpointing the *compressed* state writes `24fφ`-ish bytes instead
//! of `20φ`, the same ~4× saving on disk as in memory).
//!
//! Format: a small versioned header, then per layer: mask (shape +
//! linearized indices), compressed `θ32`, `∇θ16`, and the optimizer
//! state. All integers little-endian; no external schema needed.

use crate::state::SamoLayerState;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nn::mixed::{OptState, Optimizer};
use nn::optim::{AdamState, SgdState};
use prune::Mask;
use tensor::f16::F16;

const MAGIC: u32 = 0x53414D4F; // "SAMO"
const VERSION: u16 = 1;

/// Serializes the per-layer SAMO states into a self-describing buffer.
pub fn save_layers(layers: &[SamoLayerState]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(layers.len() as u32);
    for layer in layers {
        let mask = layer.mask();
        buf.put_u8(mask.shape().len() as u8);
        for &d in mask.shape() {
            buf.put_u64_le(d as u64);
        }
        buf.put_u64_le(mask.nnz() as u64);
        for &i in mask.indices().iter() {
            buf.put_u32_le(i);
        }
        for &v in &layer.theta32 {
            buf.put_f32_le(v);
        }
        for g in &layer.grad16 {
            buf.put_u16_le(g.to_bits());
        }
        match &layer.os {
            OptState::Adam(st) => {
                buf.put_u8(0);
                buf.put_u64_le(st.step);
                for &m in &st.m {
                    buf.put_f32_le(m);
                }
                for &v in &st.v {
                    buf.put_f32_le(v);
                }
            }
            OptState::Sgd(st) => {
                buf.put_u8(1);
                for &v in &st.velocity {
                    buf.put_f32_le(v);
                }
            }
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), String> {
    if buf.remaining() < n {
        Err(format!("truncated checkpoint while reading {what}"))
    } else {
        Ok(())
    }
}

/// Deserializes layers previously written by [`save_layers`]. The
/// optimizer kind must match what was saved.
pub fn load_layers(mut buf: &[u8], opt: &Optimizer) -> Result<Vec<SamoLayerState>, String> {
    need(&buf, 10, "header")?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#010x}"));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let nlayers = buf.get_u32_le() as usize;
    let mut layers = Vec::with_capacity(nlayers);
    for li in 0..nlayers {
        need(&buf, 1, "shape rank")?;
        let rank = buf.get_u8() as usize;
        need(&buf, rank * 8 + 8, "shape")?;
        let shape: Vec<usize> = (0..rank).map(|_| buf.get_u64_le() as usize).collect();
        let nnz = buf.get_u64_le() as usize;
        need(&buf, nnz * 4, "indices")?;
        let indices: Vec<u32> = (0..nnz).map(|_| buf.get_u32_le()).collect();
        let mask = Mask::new(&shape, indices);

        need(&buf, nnz * 4, "theta32")?;
        let theta32: Vec<f32> = (0..nnz).map(|_| buf.get_f32_le()).collect();
        need(&buf, nnz * 2, "grad16")?;
        let grad16: Vec<F16> = (0..nnz).map(|_| F16::from_bits(buf.get_u16_le())).collect();

        need(&buf, 1, "optimizer tag")?;
        let tag = buf.get_u8();
        let os = match (tag, opt) {
            (0, Optimizer::Adam(_)) => {
                need(&buf, 8 + nnz * 8, "adam state")?;
                let step = buf.get_u64_le();
                let m: Vec<f32> = (0..nnz).map(|_| buf.get_f32_le()).collect();
                let v: Vec<f32> = (0..nnz).map(|_| buf.get_f32_le()).collect();
                OptState::Adam(AdamState { m, v, step })
            }
            (1, Optimizer::Sgd(_)) => {
                need(&buf, nnz * 4, "sgd state")?;
                let velocity: Vec<f32> = (0..nnz).map(|_| buf.get_f32_le()).collect();
                OptState::Sgd(SgdState { velocity })
            }
            (t, _) => {
                return Err(format!(
                    "layer {li}: optimizer tag {t} does not match the requested optimizer"
                ))
            }
        };
        layers.push(SamoLayerState::from_parts(mask, theta32, grad16, os));
    }
    if buf.has_remaining() {
        return Err(format!("{} trailing bytes after checkpoint", buf.remaining()));
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::optim::{AdamConfig, SgdConfig};

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 0.05,
            ..Default::default()
        })
    }

    fn make_layers(opt: &Optimizer) -> Vec<SamoLayerState> {
        (0..3u64)
            .map(|i| {
                let phi = 100 + 17 * i as usize;
                let mask = prune::random_prune(&[phi], 0.6, i);
                let values: Vec<f32> = (0..phi).map(|j| (j as f32).sin()).collect();
                let mut st = SamoLayerState::from_params(&values, mask, opt);
                // Make the state non-trivial.
                st.compress_grad(&vec![0.25; phi]);
                st.optimizer_step(opt, 1.0);
                st
            })
            .collect()
    }

    #[test]
    fn roundtrip_adam() {
        let opt = adam();
        let layers = make_layers(&opt);
        let bytes = save_layers(&layers);
        let loaded = load_layers(&bytes, &opt).unwrap();
        assert_eq!(loaded.len(), 3);
        for (a, b) in layers.iter().zip(&loaded) {
            assert_eq!(a.mask(), b.mask());
            assert_eq!(a.theta32, b.theta32);
            assert_eq!(a.grad16, b.grad16);
            assert_eq!(a.theta16, b.theta16, "θ16 must be reconstructible");
            match (&a.os, &b.os) {
                (OptState::Adam(x), OptState::Adam(y)) => {
                    assert_eq!(x.step, y.step);
                    assert_eq!(x.m, y.m);
                    assert_eq!(x.v, y.v);
                }
                _ => panic!("wrong optimizer state"),
            }
        }
    }

    #[test]
    fn roundtrip_sgd() {
        let opt = Optimizer::Sgd(SgdConfig::default());
        let layers = make_layers(&opt);
        let bytes = save_layers(&layers);
        let loaded = load_layers(&bytes, &opt).unwrap();
        for (a, b) in layers.iter().zip(&loaded) {
            match (&a.os, &b.os) {
                (OptState::Sgd(x), OptState::Sgd(y)) => assert_eq!(x.velocity, y.velocity),
                _ => panic!("wrong optimizer state"),
            }
        }
    }

    #[test]
    fn resume_continues_identically() {
        // Train 3 steps, checkpoint, train 3 more; vs load + 3 more.
        let opt = adam();
        let phi = 200usize;
        let mask = prune::random_prune(&[phi], 0.8, 9);
        let values: Vec<f32> = (0..phi).map(|j| (j as f32 * 0.1).cos()).collect();
        let grad_at = |s: usize| -> Vec<f32> {
            (0..phi).map(|j| ((j + s) % 7) as f32 * 0.05 - 0.15).collect()
        };

        let mut live = SamoLayerState::from_params(&values, mask, &opt);
        for s in 0..3 {
            live.compress_grad(&grad_at(s));
            live.optimizer_step(&opt, 1.0);
        }
        let checkpoint = save_layers(std::slice::from_ref(&live));
        let mut resumed = load_layers(&checkpoint, &opt).unwrap().pop().unwrap();
        for s in 3..6 {
            live.compress_grad(&grad_at(s));
            live.optimizer_step(&opt, 1.0);
            resumed.compress_grad(&grad_at(s));
            resumed.optimizer_step(&opt, 1.0);
        }
        assert_eq!(live.theta32, resumed.theta32);
        assert_eq!(live.theta16, resumed.theta16);
    }

    #[test]
    fn rejects_corruption() {
        let opt = adam();
        let bytes = save_layers(&make_layers(&opt));

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(load_layers(&bad, &opt).unwrap_err().contains("magic"));

        // Truncation at every interesting boundary family.
        for cut in [5usize, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = load_layers(&bytes[..cut], &opt).unwrap_err();
            assert!(err.contains("truncated"), "cut at {cut}: {err}");
        }

        // Trailing garbage.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(load_layers(&long, &opt).unwrap_err().contains("trailing"));

        // Optimizer mismatch.
        let sgd = Optimizer::Sgd(SgdConfig::default());
        assert!(load_layers(&bytes, &sgd)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn checkpoint_size_reflects_compression() {
        // At 90% sparsity, the checkpoint is ~(16+4)·fφ + header — far
        // below a dense 20φ dump.
        let opt = adam();
        let phi = 10_000usize;
        let mask = prune::random_prune(&[phi], 0.9, 3);
        let nnz = mask.nnz();
        let st = SamoLayerState::from_params(&vec![0.1; phi], mask, &opt);
        let bytes = save_layers(std::slice::from_ref(&st));
        // indices 4 + θ32 4 + ∇θ16 2 + adam 8 = 18 bytes per nnz.
        let expect = 18 * nnz;
        assert!(bytes.len() >= expect && bytes.len() < expect + 128);
        assert!(bytes.len() < 20 * phi / 4, "must be far below dense state");
    }
}
