//! Binary serialization of SAMO training state — save/resume for long
//! training runs (the paper's runs train to completion over many jobs;
//! checkpointing the *compressed* state writes `24fφ`-ish bytes instead
//! of `20φ`, the same ~4× saving on disk as in memory).
//!
//! Two on-disk versions share the magic/version header:
//!
//! * **v1** (legacy, still readable): per layer: mask (shape + linearized
//!   indices), compressed `θ32`, `∇θ16`, and the optimizer state.
//! * **v2** (written by [`save_checkpoint`]): adds a trainer-meta section
//!   ([`TrainerMeta`]: loss-scale state and step counters, which v1
//!   silently dropped) and a CRC-32 checksum after every section — the
//!   meta block and each layer — so torn or bit-rotted files are rejected
//!   with an `Err` instead of silently corrupting a resumed run.
//!
//! All integers little-endian; no external schema needed. Loaders never
//! trust a length field without checking it against the remaining input,
//! so a corrupted header cannot trigger an over-allocation.

use crate::state::SamoLayerState;
use bytes::{BufMut, Bytes, BytesMut};
use nn::mixed::{OptState, Optimizer};
use nn::optim::{AdamState, SgdState};
use prune::Mask;
use tensor::f16::F16;

const MAGIC: u32 = 0x53414D4F; // "SAMO"
const VERSION_V1: u16 = 1;
const VERSION_V2: u16 = 2;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — implemented here
// because the workspace stays dependency-light; validated against the
// canonical check value crc32("123456789") == 0xCBF43926.
// ---------------------------------------------------------------------------

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 checksum (IEEE, as used by zip/png/ethernet) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Trainer-level state carried by v2 checkpoints alongside the layers:
/// everything a resumed run needs so its trajectory is bitwise identical
/// to an uninterrupted one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainerMeta {
    /// Current dynamic loss scale.
    pub loss_scale: f32,
    /// Consecutive good steps accumulated toward the next scale growth.
    pub good_steps: u32,
    /// Optimizer steps applied.
    pub steps_taken: u64,
    /// Steps skipped due to gradient overflow.
    pub steps_skipped: u64,
}

fn put_layer(buf: &mut impl BufMut, layer: &SamoLayerState) {
    let mask = layer.mask();
    buf.put_u8(mask.shape().len() as u8);
    for &d in mask.shape() {
        buf.put_u64_le(d as u64);
    }
    buf.put_u64_le(mask.nnz() as u64);
    for &i in mask.indices().iter() {
        buf.put_u32_le(i);
    }
    for &v in &layer.theta32 {
        buf.put_f32_le(v);
    }
    for g in &layer.grad16 {
        buf.put_u16_le(g.to_bits());
    }
    match &layer.os {
        OptState::Adam(st) => {
            buf.put_u8(0);
            buf.put_u64_le(st.step);
            for &m in &st.m {
                buf.put_f32_le(m);
            }
            for &v in &st.v {
                buf.put_f32_le(v);
            }
        }
        OptState::Sgd(st) => {
            buf.put_u8(1);
            for &v in &st.velocity {
                buf.put_f32_le(v);
            }
        }
    }
}

/// Serializes the per-layer SAMO states into a self-describing v1 buffer
/// (no trainer meta, no checksums). Prefer [`save_checkpoint`] for
/// durable files; this remains for compatibility and in-memory snapshots.
pub fn save_layers(layers: &[SamoLayerState]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION_V1);
    buf.put_u32_le(layers.len() as u32);
    for layer in layers {
        put_layer(&mut buf, layer);
    }
    buf.freeze()
}

/// Serializes layers plus trainer meta into a v2 buffer with per-section
/// CRC-32 checksums (one over the meta section, one per layer).
pub fn save_checkpoint(layers: &[SamoLayerState], meta: &TrainerMeta) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION_V2);

    let mut sec: Vec<u8> = Vec::new();
    sec.put_f32_le(meta.loss_scale);
    sec.put_u32_le(meta.good_steps);
    sec.put_u64_le(meta.steps_taken);
    sec.put_u64_le(meta.steps_skipped);
    sec.put_u32_le(layers.len() as u32);
    buf.put_u32_le(crc32(&sec));
    buf.put_slice(&sec);

    for layer in layers {
        let mut sec: Vec<u8> = Vec::new();
        put_layer(&mut sec, layer);
        buf.put_u32_le(crc32(&sec));
        buf.put_slice(&sec);
    }
    buf.freeze()
}

/// Cursor over untrusted checkpoint bytes. Every read is bounds-checked
/// and every length derived from the input is validated before any
/// allocation, so corrupted input yields `Err`, never a panic or OOM.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize, what: &str) -> Result<(), String> {
        if self.remaining() < n {
            Err(format!("truncated checkpoint while reading {what}"))
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        self.need(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u16(&mut self, what: &str) -> Result<u16, String> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_f32(&mut self, what: &str) -> Result<f32, String> {
        Ok(f32::from_bits(self.get_u32(what)?))
    }

    /// A length field from the input, validated to fit the remaining bytes
    /// at `elem_size` bytes per element — the guard against corrupted
    /// headers demanding absurd allocations.
    fn get_len(&mut self, elem_size: usize, what: &str) -> Result<usize, String> {
        let raw = self.get_u64(what)?;
        let n = usize::try_from(raw).map_err(|_| format!("{what} count {raw} overflows"))?;
        let bytes = n
            .checked_mul(elem_size)
            .ok_or_else(|| format!("{what} count {n} overflows"))?;
        self.need(bytes, what)?;
        Ok(n)
    }
}

fn parse_layer(r: &mut Reader<'_>, opt: &Optimizer, li: usize) -> Result<SamoLayerState, String> {
    let rank = r.get_u8("shape rank")? as usize;
    let mut shape = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let d = r.get_u64("shape")? as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| format!("layer {li}: shape overflows"))?;
        shape.push(d);
    }
    if numel > u32::MAX as usize {
        return Err(format!("layer {li}: tensor too large for u32 indices"));
    }
    let nnz = r.get_len(4, "indices")?;
    if nnz > numel {
        return Err(format!("layer {li}: nnz {nnz} exceeds numel {numel}"));
    }
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(r.get_u32("indices")?);
    }
    // Mask::new asserts these invariants; on untrusted input report them
    // as errors instead.
    for w in indices.windows(2) {
        if w[0] >= w[1] {
            return Err(format!("layer {li}: mask indices not strictly increasing"));
        }
    }
    if let Some(&last) = indices.last() {
        if last as usize >= numel {
            return Err(format!("layer {li}: mask index {last} out of bounds"));
        }
    }
    let mask = Mask::new(&shape, indices);

    r.need(nnz.saturating_mul(4), "theta32")?;
    let mut theta32 = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        theta32.push(r.get_f32("theta32")?);
    }
    r.need(nnz.saturating_mul(2), "grad16")?;
    let mut grad16 = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        grad16.push(F16::from_bits(r.get_u16("grad16")?));
    }

    let tag = r.get_u8("optimizer tag")?;
    let os = match (tag, opt) {
        (0, Optimizer::Adam(_)) => {
            r.need(8 + nnz.saturating_mul(8), "adam state")?;
            let step = r.get_u64("adam step")?;
            let mut m = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                m.push(r.get_f32("adam m")?);
            }
            let mut v = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                v.push(r.get_f32("adam v")?);
            }
            OptState::Adam(AdamState { m, v, step })
        }
        (1, Optimizer::Sgd(_)) => {
            r.need(nnz.saturating_mul(4), "sgd state")?;
            let mut velocity = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                velocity.push(r.get_f32("sgd velocity")?);
            }
            OptState::Sgd(SgdState { velocity })
        }
        (t, _) => {
            return Err(format!(
                "layer {li}: optimizer tag {t} does not match the requested optimizer"
            ))
        }
    };
    Ok(SamoLayerState::from_parts(mask, theta32, grad16, os))
}

/// Deserializes a v1 or v2 checkpoint. Returns the layers and, for v2,
/// the trainer meta (`None` for legacy v1 buffers). The optimizer kind
/// must match what was saved. Any corruption — truncation, structural
/// nonsense, or (v2) a CRC mismatch — yields `Err`; this function never
/// panics on untrusted input.
pub fn load_checkpoint(
    buf: &[u8],
    opt: &Optimizer,
) -> Result<(Vec<SamoLayerState>, Option<TrainerMeta>), String> {
    let mut r = Reader::new(buf);
    let magic = r.get_u32("header")?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#010x}"));
    }
    let version = r.get_u16("header")?;
    match version {
        VERSION_V1 => {
            let nlayers = r.get_u32("layer count")? as usize;
            // No preallocation from the untrusted count: each parsed layer
            // consumes at least a few bytes, so growth is input-bounded.
            let mut layers = Vec::new();
            for li in 0..nlayers {
                layers.push(parse_layer(&mut r, opt, li)?);
            }
            if r.remaining() > 0 {
                return Err(format!("{} trailing bytes after checkpoint", r.remaining()));
            }
            Ok((layers, None))
        }
        VERSION_V2 => {
            let meta_crc = r.get_u32("meta crc")?;
            let start = r.pos;
            let loss_scale = r.get_f32("meta")?;
            let good_steps = r.get_u32("meta")?;
            let steps_taken = r.get_u64("meta")?;
            let steps_skipped = r.get_u64("meta")?;
            let nlayers = r.get_u32("layer count")? as usize;
            if crc32(&buf[start..r.pos]) != meta_crc {
                return Err("meta section CRC mismatch".to_string());
            }
            let meta = TrainerMeta {
                loss_scale,
                good_steps,
                steps_taken,
                steps_skipped,
            };
            let mut layers = Vec::new();
            for li in 0..nlayers {
                let layer_crc = r.get_u32("layer crc")?;
                let start = r.pos;
                let layer = parse_layer(&mut r, opt, li)?;
                if crc32(&buf[start..r.pos]) != layer_crc {
                    return Err(format!("layer {li}: CRC mismatch"));
                }
                layers.push(layer);
            }
            if r.remaining() > 0 {
                return Err(format!("{} trailing bytes after checkpoint", r.remaining()));
            }
            Ok((layers, Some(meta)))
        }
        v => Err(format!("unsupported version {v}")),
    }
}

/// Deserializes the layers of a v1 or v2 checkpoint, discarding any
/// trainer meta. The optimizer kind must match what was saved.
pub fn load_layers(buf: &[u8], opt: &Optimizer) -> Result<Vec<SamoLayerState>, String> {
    load_checkpoint(buf, opt).map(|(layers, _)| layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::optim::{AdamConfig, SgdConfig};

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 0.05,
            ..Default::default()
        })
    }

    fn make_layers(opt: &Optimizer) -> Vec<SamoLayerState> {
        (0..3u64)
            .map(|i| {
                let phi = 100 + 17 * i as usize;
                let mask = prune::random_prune(&[phi], 0.6, i);
                let values: Vec<f32> = (0..phi).map(|j| (j as f32).sin()).collect();
                let mut st = SamoLayerState::from_params(&values, mask, opt);
                // Make the state non-trivial.
                st.compress_grad(&vec![0.25; phi]);
                st.optimizer_step(opt, 1.0);
                st
            })
            .collect()
    }

    fn meta() -> TrainerMeta {
        TrainerMeta {
            loss_scale: 1024.0,
            good_steps: 7,
            steps_taken: 42,
            steps_skipped: 3,
        }
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_adam() {
        let opt = adam();
        let layers = make_layers(&opt);
        let bytes = save_layers(&layers);
        let loaded = load_layers(&bytes, &opt).unwrap();
        assert_eq!(loaded.len(), 3);
        for (a, b) in layers.iter().zip(&loaded) {
            assert_eq!(a.mask(), b.mask());
            assert_eq!(a.theta32, b.theta32);
            assert_eq!(a.grad16, b.grad16);
            assert_eq!(a.theta16, b.theta16, "θ16 must be reconstructible");
            match (&a.os, &b.os) {
                (OptState::Adam(x), OptState::Adam(y)) => {
                    assert_eq!(x.step, y.step);
                    assert_eq!(x.m, y.m);
                    assert_eq!(x.v, y.v);
                }
                _ => panic!("wrong optimizer state"),
            }
        }
    }

    #[test]
    fn roundtrip_sgd() {
        let opt = Optimizer::Sgd(SgdConfig::default());
        let layers = make_layers(&opt);
        let bytes = save_layers(&layers);
        let loaded = load_layers(&bytes, &opt).unwrap();
        for (a, b) in layers.iter().zip(&loaded) {
            match (&a.os, &b.os) {
                (OptState::Sgd(x), OptState::Sgd(y)) => assert_eq!(x.velocity, y.velocity),
                _ => panic!("wrong optimizer state"),
            }
        }
    }

    #[test]
    fn roundtrip_v2_with_meta() {
        let opt = adam();
        let layers = make_layers(&opt);
        let bytes = save_checkpoint(&layers, &meta());
        let (loaded, got) = load_checkpoint(&bytes, &opt).unwrap();
        assert_eq!(got, Some(meta()));
        assert_eq!(loaded.len(), layers.len());
        for (a, b) in layers.iter().zip(&loaded) {
            assert_eq!(a.mask(), b.mask());
            assert_eq!(a.theta32, b.theta32);
            assert_eq!(a.theta16, b.theta16);
        }
        // load_layers reads v2 too, dropping the meta.
        assert_eq!(load_layers(&bytes, &opt).unwrap().len(), layers.len());
    }

    #[test]
    fn v1_still_loads_without_meta() {
        let opt = adam();
        let bytes = save_layers(&make_layers(&opt));
        let (layers, got) = load_checkpoint(&bytes, &opt).unwrap();
        assert_eq!(layers.len(), 3);
        assert_eq!(got, None);
    }

    #[test]
    fn resume_continues_identically() {
        // Train 3 steps, checkpoint, train 3 more; vs load + 3 more.
        let opt = adam();
        let phi = 200usize;
        let mask = prune::random_prune(&[phi], 0.8, 9);
        let values: Vec<f32> = (0..phi).map(|j| (j as f32 * 0.1).cos()).collect();
        let grad_at = |s: usize| -> Vec<f32> {
            (0..phi).map(|j| ((j + s) % 7) as f32 * 0.05 - 0.15).collect()
        };

        let mut live = SamoLayerState::from_params(&values, mask, &opt);
        for s in 0..3 {
            live.compress_grad(&grad_at(s));
            live.optimizer_step(&opt, 1.0);
        }
        let checkpoint = save_layers(std::slice::from_ref(&live));
        let mut resumed = load_layers(&checkpoint, &opt).unwrap().pop().unwrap();
        for s in 3..6 {
            live.compress_grad(&grad_at(s));
            live.optimizer_step(&opt, 1.0);
            resumed.compress_grad(&grad_at(s));
            resumed.optimizer_step(&opt, 1.0);
        }
        assert_eq!(live.theta32, resumed.theta32);
        assert_eq!(live.theta16, resumed.theta16);
    }

    #[test]
    fn rejects_corruption() {
        let opt = adam();
        let bytes = save_layers(&make_layers(&opt));

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(load_layers(&bad, &opt).unwrap_err().contains("magic"));

        // Truncation at every interesting boundary family.
        for cut in [5usize, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = load_layers(&bytes[..cut], &opt).unwrap_err();
            assert!(err.contains("truncated"), "cut at {cut}: {err}");
        }

        // Trailing garbage.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(load_layers(&long, &opt).unwrap_err().contains("trailing"));

        // Optimizer mismatch.
        let sgd = Optimizer::Sgd(SgdConfig::default());
        assert!(load_layers(&bytes, &sgd)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn v2_detects_payload_bit_rot() {
        let opt = adam();
        let bytes = save_checkpoint(&make_layers(&opt), &meta());
        // Flip a bit deep in the last layer's payload — structurally valid,
        // only the CRC notices.
        let mut bad = bytes.to_vec();
        let n = bad.len();
        bad[n - 3] ^= 0x04;
        let err = load_checkpoint(&bad, &opt).unwrap_err();
        assert!(
            err.contains("CRC") || err.contains("truncated") || err.contains("trailing"),
            "{err}"
        );
    }

    #[test]
    fn huge_layer_count_is_rejected_cheaply() {
        // A corrupted header claiming 4 billion layers must fail fast with
        // a truncation error, not allocate.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION_V1);
        buf.put_u32_le(u32::MAX);
        let err = load_layers(&buf.freeze(), &adam()).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        // Likewise a huge nnz inside a layer.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION_V1);
        buf.put_u32_le(1);
        buf.put_u8(1); // rank
        buf.put_u64_le(1 << 30); // shape
        buf.put_u64_le(u64::MAX / 2); // nnz — would overflow nnz*4
        let err = load_layers(&buf.freeze(), &adam()).unwrap_err();
        assert!(
            err.contains("truncated") || err.contains("overflow") || err.contains("exceeds"),
            "{err}"
        );
    }

    #[test]
    fn checkpoint_size_reflects_compression() {
        // At 90% sparsity, the checkpoint is ~(16+4)·fφ + header — far
        // below a dense 20φ dump.
        let opt = adam();
        let phi = 10_000usize;
        let mask = prune::random_prune(&[phi], 0.9, 3);
        let nnz = mask.nnz();
        let st = SamoLayerState::from_params(&vec![0.1; phi], mask, &opt);
        let bytes = save_layers(std::slice::from_ref(&st));
        // indices 4 + θ32 4 + ∇θ16 2 + adam 8 = 18 bytes per nnz.
        let expect = 18 * nnz;
        assert!(bytes.len() >= expect && bytes.len() < expect + 128);
        assert!(bytes.len() < 20 * phi / 4, "must be far below dense state");
    }
}
