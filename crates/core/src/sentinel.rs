//! Divergence detection for long training runs.
//!
//! Loss-scale overflow handling (`nn::mixed::LossScaler`) already skips
//! individual bad steps, but a genuinely diverging run — loss or
//! gradient norm exploding over many consecutive steps, or going
//! non-finite and staying there — needs a stronger response: roll back
//! to the last good checkpoint and retry with a gentler loss scale
//! (`SamoTrainer::rollback` / `DataParallelSamo::restore`). This module
//! is the detector; it owns no recovery policy itself, it just converts
//! a stream of (loss, grad-norm) observations into a [`Verdict`].
//!
//! Detection is deliberately conservative: single spikes are normal in
//! mixed-precision training (that's what the loss scaler is for), so
//! only *sustained* anomalies — `patience` consecutive suspect steps —
//! escalate to [`Verdict::Diverged`]. "Suspect" means a non-finite
//! observation, or a loss exceeding `explode_factor ×` the rolling
//! median-of-recent-history baseline.

/// Tuning knobs for the sentinel.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// How many recent healthy losses form the baseline (rolling window).
    pub window: usize,
    /// A loss above `explode_factor × baseline` is suspect.
    pub explode_factor: f64,
    /// A gradient norm above `grad_explode_factor × baseline-grad-norm`
    /// is suspect.
    pub grad_explode_factor: f64,
    /// Consecutive suspect steps before declaring divergence.
    pub patience: usize,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            window: 32,
            explode_factor: 10.0,
            grad_explode_factor: 100.0,
            patience: 3,
        }
    }
}

/// The sentinel's per-step judgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within normal bounds; the observation joined the baseline.
    Healthy,
    /// Anomalous, but not yet sustained long enough to act on.
    Suspect,
    /// `patience` consecutive suspect steps: roll back now.
    Diverged,
}

/// Watches the loss / gradient-norm stream for sustained anomalies.
#[derive(Clone, Debug)]
pub struct DivergenceSentinel {
    cfg: SentinelConfig,
    losses: Vec<f64>,
    grad_norms: Vec<f64>,
    suspect_streak: usize,
    observations: u64,
}

impl DivergenceSentinel {
    pub fn new(cfg: SentinelConfig) -> DivergenceSentinel {
        assert!(cfg.window >= 1, "baseline window must be non-empty");
        assert!(cfg.patience >= 1, "patience must be at least 1");
        DivergenceSentinel {
            cfg,
            losses: Vec::new(),
            grad_norms: Vec::new(),
            suspect_streak: 0,
            observations: 0,
        }
    }

    /// Total observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Current consecutive-suspect count.
    pub fn suspect_streak(&self) -> usize {
        self.suspect_streak
    }

    /// Median of a small history window (copy + sort; windows are tiny).
    fn median(xs: &[f64]) -> Option<f64> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("baseline values are finite"));
        Some(v[v.len() / 2])
    }

    fn push_baseline(&mut self, loss: f64, grad_norm: f64) {
        self.losses.push(loss);
        self.grad_norms.push(grad_norm);
        if self.losses.len() > self.cfg.window {
            self.losses.remove(0);
            self.grad_norms.remove(0);
        }
    }

    /// Feeds one training step's loss and (unscaled) gradient norm;
    /// returns the verdict. Healthy observations extend the baseline;
    /// suspect ones don't (a poisoned baseline would mask the very
    /// divergence it should catch).
    pub fn observe(&mut self, loss: f64, grad_norm: f64) -> Verdict {
        self.observations += 1;
        let suspect = if !loss.is_finite() || !grad_norm.is_finite() {
            true
        } else {
            let loss_bad = Self::median(&self.losses)
                .map(|m| loss > self.cfg.explode_factor * m.max(f64::MIN_POSITIVE))
                .unwrap_or(false);
            let grad_bad = Self::median(&self.grad_norms)
                .map(|m| grad_norm > self.cfg.grad_explode_factor * m.max(f64::MIN_POSITIVE))
                .unwrap_or(false);
            loss_bad || grad_bad
        };
        if !suspect {
            self.suspect_streak = 0;
            self.push_baseline(loss, grad_norm);
            return Verdict::Healthy;
        }
        self.suspect_streak += 1;
        if telemetry::enabled() {
            telemetry::global().counter("samo.sentinel.suspect_steps").inc();
        }
        if self.suspect_streak >= self.cfg.patience {
            telemetry::log_info!(
                "sentinel: divergence after {} consecutive suspect steps (loss {loss}, grad norm {grad_norm})",
                self.suspect_streak
            );
            if telemetry::enabled() {
                telemetry::global().counter("samo.sentinel.divergences").inc();
            }
            self.reset();
            Verdict::Diverged
        } else {
            Verdict::Suspect
        }
    }

    /// Clears streak and baseline — call after a rollback so stale
    /// pre-divergence history doesn't judge the replayed steps.
    pub fn reset(&mut self) {
        self.suspect_streak = 0;
        self.losses.clear();
        self.grad_norms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentinel(patience: usize) -> DivergenceSentinel {
        DivergenceSentinel::new(SentinelConfig {
            window: 8,
            explode_factor: 10.0,
            grad_explode_factor: 100.0,
            patience,
        })
    }

    #[test]
    fn healthy_stream_stays_healthy() {
        let mut s = sentinel(3);
        for i in 0..50 {
            let loss = 1.0 / (1.0 + i as f64 * 0.1); // decreasing
            assert_eq!(s.observe(loss, 1.0), Verdict::Healthy);
        }
        assert_eq!(s.suspect_streak(), 0);
    }

    #[test]
    fn single_spike_is_only_suspect() {
        let mut s = sentinel(3);
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        assert_eq!(s.observe(100.0, 1.0), Verdict::Suspect);
        // Recovery clears the streak.
        assert_eq!(s.observe(1.0, 1.0), Verdict::Healthy);
        assert_eq!(s.suspect_streak(), 0);
    }

    #[test]
    fn sustained_explosion_diverges() {
        let mut s = sentinel(3);
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        assert_eq!(s.observe(50.0, 1.0), Verdict::Suspect);
        assert_eq!(s.observe(500.0, 1.0), Verdict::Suspect);
        assert_eq!(s.observe(5000.0, 1.0), Verdict::Diverged);
        // Post-divergence the sentinel is reset (fresh baseline).
        assert_eq!(s.observe(1.0, 1.0), Verdict::Healthy);
    }

    #[test]
    fn non_finite_counts_as_suspect_even_without_baseline() {
        let mut s = sentinel(2);
        assert_eq!(s.observe(f64::NAN, 1.0), Verdict::Suspect);
        assert_eq!(s.observe(f64::INFINITY, 1.0), Verdict::Diverged);
    }

    #[test]
    fn gradient_explosion_detected_independently_of_loss() {
        let mut s = sentinel(2);
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        assert_eq!(s.observe(1.0, 1e4), Verdict::Suspect);
        assert_eq!(s.observe(1.0, 1e5), Verdict::Diverged);
    }

    #[test]
    fn suspect_steps_do_not_poison_the_baseline() {
        let mut s = sentinel(100); // never diverge in this test
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        // A long run of explosions...
        for _ in 0..20 {
            assert_ne!(s.observe(1000.0, 1.0), Verdict::Healthy);
        }
        // ...still compares against the healthy baseline.
        assert_eq!(s.observe(1.0, 1.0), Verdict::Healthy);
    }
}
