//! Cross-process data-parallel SAMO: a [`SamoTrainer`](crate::SamoTrainer)-shaped trainer
//! whose gradient mean moves through a [`Communicator`] — any
//! [`Transport`], but built for [`comms::TcpTransport`] endpoints
//! living in *separate OS processes* wired by [`comms::bootstrap_tcp`].
//!
//! # Bitwise equivalence with the single-process trainer
//!
//! Each rank runs the same fused compress/optimizer kernels as
//! [`SamoTrainer`](crate::SamoTrainer); the only new operation is the ring all-reduce over
//! the compressed `∇θ16`. The ring computes the exact-f64-sum mean
//! (see the `comms` crate docs), so when every rank feeds identical
//! per-rank batches — replicated data parallelism — the mean of G
//! bitwise-identical f16 gradients is that gradient again, bit for
//! bit, and the whole distributed trajectory (θ, optimizer moments,
//! loss-scale schedule, checkpoint bytes) is bitwise identical to
//! [`SamoTrainer`](crate::SamoTrainer) on one process. That identity is the oracle the
//! `samo-launch` drill checks checkpoints against: the transport is
//! the only variable, so any divergence is a transport bug.
//!
//! # Failure and recovery
//!
//! A dead peer surfaces as `Err` from [`DistDataParallel::step`]
//! within the heartbeat window ([`comms::CommsError::PeerDead`]) or
//! the socket EOF ([`comms::CommsError::Closed`]) — never a hang. The
//! survivor then re-rendezvouses (a fresh transport + generation),
//! and [`DistDataParallel::resync`] installs the new communicator,
//! restores the agreed checkpoint, and barriers the new mesh together.

use crate::state::{RemapScratch, SamoLayerState};
use comms::{CommsError, Communicator, Transport};
use nn::layer::Layer;
use nn::mixed::{LossScaler, LossScalerState, Optimizer};
use prune::{Mask, MaskSchedule};
use tensor::f16::F16;

/// A data-parallel SAMO trainer over an arbitrary transport. One
/// instance per rank (usually one per process).
pub struct DistDataParallel<T: Transport> {
    comm: Communicator<T>,
    pub layers: Vec<SamoLayerState>,
    pub opt: Optimizer,
    pub scaler: LossScaler,
    schedule: Option<MaskSchedule>,
    remap_scratch: Vec<RemapScratch>,
    remap_events: u64,
    steps_taken: u64,
    steps_skipped: u64,
}

impl<T: Transport> DistDataParallel<T> {
    /// Builds this rank's trainer exactly like [`SamoTrainer::new`](crate::SamoTrainer::new)
    /// (prune in place, round to f16, write widened params back) and
    /// attaches the communicator. The caller has already
    /// [`Communicator::adopt_epoch`]'d the rendezvous-agreed epoch.
    pub fn new(
        model: &mut impl Layer,
        masks: Vec<Mask>,
        opt: Optimizer,
        comm: Communicator<T>,
    ) -> DistDataParallel<T> {
        let params = model.params_mut();
        assert_eq!(params.len(), masks.len(), "need exactly one mask per parameter tensor");
        let mut layers = Vec::with_capacity(params.len());
        for (p, mask) in params.into_iter().zip(masks) {
            assert_eq!(p.numel(), mask.numel(), "mask shape mismatch for {}", p.name);
            let st = SamoLayerState::from_params(p.value.as_slice(), mask, &opt);
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            layers.push(st);
        }
        DistDataParallel {
            comm,
            layers,
            opt,
            scaler: LossScaler::default(),
            schedule: None,
            remap_scratch: Vec::new(),
            remap_events: 0,
            steps_taken: 0,
            steps_skipped: 0,
        }
    }

    /// Installs a dynamic-sparsity [`MaskSchedule`] (see
    /// [`SamoTrainer::set_mask_schedule`](crate::SamoTrainer::set_mask_schedule)).
    /// Every rank of the mesh must install the same schedule before the
    /// same step: at each update step the ranks reduce the dense f16
    /// gradient, derive identical masks from the reduced bits, remap
    /// their compressed state in place, and bump the comms epoch
    /// together to renegotiate the gradient bucket layout.
    pub fn set_mask_schedule(&mut self, schedule: MaskSchedule) {
        let opt = &self.opt;
        self.remap_scratch = self
            .layers
            .iter_mut()
            .map(|l| RemapScratch::for_layer(l, opt))
            .collect();
        self.schedule = Some(schedule);
    }

    /// Mask-change events applied by the installed schedule.
    pub fn remap_events(&self) -> u64 {
        self.remap_events
    }

    /// This rank's index in the mesh.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Mesh size.
    pub fn world(&self) -> usize {
        self.comm.world()
    }

    /// Applied steps.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped on gradient overflow (every rank skips together —
    /// the verdict is computed from the *reduced* bits).
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Current loss scale to multiply the loss by before backward.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// The communicator — for broadcasts (e.g. shipping checkpoint
    /// bytes to rejoining ranks) and barriers around the step loop.
    pub fn comm_mut(&mut self) -> &mut Communicator<T> {
        &mut self.comm
    }

    /// Completes one training step after `model` ran forward/backward
    /// with the loss multiplied by [`Self::loss_scale`]. The local
    /// compressed gradients are ring-all-reduced to their mean; the
    /// overflow verdict is then computed from the *reduced* bits, so
    /// every rank's loss scaler reaches the same decision without an
    /// extra collective — exactly the scheme the threaded runtime uses.
    /// `Err` means a collective failed (dead peer, timeout, poisoned
    /// communicator) and the group needs [`Self::resync`].
    pub fn step(&mut self, model: &mut impl Layer) -> Result<bool, CommsError> {
        if self.schedule.is_some() {
            self.maybe_remap(model)?;
        }
        // Compress every layer's gradient and start its ring; ids line
        // up across ranks because everyone walks layers in order.
        let mut order: Vec<(u64, usize)> = Vec::with_capacity(self.layers.len());
        {
            let layers = &mut self.layers;
            let mut i = 0;
            let mut local_finite = true;
            model.for_each_param_mut(&mut |p| {
                // The local finite flag is irrelevant: the verdict
                // comes from the reduced bits below.
                local_finite &= layers[i].compress_grad_fused(p.grad.as_slice());
                i += 1;
            });
            let _ = local_finite;
            assert_eq!(i, layers.len());
        }
        for i in 0..self.layers.len() {
            let id = self.comm.ring_start(self.layers[i].grad16.clone())?;
            order.push((id, i));
            self.comm.ring_pump()?;
        }
        self.comm.ring_finish()?;
        for (id, mean) in self.comm.take_completed() {
            let i = order
                .iter()
                .find(|(rid, _)| *rid == id)
                .expect("completed ring was started by this step")
                .1;
            self.layers[i].set_compressed_grad16(&mean);
        }

        let finite = !self.layers.iter().any(SamoLayerState::grads_non_finite);
        let scale = self.scaler.scale();
        let proceed = self.scaler.check_and_update(finite);
        if proceed {
            let opt = &self.opt;
            let layers = &mut self.layers;
            let inv_scale = 1.0 / scale;
            let mut i = 0;
            model.for_each_param_mut(&mut |p| {
                layers[i].optimizer_step_fused(opt, inv_scale, p.value.as_mut_slice());
                p.zero_grad();
                i += 1;
            });
            self.steps_taken += 1;
        } else {
            model.for_each_param_mut(&mut |p| p.zero_grad());
            self.steps_skipped += 1;
        }
        Ok(proceed)
    }

    /// Dynamic-sparsity hook, run before the compressed rings so the
    /// new mask's gradient buckets are filled by this step's normal
    /// compress. The grow score is the ring-reduced f16-narrowed dense
    /// gradient widened back to f32 — exactly the bits
    /// [`SamoTrainer`](crate::SamoTrainer) canonicalizes locally, so
    /// with replicated data every runtime ranks regrowth candidates
    /// identically. When any mask changes, every rank bumps the comms
    /// epoch in lockstep (the masks are identical, so the verdict is
    /// too): the compressed-gradient bucket layout is renegotiated and
    /// stale-epoch buckets are dropped on receive.
    fn maybe_remap(&mut self, model: &mut impl Layer) -> Result<(), CommsError> {
        let t = self.steps_taken + self.steps_skipped;
        let Some(sched) = &self.schedule else { return Ok(()) };
        if !sched.is_update_step(t) {
            return Ok(());
        }
        let sched = sched.clone();
        let mut moved = false;
        let params = model.params_mut();
        assert_eq!(params.len(), self.layers.len());
        for (i, p) in params.into_iter().enumerate() {
            let layer = &mut self.layers[i];
            let sc = &mut self.remap_scratch[i];
            let mut dense16: Vec<F16> =
                p.grad.as_slice().iter().map(|&g| F16::from_f32(g)).collect();
            self.comm.allreduce_mean_f16(&mut dense16)?;
            sc.score.clear();
            sc.score.extend(dense16.iter().map(|g| g.to_f32()));
            let new_mask = sched.next_mask(t, p.value.as_slice(), &sc.score, layer.mask());
            if &new_mask != layer.mask() {
                layer.remap_compressed_state(new_mask, sc);
                layer.write_dense_f32_params_into(p.value.as_mut_slice());
                moved = true;
            }
        }
        if moved {
            self.remap_events += 1;
            self.comm.bump_epoch();
        }
        Ok(())
    }

    /// Serializes this rank's training state — byte-identical to
    /// [`SamoTrainer::save`](crate::SamoTrainer::save) for the same trajectory, which is what
    /// lets the multi-process drill diff checkpoints against the
    /// single-process oracle.
    pub fn save(&self) -> bytes::Bytes {
        let snap = self.scaler.snapshot();
        crate::serialize::save_checkpoint(
            &self.layers,
            &crate::serialize::TrainerMeta {
                loss_scale: snap.scale,
                good_steps: snap.good_steps,
                steps_taken: self.steps_taken,
                steps_skipped: self.steps_skipped,
            },
        )
    }

    /// Restores a checkpoint produced by [`Self::save`] (or
    /// [`SamoTrainer::save`](crate::SamoTrainer::save) — same format) into this trainer and
    /// `model`. Purely local: no collective runs, so it composes with
    /// [`Self::resync`]'s barrier.
    pub fn restore(&mut self, checkpoint: &[u8], model: &mut impl Layer) -> Result<(), String> {
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        if layers.len() != self.layers.len() {
            return Err(format!(
                "checkpoint has {} layers, trainer has {}",
                layers.len(),
                self.layers.len()
            ));
        }
        for (new, old) in layers.iter().zip(&self.layers) {
            if new.mask().shape() != old.mask().shape() {
                return Err("checkpoint mask shape mismatch".into());
            }
        }
        self.layers = layers;
        if self.schedule.is_some() {
            // Restored layers are fresh allocations without remap
            // headroom — re-prime the scratch against them.
            let opt = &self.opt;
            self.remap_scratch = self
                .layers
                .iter_mut()
                .map(|l| RemapScratch::for_layer(l, opt))
                .collect();
        }
        for (p, st) in model.params_mut().into_iter().zip(&self.layers) {
            if p.numel() != st.numel() {
                return Err(format!("parameter {} size mismatch", p.name));
            }
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        if let Some(meta) = meta {
            self.scaler.restore_state(LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        Ok(())
    }

    /// The restore-and-resync recovery entry point: installs a freshly
    /// bootstrapped communicator (new generation, epoch already
    /// adopted by the caller), restores the agreed checkpoint, and
    /// barriers the new mesh so every rank resumes the step loop
    /// together. After a successful resync the trainer's bytes are the
    /// checkpoint's bytes — the drill re-diffs them post-kill.
    pub fn resync(
        &mut self,
        comm: Communicator<T>,
        checkpoint: &[u8],
        model: &mut impl Layer,
    ) -> Result<(), String> {
        self.comm = comm;
        self.restore(checkpoint, model)?;
        self.comm
            .barrier()
            .map_err(|e| format!("post-resync barrier failed: {e}"))?;
        if telemetry::enabled() {
            telemetry::global().counter("samo.dist.resyncs").inc();
        }
        Ok(())
    }
}
