//! Durable on-disk checkpointing — the piece that turns the in-memory
//! save/restore of `crate::serialize` into crash tolerance.
//!
//! Writes are atomic in the POSIX rename sense: the serialized state goes
//! to a temporary file in the checkpoint directory, is flushed with
//! `fsync`, then renamed over the final name (and the directory is synced
//! so the rename itself is durable). A crash at any point leaves either
//! the previous checkpoint or the new one — never a torn file — and the
//! v2 CRCs reject whatever a dying disk managed to corrupt anyway.
//!
//! Policy lives here too: a step-cadence (`every_steps`) and a retention
//! window (`keep_last`), so a long run keeps a bounded set of recent
//! checkpoints to roll back to. With telemetry enabled, writes feed
//! `samo.ckpt.writes` / `samo.ckpt.bytes_written` counters, the
//! `samo.ckpt.write_seconds` histogram, and a `samo.ckpt.last_bytes`
//! gauge.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Where and how often to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory the checkpoint files live in (created if missing).
    pub dir: PathBuf,
    /// Save every `every_steps` applied trainer steps (0 disables the
    /// cadence; explicit `save_now` still works).
    pub every_steps: u64,
    /// How many most-recent checkpoints to retain (older ones are
    /// pruned after a successful write). 0 means keep everything.
    pub keep_last: usize,
    /// File-name prefix, e.g. `"ckpt"` → `ckpt-000000000042.samo`.
    pub prefix: String,
}

impl CheckpointConfig {
    /// A sensible default rooted at `dir`: every 100 steps, keep 3.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            every_steps: 100,
            keep_last: 3,
            prefix: "ckpt".to_string(),
        }
    }
}

/// Durable checkpoint writer/loader with cadence and retention.
pub struct CheckpointManager {
    cfg: CheckpointConfig,
    /// Step count at the last successful save (cadence anchor).
    last_saved_step: Option<u64>,
}

impl CheckpointManager {
    /// Creates the manager, creating the directory if needed. Orphaned
    /// temp files from a previous crash are swept immediately — they
    /// are invisible to [`Self::list`]/retention and would otherwise
    /// leak forever.
    pub fn new(cfg: CheckpointConfig) -> Result<CheckpointManager, String> {
        fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("create checkpoint dir {:?}: {e}", cfg.dir))?;
        let mgr = CheckpointManager {
            cfg,
            last_saved_step: None,
        };
        mgr.sweep_stale_tmps()?;
        Ok(mgr)
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    fn file_name(&self, step: u64) -> PathBuf {
        // 12-digit zero-padding keeps lexicographic directory listings
        // readable; ordering correctness never depends on it because
        // `parse_step` compares the step numbers numerically.
        self.cfg.dir.join(format!("{}-{:012}.samo", self.cfg.prefix, step))
    }

    /// The step number encoded in a checkpoint file name this manager
    /// (or an older, narrower-padded version of it) wrote; `None` for
    /// foreign files.
    fn parse_step(&self, path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let digits = name
            .strip_prefix(&format!("{}-", self.cfg.prefix))?
            .strip_suffix(".samo")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// Removes orphaned `{prefix}-*.samo.tmp` files — the leftovers of
    /// a crash that landed between the temp write and the rename.
    /// Returns how many were removed and bumps `samo.ckpt.tmp_swept`.
    pub fn sweep_stale_tmps(&self) -> Result<usize, String> {
        let mut swept = 0usize;
        let entries = fs::read_dir(&self.cfg.dir)
            .map_err(|e| format!("read checkpoint dir {:?}: {e}", self.cfg.dir))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("read dir entry: {e}"))?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with(&format!("{}-", self.cfg.prefix)) && name.ends_with(".samo.tmp") {
                fs::remove_file(&path).map_err(|e| format!("sweep stale tmp {path:?}: {e}"))?;
                telemetry::log_debug!("checkpoint: swept stale temp file {path:?}");
                swept += 1;
            }
        }
        if swept > 0 && telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.tmp_swept").add(swept as u64);
        }
        Ok(swept)
    }

    /// Whether the cadence policy calls for a save at `steps_taken`.
    pub fn due(&self, steps_taken: u64) -> bool {
        if self.cfg.every_steps == 0 {
            return false;
        }
        match self.last_saved_step {
            None => steps_taken >= self.cfg.every_steps,
            Some(last) => steps_taken >= last + self.cfg.every_steps,
        }
    }

    /// Saves if the cadence policy says so; returns the path written, if
    /// any. `bytes` is only serialized by the caller when due — pass a
    /// closure-produced buffer via [`Self::maybe_save_with`] to avoid
    /// serializing on off-cadence steps.
    pub fn maybe_save_with(
        &mut self,
        steps_taken: u64,
        serialize: impl FnOnce() -> bytes::Bytes,
    ) -> Result<Option<PathBuf>, String> {
        if !self.due(steps_taken) {
            return Ok(None);
        }
        let path = self.save_now(steps_taken, &serialize())?;
        Ok(Some(path))
    }

    /// Unconditionally writes `bytes` as the checkpoint for
    /// `steps_taken`, atomically (temp file + fsync + rename + dir
    /// sync), then prunes beyond the retention window.
    pub fn save_now(&mut self, steps_taken: u64, bytes: &[u8]) -> Result<PathBuf, String> {
        let tel = telemetry::enabled();
        let started = std::time::Instant::now();
        let final_path = self.file_name(steps_taken);
        let tmp_path = final_path.with_extension("samo.tmp");
        {
            let mut f = fs::File::create(&tmp_path)
                .map_err(|e| format!("create {tmp_path:?}: {e}"))?;
            f.write_all(bytes)
                .map_err(|e| format!("write {tmp_path:?}: {e}"))?;
            f.sync_all().map_err(|e| format!("fsync {tmp_path:?}: {e}"))?;
        }
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| format!("rename {tmp_path:?} -> {final_path:?}: {e}"))?;
        // Sync the directory so the rename is durable, not just the data.
        if let Ok(dir) = fs::File::open(&self.cfg.dir) {
            let _ = dir.sync_all();
        }
        self.last_saved_step = Some(steps_taken);
        let elapsed = started.elapsed().as_secs_f64();
        telemetry::log_info!(
            "checkpoint: wrote {final_path:?} ({} bytes) in {elapsed:.3}s",
            bytes.len()
        );
        if tel {
            let reg = telemetry::global();
            reg.counter("samo.ckpt.writes").inc();
            reg.counter("samo.ckpt.bytes_written").add(bytes.len() as u64);
            reg.gauge("samo.ckpt.last_bytes").set(bytes.len() as f64);
            reg.histogram("samo.ckpt.write_seconds").record(elapsed);
        }
        self.sweep_stale_tmps()?;
        self.prune_old()?;
        Ok(final_path)
    }

    /// All retained checkpoints, oldest first **by step number** — a
    /// numeric sort on the parsed step, not a lexicographic one on the
    /// file name, so checkpoints written with narrower zero-padding
    /// (older builds, or runs past the padding width) still order by
    /// step. Files whose name doesn't parse as `{prefix}-<digits>.samo`
    /// are not ours and are ignored.
    pub fn list(&self) -> Result<Vec<PathBuf>, String> {
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&self.cfg.dir)
            .map_err(|e| format!("read checkpoint dir {:?}: {e}", self.cfg.dir))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("read dir entry: {e}"))?.path();
            if let Some(step) = self.parse_step(&path) {
                found.push((step, path));
            }
        }
        found.sort();
        Ok(found.into_iter().map(|(_, p)| p).collect())
    }

    /// The newest retained checkpoint, if any — the resume point after a
    /// crash.
    pub fn latest(&self) -> Result<Option<PathBuf>, String> {
        Ok(self.list()?.pop())
    }

    fn prune_old(&self) -> Result<(), String> {
        if self.cfg.keep_last == 0 {
            return Ok(());
        }
        // The currently-published checkpoint is pinned: a serve-side
        // watcher may be about to load it, and pruning it would turn an
        // atomic publish into a dangling marker.
        let published = self.published().map(|(_, p)| p);
        let found = self.list()?;
        if found.len() > self.cfg.keep_last {
            for old in &found[..found.len() - self.cfg.keep_last] {
                if published.as_deref() == Some(old.as_path()) {
                    telemetry::log_debug!("checkpoint: retention skipping published {old:?}");
                    continue;
                }
                fs::remove_file(old).map_err(|e| format!("prune {old:?}: {e}"))?;
                telemetry::log_debug!("checkpoint: pruned {old:?}");
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- publish

impl CheckpointManager {
    /// The publish-marker path for this manager's prefix:
    /// `{dir}/{prefix}.published`.
    pub fn publish_marker(&self) -> PathBuf {
        publish_marker_path(&self.cfg.dir, &self.cfg.prefix)
    }

    /// Atomically publishes `path` (a checkpoint this manager wrote) for
    /// serve-side subscribers: writes the `{prefix}.published` marker
    /// with the same tmp + fsync + rename + dir-sync discipline as the
    /// saves themselves, so a watcher polling the marker can never
    /// observe a half-written one. The marker line carries its own
    /// CRC-32, so even a torn write planted by a crashed foreign writer
    /// is detected and ignored by [`CheckpointSubscriber::poll`].
    ///
    /// Publishing is the serve handoff: training saves on its cadence,
    /// then publishes the checkpoints it wants served; the retention
    /// sweep never prunes the currently-published file.
    pub fn publish(&self, path: &Path) -> Result<u64, String> {
        let step = self
            .parse_step(path)
            .ok_or_else(|| format!("publish: {path:?} is not a checkpoint of prefix {:?}", self.cfg.prefix))?;
        if !path.exists() {
            return Err(format!("publish: checkpoint {path:?} does not exist"));
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("publish: unutterable file name {path:?}"))?;
        let line = format!("{name} {:08x}\n", crate::serialize::crc32(name.as_bytes()));
        let marker = self.publish_marker();
        let tmp = marker.with_extension("published.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| format!("create {tmp:?}: {e}"))?;
            f.write_all(line.as_bytes())
                .map_err(|e| format!("write {tmp:?}: {e}"))?;
            f.sync_all().map_err(|e| format!("fsync {tmp:?}: {e}"))?;
        }
        fs::rename(&tmp, &marker)
            .map_err(|e| format!("rename {tmp:?} -> {marker:?}: {e}"))?;
        if let Ok(dir) = fs::File::open(&self.cfg.dir) {
            let _ = dir.sync_all();
        }
        telemetry::log_info!("checkpoint: published step {step} ({name})");
        if telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.publishes").inc();
        }
        Ok(step)
    }

    /// Saves `bytes` for `steps_taken` and publishes the result in one
    /// call — the train → publish → serve handoff as a single step.
    pub fn save_and_publish(&mut self, steps_taken: u64, bytes: &[u8]) -> Result<PathBuf, String> {
        let path = self.save_now(steps_taken, bytes)?;
        self.publish(&path)?;
        Ok(path)
    }

    /// The currently published checkpoint, if a valid marker exists.
    pub fn published(&self) -> Option<(u64, PathBuf)> {
        read_publish_marker(&self.cfg.dir, &self.cfg.prefix)
    }
}

/// The publish-marker path for `prefix` under `dir`.
pub fn publish_marker_path(dir: &Path, prefix: &str) -> PathBuf {
    dir.join(format!("{prefix}.published"))
}

/// Parses and validates the publish marker: one `"{name} {crc:08x}\n"`
/// line whose CRC matches, naming an existing `{prefix}-<step>.samo`
/// file. Anything else — missing marker, torn/partial line, CRC
/// mismatch, foreign name, missing checkpoint — yields `None`: a
/// subscriber never acts on a publish it cannot fully validate.
fn read_publish_marker(dir: &Path, prefix: &str) -> Option<(u64, PathBuf)> {
    let raw = fs::read_to_string(publish_marker_path(dir, prefix)).ok()?;
    let line = raw.strip_suffix('\n')?;
    let (name, crc_hex) = line.rsplit_once(' ')?;
    let crc: u32 = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc != crate::serialize::crc32(name.as_bytes()) || crc_hex.len() != 8 {
        return None;
    }
    let digits = name.strip_prefix(&format!("{prefix}-"))?.strip_suffix(".samo")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let step: u64 = digits.parse().ok()?;
    let path = dir.join(name);
    path.exists().then_some((step, path))
}

/// Serve-side watcher handle: polls the publish marker and reports each
/// *newly* published step exactly once. Validation is structural (see
/// [`CheckpointManager::publish`]); content validation — the v2 CRCs —
/// happens when the caller loads the returned path, which it must do
/// before serving from it.
pub struct CheckpointSubscriber {
    dir: PathBuf,
    prefix: String,
    last_step: Option<u64>,
}

impl CheckpointSubscriber {
    /// A subscriber that has seen nothing yet: the first `poll` reports
    /// the current publish, if any.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> CheckpointSubscriber {
        CheckpointSubscriber {
            dir: dir.into(),
            prefix: prefix.into(),
            last_step: None,
        }
    }

    /// Returns the published `(step, path)` if it differs from the last
    /// one this subscriber reported. Republishing an older step (a
    /// rollback) is reported too — the marker is the truth, not the
    /// step ordering.
    pub fn poll(&mut self) -> Option<(u64, PathBuf)> {
        let (step, path) = read_publish_marker(&self.dir, &self.prefix)?;
        if self.last_step == Some(step) {
            return None;
        }
        self.last_step = Some(step);
        Some((step, path))
    }
}

/// Reads a checkpoint file written by [`CheckpointManager`]. Pure I/O —
/// pass the bytes to `crate::serialize::load_checkpoint` (or a trainer's
/// `restore`) for validation; any corruption surfaces there as `Err`.
pub fn read_checkpoint_file(path: &Path) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("read checkpoint {path:?}: {e}"))
}

/// Convenience: read + deserialize + structural/CRC validation in one
/// call. Never panics on corrupt input.
pub fn load_checkpoint_file(
    path: &Path,
    opt: &nn::mixed::Optimizer,
) -> Result<(Vec<crate::state::SamoLayerState>, Option<crate::serialize::TrainerMeta>), String> {
    let bytes = read_checkpoint_file(path)?;
    crate::serialize::load_checkpoint(&bytes, opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SamoLayerState;
    use nn::mixed::Optimizer;
    use nn::optim::AdamConfig;

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig::default())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("samo-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_bytes(seed: u64) -> bytes::Bytes {
        let mask = prune::random_prune(&[64], 0.5, seed);
        let st = SamoLayerState::from_params(&vec![0.25; 64], mask, &adam());
        crate::serialize::save_checkpoint(
            std::slice::from_ref(&st),
            &crate::serialize::TrainerMeta {
                loss_scale: 2.0,
                good_steps: 1,
                steps_taken: seed,
                steps_skipped: 0,
            },
        )
    }

    #[test]
    fn save_load_roundtrip_via_disk() {
        let dir = tmpdir("roundtrip");
        let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
        let bytes = sample_bytes(3);
        let path = mgr.save_now(3, &bytes).unwrap();
        assert!(path.exists());
        let (layers, meta) = load_checkpoint_file(&path, &adam()).unwrap();
        assert_eq!(layers.len(), 1);
        assert_eq!(meta.unwrap().steps_taken, 3);
        assert_eq!(mgr.latest().unwrap().unwrap(), path);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let dir = tmpdir("tmpfiles");
        let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
        mgr.save_now(1, &sample_bytes(1)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().map(|e| e == "tmp").unwrap_or(false))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cadence_and_retention() {
        let dir = tmpdir("cadence");
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.every_steps = 10;
        cfg.keep_last = 2;
        let mut mgr = CheckpointManager::new(cfg).unwrap();
        assert!(!mgr.due(5));
        assert!(mgr.due(10));
        let mut written = 0;
        for step in 1..=45u64 {
            if mgr
                .maybe_save_with(step, || sample_bytes(step))
                .unwrap()
                .is_some()
            {
                written += 1;
            }
        }
        assert_eq!(written, 4, "steps 10, 20, 30, 40");
        let kept = mgr.list().unwrap();
        assert_eq!(kept.len(), 2, "retention prunes to keep_last");
        assert!(kept[1].to_str().unwrap().contains("000000040"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_last_zero_retains_every_checkpoint() {
        let dir = tmpdir("keepall");
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.keep_last = 0;
        let mut mgr = CheckpointManager::new(cfg).unwrap();
        for step in 1..=7u64 {
            mgr.save_now(step, &sample_bytes(step)).unwrap();
        }
        assert_eq!(mgr.list().unwrap().len(), 7, "keep_last == 0 means keep everything");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_construction_and_after_saves() {
        let dir = tmpdir("tmpsweep");
        fs::create_dir_all(&dir).unwrap();
        // A crash between temp write and rename leaves exactly this.
        let orphan = dir.join("ckpt-000000000003.samo.tmp");
        fs::write(&orphan, b"torn write").unwrap();
        // Foreign files must survive the sweep untouched.
        let foreign_tmp = dir.join("other-000000000003.samo.tmp");
        let foreign = dir.join("notes.txt");
        fs::write(&foreign_tmp, b"not ours").unwrap();
        fs::write(&foreign, b"keep me").unwrap();

        let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
        assert!(!orphan.exists(), "construction must sweep orphaned tmp files");
        assert!(foreign_tmp.exists() && foreign.exists(), "sweep only matches our prefix");
        // The orphan is invisible to list() either way — that's the leak.
        assert!(mgr.list().unwrap().is_empty());

        // And after a successful save: plant another orphan, then save.
        let orphan2 = dir.join("ckpt-000000000004.samo.tmp");
        fs::write(&orphan2, b"torn again").unwrap();
        mgr.save_now(5, &sample_bytes(5)).unwrap();
        assert!(!orphan2.exists(), "save_now must sweep stale tmp files");
        assert_eq!(mgr.list().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ordering_is_numeric_not_lexicographic_across_padding_rollover() {
        let dir = tmpdir("rollover");
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.keep_last = 2;
        let mut mgr = CheckpointManager::new(cfg).unwrap();
        // A checkpoint from an older build with 9-digit padding: step
        // 999,999,999. Lexicographically "ckpt-999999999.samo" sorts
        // *after* the 12-padded "ckpt-001000000000.samo" even though
        // its step is smaller — the bug this fix pins down.
        let legacy = dir.join("ckpt-999999999.samo");
        fs::write(&legacy, sample_bytes(999_999_999)).unwrap();
        // Junk that matches prefix+suffix but isn't a step-numbered
        // checkpoint must be ignored, not pruned or returned.
        let junk = dir.join("ckpt-abc.samo");
        fs::write(&junk, b"junk").unwrap();

        let newer = mgr.save_now(1_000_000_000, &sample_bytes(0)).unwrap();
        assert_eq!(
            mgr.latest().unwrap().unwrap(),
            newer,
            "latest() must pick the numerically largest step, not the lexicographic max"
        );
        assert_eq!(mgr.list().unwrap(), vec![legacy.clone(), newer.clone()]);

        // Retention prunes the numerically oldest (the legacy file).
        let newest = mgr.save_now(1_000_000_001, &sample_bytes(1)).unwrap();
        assert!(!legacy.exists(), "prune_old must drop the numerically oldest step");
        assert_eq!(mgr.list().unwrap(), vec![newer, newest]);
        assert!(junk.exists(), "foreign files are not the manager's to prune");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_is_rejected_not_panicking() {
        let dir = tmpdir("corrupt");
        let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
        let path = mgr.save_now(7, &sample_bytes(7)).unwrap();
        let mut raw = fs::read(&path).unwrap();
        let n = raw.len();
        raw[n / 2] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        assert!(load_checkpoint_file(&path, &adam()).is_err());
        // Truncation too.
        fs::write(&path, &raw[..n / 3]).unwrap();
        assert!(load_checkpoint_file(&path, &adam()).is_err());
        // Missing file is an I/O error, not a panic.
        assert!(load_checkpoint_file(&dir.join("nope.samo"), &adam()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
