//! SAMO model state: the paper's core data structure (Sec. III).
//!
//! Per layer, SAMO keeps the half-precision compute parameters `θ16`
//! **dense** (so forward/backward use dense kernels) and every other
//! model-state tensor **compressed** against one shared linearized index
//! tensor:
//!
//! | tensor   | storage     | size      |
//! |----------|-------------|-----------|
//! | `θ16`    | dense       | `2φ` B    |
//! | `ind`    | shared      | `4fφ` B   |
//! | `θ32`    | compressed  | `4fφ` B   |
//! | `∇θ16`   | compressed  | `2fφ` B   |
//! | `∇θ32`   | compressed  | `4fφ` B   |
//! | `os`     | compressed  | `8fφ` B   |

use crate::compressed::{compress_f32, expand_f16_into, expand_f16_over_zeroed, SyncPtr};
use crate::memory::SamoBreakdown;
use nn::mixed::{OptState, Optimizer};
use nn::optim::{adam_bias_corrections, adam_update, sgd_update};
use prune::Mask;
use std::sync::atomic::{AtomicBool, Ordering};
use tensor::f16::{to_f32_table, F16};
use tensor::pool::par_ranges;
use tensor::simd;

/// `par_ranges` granularity for the fused step kernels: enough work per
/// chunk that fork–join overhead stays negligible.
const STEP_MIN_CHUNK: usize = 32 * 1024;

/// SAMO-compressed mixed-precision model state for one layer.
#[derive(Clone, Debug)]
pub struct SamoLayerState {
    mask: Mask,
    /// Dense fp16 parameters — zeros explicitly present at pruned
    /// positions so dense kernels apply directly.
    pub theta16: Vec<F16>,
    /// Compressed fp32 master parameters (length = nnz).
    pub theta32: Vec<f32>,
    /// Compressed fp16 gradients.
    pub grad16: Vec<F16>,
    /// Compressed fp32 gradients.
    pub grad32: Vec<f32>,
    /// Compressed optimizer state.
    pub os: OptState,
}

impl SamoLayerState {
    /// Builds the state from dense fp32 parameter values and a pruning
    /// mask. Values at pruned positions are discarded (set to zero in the
    /// dense θ16, absent in compressed tensors).
    pub fn from_params(values: &[f32], mask: Mask, opt: &Optimizer) -> SamoLayerState {
        assert_eq!(values.len(), mask.numel());
        let theta32 = compress_f32(values, &mask);
        let mut temp16 = vec![F16::ZERO; theta32.len()];
        tensor::f16::narrow_slice(&theta32, &mut temp16);
        let mut theta16 = vec![F16::ZERO; values.len()];
        expand_f16_over_zeroed(&temp16, &mask, &mut theta16);
        let nnz = mask.nnz();
        SamoLayerState {
            mask,
            theta16,
            theta32,
            grad16: vec![F16::ZERO; nnz],
            grad32: vec![0.0; nnz],
            os: OptState::new(opt, nnz),
        }
    }

    /// Reassembles a state from checkpointed parts (see
    /// `crate::serialize`): the dense θ16 is reconstructed from the
    /// compressed θ32, and ∇θ32 is transient (rebuilt on the next step).
    pub(crate) fn from_parts(
        mask: Mask,
        theta32: Vec<f32>,
        grad16: Vec<F16>,
        os: OptState,
    ) -> SamoLayerState {
        assert_eq!(theta32.len(), mask.nnz());
        assert_eq!(grad16.len(), mask.nnz());
        let mut temp16 = vec![F16::ZERO; theta32.len()];
        tensor::f16::narrow_slice(&theta32, &mut temp16);
        let mut theta16 = vec![F16::ZERO; mask.numel()];
        expand_f16_over_zeroed(&temp16, &mask, &mut theta16);
        let nnz = mask.nnz();
        SamoLayerState {
            theta16,
            theta32,
            grad16,
            grad32: vec![0.0; nnz],
            os,
            mask,
        }
    }

    /// The layer's pruning mask.
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// Total parameter count φ (including pruned).
    pub fn numel(&self) -> usize {
        self.mask.numel()
    }

    /// Unpruned parameter count fφ.
    pub fn nnz(&self) -> usize {
        self.mask.nnz()
    }

    /// Compresses a freshly produced dense (loss-scaled) fp32 gradient
    /// into `∇θ16` — done "at the granularity of a layer ... so that we
    /// never have to store the uncompressed gradients for the entire
    /// model" (Sec. III-C, backward pass).
    pub fn compress_grad(&mut self, dense_scaled_grad: &[f32]) {
        assert_eq!(dense_scaled_grad.len(), self.numel());
        let ind = self.mask.indices();
        for (g16, &i) in self.grad16.iter_mut().zip(ind.iter()) {
            *g16 = F16::from_f32(dense_scaled_grad[i as usize]);
        }
    }

    /// Accumulate a *compressed* fp32 gradient directly (used by the
    /// data-parallel all-reduce path, which sums compressed tensors).
    pub fn set_compressed_grad16(&mut self, compressed: &[F16]) {
        assert_eq!(compressed.len(), self.nnz());
        self.grad16.copy_from_slice(compressed);
    }

    /// True if any stored fp16 gradient is non-finite (loss-scaler check).
    pub fn grads_non_finite(&self) -> bool {
        self.grad16.iter().any(|g| !g.is_finite())
    }

    /// Fused step kernel (a): gather + f16-round + overflow-detect in one
    /// parallel pass over `nnz`. Equivalent to [`Self::compress_grad`]
    /// followed by [`Self::grads_non_finite`] (bitwise-identical `∇θ16`,
    /// property tested against that three-phase oracle), but reads the
    /// dense gradient once and never re-scans the compressed buffer.
    ///
    /// Returns `true` when every stored gradient is finite (i.e. `false`
    /// signals loss-scale overflow). Each chunk runs through
    /// [`tensor::simd::gather_narrow_finite`], so on AVX2 hardware the
    /// gather + round + finiteness check are all vectorized; the scalar
    /// tier is bitwise identical, so the checkpoint determinism oracles
    /// hold regardless of `SAMO_SIMD`.
    pub fn compress_grad_fused(&mut self, dense_scaled_grad: &[f32]) -> bool {
        assert_eq!(dense_scaled_grad.len(), self.numel());
        let ind = self.mask.indices();
        let tier = simd::active();
        let all_finite = AtomicBool::new(true);
        let g16 = SyncPtr(self.grad16.as_mut_ptr());
        let (g16, all_finite_ref) = (&g16, &all_finite);
        par_ranges(ind.len(), STEP_MIN_CHUNK, |s, e| {
            // SAFETY: each compressed position j in s..e is written by
            // exactly one task.
            let out = unsafe { std::slice::from_raw_parts_mut(g16.0.add(s), e - s) };
            if !simd::gather_narrow_finite(tier, dense_scaled_grad, &ind[s..e], out) {
                all_finite_ref.store(false, Ordering::Relaxed);
            }
        });
        all_finite.into_inner()
    }

    /// Fused step kernel (b): upscale + optimizer + downcast +
    /// scatter-into-θ16 in one parallel pass over `nnz`, writing the
    /// model's dense f32 parameter view into `dense_out` in place.
    /// Equivalent to [`Self::optimizer_step`] followed by copying
    /// [`Self::dense_f32_params`] out (bitwise for `θ32`/`∇θ32`/`os`,
    /// exact for `θ16` — property tested against that oracle), without
    /// the transient compressed fp16 copy or the dense `Vec` per layer
    /// per step.
    ///
    /// Deliberately scalar on every tier: the per-element optimizer math
    /// is a long dependent chain (Adam moments → update → downcast →
    /// scatter) with a data-dependent scatter at the end, so
    /// vectorization would buy little and would put the
    /// bitwise-determinism argument of DESIGN.md §16 at risk for no
    /// measured win.
    ///
    /// Precondition: `dense_out` and `θ16` are already zero at every
    /// pruned position. Both are only ever produced by this type's
    /// constructors or step kernels, which maintain that invariant, so
    /// only the unpruned positions need to be rewritten here.
    pub fn optimizer_step_fused(
        &mut self,
        opt: &Optimizer,
        inv_loss_scale: f32,
        dense_out: &mut [f32],
    ) {
        assert_eq!(dense_out.len(), self.numel());
        let nnz = self.mask.nnz();
        let SamoLayerState { mask, theta16, theta32, grad16, grad32, os } = self;
        let ind = mask.indices();
        let table = to_f32_table();
        let grad16 = &grad16[..];
        let t16 = SyncPtr(theta16.as_mut_ptr());
        let t32 = SyncPtr(theta32.as_mut_ptr());
        let g32 = SyncPtr(grad32.as_mut_ptr());
        let out = SyncPtr(dense_out.as_mut_ptr());
        let (t16, t32, g32, out) = (&t16, &t32, &g32, &out);
        match (os, opt) {
            (OptState::Adam(st), Optimizer::Adam(cfg)) => {
                st.step += 1;
                let (bc1, bc2) = adam_bias_corrections(cfg, st.step);
                let m = SyncPtr(st.m.as_mut_ptr());
                let v = SyncPtr(st.v.as_mut_ptr());
                let (m, v) = (&m, &v);
                par_ranges(nnz, STEP_MIN_CHUNK, |s, e| {
                    for j in s..e {
                        // SAFETY: compressed position j and dense
                        // position ind[j] (strictly increasing) are each
                        // touched by exactly one task.
                        unsafe {
                            let g = table[grad16[j].0 as usize] * inv_loss_scale;
                            *g32.0.add(j) = g;
                            let p = &mut *t32.0.add(j);
                            adam_update(cfg, bc1, bc2, &mut *m.0.add(j), &mut *v.0.add(j), p, g);
                            let h = F16::from_f32_fast(*p);
                            let i = ind[j] as usize;
                            *t16.0.add(i) = h;
                            *out.0.add(i) = table[h.0 as usize];
                        }
                    }
                });
            }
            (OptState::Sgd(st), Optimizer::Sgd(cfg)) => {
                let vel = SyncPtr(st.velocity.as_mut_ptr());
                let vel = &vel;
                par_ranges(nnz, STEP_MIN_CHUNK, |s, e| {
                    for j in s..e {
                        // SAFETY: as above — disjoint j and ind[j].
                        unsafe {
                            let g = table[grad16[j].0 as usize] * inv_loss_scale;
                            *g32.0.add(j) = g;
                            let p = &mut *t32.0.add(j);
                            sgd_update(cfg, &mut *vel.0.add(j), p, g);
                            let h = F16::from_f32_fast(*p);
                            let i = ind[j] as usize;
                            *t16.0.add(i) = h;
                            *out.0.add(i) = table[h.0 as usize];
                        }
                    }
                });
            }
            _ => panic!("optimizer/optimizer-state kind mismatch"),
        }
    }

    /// The three-phase SAMO optimizer step (Sec. III-C):
    ///
    /// 1. upscale `∇θ16 → ∇θ32` directly on compressed tensors,
    /// 2. run the optimizer on compressed `θ32` with dense elementwise
    ///    kernels,
    /// 3. downcast: make a compressed fp16 copy of `θ32`, then *expand*
    ///    it through `ind` into the dense `θ16`.
    ///
    /// This is the reference path the fused kernels are property-tested
    /// against; the training hot loop uses [`Self::compress_grad_fused`]
    /// and [`Self::optimizer_step_fused`] instead.
    pub fn optimizer_step(&mut self, opt: &Optimizer, inv_loss_scale: f32) {
        // Phase 1: upscale on compressed data.
        for (g32, g16) in self.grad32.iter_mut().zip(&self.grad16) {
            *g32 = g16.to_f32() * inv_loss_scale;
        }
        // Phase 2: optimizer on compressed data.
        let SamoLayerState { theta32, grad32, os, .. } = self;
        os.step(opt, theta32, grad32);
        // Phase 3: downcast + expand. The transient compressed copy is
        // the `2fφ` term in the memory model.
        let temp16: Vec<F16> = self.theta32.iter().map(|&v| F16::from_f32(v)).collect();
        expand_f16_into(&temp16, &self.mask, &mut self.theta16);
    }

    /// Byte-exact measurement of this layer's model-state storage,
    /// matching [`SamoBreakdown`]. `include_temp` adds the transient
    /// downcast copy (peak vs steady usage).
    pub fn measured_bytes(&self, include_temp: bool) -> u64 {
        let b = self.breakdown();
        if include_temp {
            b.peak_bytes()
        } else {
            b.steady_bytes()
        }
    }

    /// Component breakdown from the live data structures.
    pub fn breakdown(&self) -> SamoBreakdown {
        SamoBreakdown {
            theta16: (self.theta16.len() * 2) as u64,
            index: self.mask.index_bytes() as u64,
            theta32: (self.theta32.len() * 4) as u64,
            grad16: (self.grad16.len() * 2) as u64,
            grad32: (self.grad32.len() * 4) as u64,
            optimizer: self.os.bytes() as u64,
            downcast_temp: (self.theta32.len() * 2) as u64,
        }
    }

    /// Dense fp32 view of the current parameters (for loading into a
    /// compute layer): widened θ16, zeros at pruned positions.
    pub fn dense_f32_params(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.theta16.len()];
        self.write_dense_f32_params_into(&mut out);
        out
    }

    /// Writes the dense fp32 parameter view directly into an existing
    /// buffer (table-based widen, no allocation) — used by the trainer's
    /// build/restore paths instead of round-tripping through
    /// [`Self::dense_f32_params`].
    pub fn write_dense_f32_params_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.theta16.len());
        tensor::ops::widen_into(&self.theta16, out);
    }

    /// Reserves worst-case (dense) capacity on every compressed buffer so
    /// subsequent [`Self::remap_compressed_state`] calls never reallocate
    /// whichever direction the mask moves. Called once when a
    /// [`RemapScratch`] is built; byte accounting is length-based, so the
    /// steady-state memory model is unaffected.
    fn reserve_remap_headroom(&mut self) {
        let numel = self.numel();
        let reserve = |v_len: usize| numel.saturating_sub(v_len);
        self.theta32.reserve(reserve(self.theta32.len()));
        self.grad16.reserve(reserve(self.grad16.len()));
        self.grad32.reserve(reserve(self.grad32.len()));
        match &mut self.os {
            OptState::Adam(a) => {
                a.m.reserve(reserve(a.m.len()));
                a.v.reserve(reserve(a.v.len()));
            }
            OptState::Sgd(s) => s.velocity.reserve(reserve(s.velocity.len())),
        }
    }

    /// Migrates the compressed state from the current mask to `new_mask`
    /// in a single merge pass over the two sorted index lists:
    ///
    /// * **surviving** indices (in both masks) copy `θ32`/`∇θ16`/`∇θ32`
    ///   and the optimizer moments to their new compressed position;
    /// * **newborn** indices (only in `new_mask`) initialize the master
    ///   weight from the dense `θ16` view (zero under the pruned-zeros
    ///   invariant) with zero moments and zero gradient;
    /// * **dead** indices (only in the old mask) drop their compressed
    ///   state and are zeroed in the dense `θ16`.
    ///
    /// The Adam step count is preserved (bias correction keeps its
    /// schedule; newborns simply enter with zero moments, exactly as in
    /// Dettmers & Zettlemoyer's regrowth). The new buffers are staged in
    /// `scratch` and swapped in, so with a warm [`RemapScratch`] the
    /// kernel performs **zero heap allocations** (asserted by
    /// `tests/zero_alloc.rs`). Returns the retired mask so callers can
    /// control where its refcount drop happens.
    pub fn remap_compressed_state(&mut self, new_mask: Mask, scratch: &mut RemapScratch) -> Mask {
        assert_eq!(
            new_mask.shape(),
            self.mask.shape(),
            "remap must preserve the tensor shape"
        );
        let new_nnz = new_mask.nnz();
        let table = to_f32_table();
        let SamoLayerState { mask, theta16, theta32, grad16, grad32, os } = self;
        let old_ind = mask.indices();
        let new_ind = new_mask.indices();

        scratch.theta32.clear();
        scratch.theta32.resize(new_nnz, 0.0);
        scratch.grad16.clear();
        scratch.grad16.resize(new_nnz, F16::ZERO);
        scratch.grad32.clear();
        scratch.grad32.resize(new_nnz, 0.0);
        // (old, new) first-moment slices, plus the (old, new) second
        // moments when the optimizer carries them (Adam).
        type Moments<'a> = (&'a [f32], &'a mut [f32], Option<(&'a [f32], &'a mut [f32])>);
        let (old_m, new_m, mut second): Moments =
            match (&mut *os, &mut scratch.os) {
                (OptState::Adam(a), OptState::Adam(s)) => {
                    s.m.clear();
                    s.m.resize(new_nnz, 0.0);
                    s.v.clear();
                    s.v.resize(new_nnz, 0.0);
                    (&a.m, &mut s.m, Some((&a.v, &mut s.v)))
                }
                (OptState::Sgd(a), OptState::Sgd(s)) => {
                    s.velocity.clear();
                    s.velocity.resize(new_nnz, 0.0);
                    (&a.velocity, &mut s.velocity, None)
                }
                _ => panic!("optimizer-state kind mismatch between layer and scratch"),
            };

        // Two-pointer merge over the sorted index sets. Schedule
        // transitions keep most indices (sparsify/densify move only the
        // delta; churn swaps a small fraction), so survivors arrive in
        // long runs of equal indices: detect each run once, then move it
        // with `copy_from_slice` (memcpy) across all five arrays instead
        // of per-element branchy copies.
        let old_ind: &[u32] = old_ind.as_slice();
        let new_ind: &[u32] = new_ind.as_slice();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_ind.len() && j < new_nnz {
            let o = old_ind[i];
            let n = new_ind[j];
            if o == n {
                let max = (old_ind.len() - i).min(new_nnz - j);
                let mut run = 1;
                while run < max && old_ind[i + run] == new_ind[j + run] {
                    run += 1;
                }
                scratch.theta32[j..j + run].copy_from_slice(&theta32[i..i + run]);
                scratch.grad16[j..j + run].copy_from_slice(&grad16[i..i + run]);
                scratch.grad32[j..j + run].copy_from_slice(&grad32[i..i + run]);
                new_m[j..j + run].copy_from_slice(&old_m[i..i + run]);
                if let Some((ov, nv)) = second.as_mut() {
                    nv[j..j + run].copy_from_slice(&ov[i..i + run]);
                }
                i += run;
                j += run;
            } else if o < n {
                // Death run: every old index below `n` is dead.
                while i < old_ind.len() && old_ind[i] < n {
                    theta16[old_ind[i] as usize] = F16::ZERO;
                    i += 1;
                }
            } else {
                // Birth run: every new index below `o` is a newborn.
                while j < new_nnz && new_ind[j] < o {
                    scratch.theta32[j] = table[theta16[new_ind[j] as usize].0 as usize];
                    j += 1;
                }
            }
        }
        // Tails: one side exhausted, the rest is pure deaths or births.
        for &o in &old_ind[i..] {
            theta16[o as usize] = F16::ZERO;
        }
        for &n in &new_ind[j..] {
            scratch.theta32[j] = table[theta16[n as usize].0 as usize];
            j += 1;
        }

        std::mem::swap(theta32, &mut scratch.theta32);
        std::mem::swap(grad16, &mut scratch.grad16);
        std::mem::swap(grad32, &mut scratch.grad32);
        match (os, &mut scratch.os) {
            (OptState::Adam(a), OptState::Adam(s)) => {
                std::mem::swap(&mut a.m, &mut s.m);
                std::mem::swap(&mut a.v, &mut s.v);
            }
            (OptState::Sgd(a), OptState::Sgd(s)) => std::mem::swap(&mut a.velocity, &mut s.velocity),
            _ => unreachable!("variant checked above"),
        }
        std::mem::replace(mask, new_mask)
    }
}

/// Pre-sized staging buffers for [`SamoLayerState::remap_compressed_state`]:
/// every vector carries worst-case (dense) capacity so remapping in either
/// direction — sparsify or densify — stays allocation-free. The buffer
/// swap means the retired compressed tensors become the next remap's
/// staging area, so one scratch per layer amortizes forever.
#[derive(Debug)]
pub struct RemapScratch {
    theta32: Vec<f32>,
    grad16: Vec<F16>,
    grad32: Vec<f32>,
    os: OptState,
    /// Dense (φ-length) staging for the trainer's grow-score
    /// canonicalization; lives here so schedule evaluation reuses the
    /// same warm allocation.
    pub score: Vec<f32>,
}

impl RemapScratch {
    /// Builds scratch matched to `layer`'s optimizer-state kind and also
    /// reserves remap headroom on the layer's own buffers (both sides of
    /// the swap must carry dense capacity).
    pub fn for_layer(layer: &mut SamoLayerState, opt: &Optimizer) -> RemapScratch {
        let numel = layer.numel();
        layer.reserve_remap_headroom();
        let mut os = OptState::new(opt, 0);
        match &mut os {
            OptState::Adam(a) => {
                a.m.reserve(numel);
                a.v.reserve(numel);
            }
            OptState::Sgd(s) => s.velocity.reserve(numel),
        }
        RemapScratch {
            theta32: Vec::with_capacity(numel),
            grad16: Vec::with_capacity(numel),
            grad32: Vec::with_capacity(numel),
            os,
            score: Vec::with_capacity(numel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::optim::AdamConfig;

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 0.1,
            ..Default::default()
        })
    }

    fn mask_half() -> Mask {
        Mask::new(&[8], vec![1, 3, 4, 6])
    }

    #[test]
    fn construction_zeroes_pruned_theta16() {
        let values: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let st = SamoLayerState::from_params(&values, mask_half(), &adam());
        assert_eq!(st.nnz(), 4);
        assert_eq!(st.theta32, vec![2.0, 4.0, 5.0, 7.0]);
        let dense = st.dense_f32_params();
        assert_eq!(dense, vec![0.0, 2.0, 0.0, 4.0, 5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn compress_grad_picks_unpruned_positions() {
        let values = vec![1.0f32; 8];
        let mut st = SamoLayerState::from_params(&values, mask_half(), &adam());
        let grads: Vec<f32> = (10..18).map(|i| i as f32).collect();
        st.compress_grad(&grads);
        let g: Vec<f32> = st.grad16.iter().map(|v| v.to_f32()).collect();
        assert_eq!(g, vec![11.0, 13.0, 14.0, 16.0]);
    }

    #[test]
    fn optimizer_step_keeps_pruned_params_zero() {
        let values: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let mut st = SamoLayerState::from_params(&values, mask_half(), &adam());
        st.compress_grad(&[1.0f32; 8]);
        st.optimizer_step(&adam(), 1.0);
        let dense = st.dense_f32_params();
        for (i, &v) in dense.iter().enumerate() {
            if [1usize, 3, 4, 6].contains(&i) {
                assert!(v != 0.0 && v < (i + 1) as f32, "unpruned moved down");
            } else {
                assert_eq!(v, 0.0, "pruned stayed zero");
            }
        }
    }

    #[test]
    fn non_finite_grad_detection() {
        let mut st = SamoLayerState::from_params(&[1.0; 8], mask_half(), &adam());
        st.compress_grad(&[0.0; 8]);
        assert!(!st.grads_non_finite());
        let mut grads = vec![0.0f32; 8];
        grads[3] = f32::INFINITY; // position 3 is unpruned
        st.compress_grad(&grads);
        assert!(st.grads_non_finite());
        // Overflow at a *pruned* position is invisible — it is never stored.
        let mut grads2 = vec![0.0f32; 8];
        grads2[0] = f32::INFINITY; // position 0 is pruned
        st.compress_grad(&grads2);
        assert!(!st.grads_non_finite());
    }

    #[test]
    fn measured_bytes_match_formula() {
        let phi = 10_000usize;
        let mask = prune::random_prune(&[phi], 0.9, 3);
        let nnz = mask.nnz();
        let st = SamoLayerState::from_params(&vec![0.5; phi], mask, &adam());
        let b = st.breakdown();
        assert_eq!(b, SamoBreakdown::new(phi as u64, nnz as u64));
        assert_eq!(
            st.measured_bytes(true),
            crate::memory::m_samo_bytes(phi as u64, 0.9)
        );
    }

    /// Steps a layer a few times so θ32, the moments, and the step count
    /// are all nonzero before a remap exercises them.
    fn warmed_layer(opt: &Optimizer) -> SamoLayerState {
        let values: Vec<f32> = (1..=8).map(|i| i as f32 * 0.1).collect();
        let mut st = SamoLayerState::from_params(&values, mask_half(), opt);
        for k in 0..3 {
            let grads: Vec<f32> = (0..8).map(|i| (i as f32 + k as f32) * 0.01).collect();
            st.compress_grad(&grads);
            st.optimizer_step(opt, 1.0);
        }
        st
    }

    #[test]
    fn remap_copies_survivors_drops_dead_births_newborns() {
        let opt = adam();
        let mut st = warmed_layer(&opt);
        let before = st.clone();
        // Old mask {1,3,4,6} -> new mask {3,4,5,7}: survivors {3,4},
        // dead {1,6}, newborn {5,7}.
        let new_mask = Mask::new(&[8], vec![3, 4, 5, 7]);
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        let retired = st.remap_compressed_state(new_mask.clone(), &mut scratch);
        assert_eq!(retired, before.mask().clone());
        assert_eq!(st.mask(), &new_mask);
        assert_eq!(st.nnz(), 4);

        let (om, ov, nm, nv) = match (&before.os, &st.os) {
            (OptState::Adam(o), OptState::Adam(n)) => {
                assert_eq!(o.step, n.step, "Adam step schedule preserved");
                (&o.m, &o.v, &n.m, &n.v)
            }
            _ => unreachable!(),
        };
        // Survivors: old compressed slot 1 (dense 3) -> new slot 0, old
        // slot 2 (dense 4) -> new slot 1. Bitwise copies everywhere.
        for (new_j, old_j) in [(0usize, 1usize), (1, 2)] {
            assert_eq!(st.theta32[new_j].to_bits(), before.theta32[old_j].to_bits());
            assert_eq!(st.grad16[new_j].0, before.grad16[old_j].0);
            assert_eq!(st.grad32[new_j].to_bits(), before.grad32[old_j].to_bits());
            assert_eq!(nm[new_j].to_bits(), om[old_j].to_bits());
            assert_eq!(nv[new_j].to_bits(), ov[old_j].to_bits());
        }
        // Newborns (dense 5, 7 -> new slots 2, 3): zero master (the dense
        // θ16 was zero there), zero moments, zero gradient.
        for j in [2usize, 3] {
            assert_eq!(st.theta32[j], 0.0);
            assert_eq!(st.grad16[j].0, 0);
            assert_eq!(st.grad32[j], 0.0);
            assert_eq!(nm[j], 0.0);
            assert_eq!(nv[j], 0.0);
        }
        // Dense θ16: dead positions zeroed, survivors untouched, the
        // pruned-zeros invariant holds everywhere.
        for i in 0..8usize {
            if [3usize, 4].contains(&i) {
                assert_eq!(st.theta16[i].0, before.theta16[i].0, "survivor {i} moved");
            } else {
                assert_eq!(st.theta16[i].0, 0, "position {i} must be zero");
            }
        }
    }

    #[test]
    fn remap_matches_from_params_for_fresh_positions() {
        // Remapping a *fresh* (never-stepped) layer to any mask must give
        // exactly what building from the dense view with that mask gives.
        let opt = adam();
        let values: Vec<f32> = (1..=8).map(|i| i as f32 * 0.25).collect();
        let mut st = SamoLayerState::from_params(&values, mask_half(), &opt);
        let dense = st.dense_f32_params();
        let new_mask = Mask::new(&[8], vec![1, 2, 4]);
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        st.remap_compressed_state(new_mask.clone(), &mut scratch);
        let oracle = SamoLayerState::from_params(&dense, new_mask, &opt);
        assert_eq!(st.theta32, oracle.theta32);
        assert_eq!(
            st.theta16.iter().map(|h| h.0).collect::<Vec<_>>(),
            oracle.theta16.iter().map(|h| h.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn remap_to_same_mask_is_identity() {
        let opt = adam();
        let mut st = warmed_layer(&opt);
        let before = st.clone();
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        st.remap_compressed_state(before.mask().clone(), &mut scratch);
        assert_eq!(st.theta32, before.theta32);
        assert_eq!(st.grad32, before.grad32);
        assert_eq!(
            st.grad16.iter().map(|h| h.0).collect::<Vec<_>>(),
            before.grad16.iter().map(|h| h.0).collect::<Vec<_>>()
        );
        match (&st.os, &before.os) {
            (OptState::Adam(a), OptState::Adam(b)) => {
                assert_eq!(a.m, b.m);
                assert_eq!(a.v, b.v);
                assert_eq!(a.step, b.step);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn remap_densify_then_sparsify_roundtrip_keeps_survivor_state() {
        // Densify {1,3,4,6} -> all 8, then sparsify back: surviving
        // master weights and moments must ride through both remaps.
        let opt = adam();
        let mut st = warmed_layer(&opt);
        let before = st.clone();
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        st.remap_compressed_state(Mask::dense(&[8]), &mut scratch);
        assert_eq!(st.nnz(), 8);
        st.remap_compressed_state(mask_half(), &mut scratch);
        assert_eq!(st.nnz(), 4);
        assert_eq!(st.theta32, before.theta32);
        match (&st.os, &before.os) {
            (OptState::Adam(a), OptState::Adam(b)) => {
                assert_eq!(a.m, b.m);
                assert_eq!(a.v, b.v);
            }
            _ => unreachable!(),
        }
        for i in 0..8usize {
            assert_eq!(st.theta16[i].0, before.theta16[i].0);
        }
    }

    #[test]
    fn remap_works_for_sgd_state() {
        let opt = Optimizer::Sgd(nn::optim::SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let mut st = warmed_layer(&opt);
        let before = st.clone();
        let new_mask = Mask::new(&[8], vec![1, 3, 5]);
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        st.remap_compressed_state(new_mask, &mut scratch);
        match (&st.os, &before.os) {
            (OptState::Sgd(n), OptState::Sgd(o)) => {
                // Survivors 1 (old slot 0) and 3 (old slot 1); newborn 5.
                assert_eq!(n.velocity[0].to_bits(), o.velocity[0].to_bits());
                assert_eq!(n.velocity[1].to_bits(), o.velocity[1].to_bits());
                assert_eq!(n.velocity[2], 0.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn remap_rejects_shape_change() {
        let opt = adam();
        let mut st = SamoLayerState::from_params(&[0.0; 8], mask_half(), &opt);
        let mut scratch = RemapScratch::for_layer(&mut st, &opt);
        st.remap_compressed_state(Mask::dense(&[4]), &mut scratch);
    }

    #[test]
    fn loss_scale_is_divided_out() {
        let opt = Optimizer::Sgd(nn::optim::SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        let mask = Mask::dense(&[2]);
        let mut st = SamoLayerState::from_params(&[0.0, 0.0], mask, &opt);
        let scale = 256.0;
        st.compress_grad(&[0.5 * scale, -0.25 * scale]);
        st.optimizer_step(&opt, 1.0 / scale);
        assert!((st.theta32[0] + 0.5).abs() < 1e-3);
        assert!((st.theta32[1] - 0.25).abs() < 1e-3);
    }
}
