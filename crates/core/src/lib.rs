//! SAMO — Sparsity-Aware Memory Optimization.
//!
//! The core contribution of "Exploiting Sparsity in Pruned Neural
//! Networks to Optimize Large Model Training" (Singh & Bhatele, IPDPS
//! 2023): given a network pruned to sparsity `p`, keep the fp16 compute
//! parameters dense (fast dense kernels) and store every other
//! model-state tensor compressed against one shared linearized index
//! tensor, cutting model-state memory from `20φ` to `24(1−p)φ + 2φ`
//! bytes — then spend the savings on communication (smaller all-reduce
//! messages; fewer pipeline stages).
//!
//! * [`compressed`] — compress / "expand" primitives,
//! * [`memory`] — the Sec. III-D analytical model (Fig. 2) and byte-exact
//!   accounting,
//! * [`state`] — [`state::SamoLayerState`], the per-layer compressed
//!   mixed-precision model state and its three-phase optimizer step,
//! * [`trainer`] — whole-model SAMO training, the dense masked baseline
//!   it is numerically equivalent to, and the compressed all-reduce,
//! * [`checkpoint`] — durable on-disk checkpointing (atomic writes,
//!   CRC-validated v2 format, cadence + retention),
//! * [`sentinel`] — divergence detection driving checkpoint rollback.

//! ```
//! use nn::layer::Layer;
//! // Prune a layer to 90% and train it with compressed model state.
//! let mut model = nn::Linear::new(32, 32, true, 7);
//! let masks = vec![
//!     prune::magnitude_prune(
//!         model.params()[0].value.as_slice(), &[32, 32], 0.9),
//!     prune::Mask::dense(&[32]), // bias stays dense
//! ];
//! let opt = nn::mixed::Optimizer::Adam(nn::optim::AdamConfig::default());
//! let trainer = samo::SamoTrainer::new(&mut model, masks, opt);
//! // Model state: 2φ dense θ16 + 24 bytes per unpruned parameter,
//! // versus 20φ for dense mixed precision.
//! assert!(trainer.model_state_bytes(true) < 20 * trainer.numel() as u64 / 2);
//! ```

pub mod checkpoint;
pub mod compressed;
pub mod data_parallel;
pub mod dist;
pub mod memory;
pub mod pipeline;
pub mod sentinel;
pub mod serialize;
pub mod sharded;
pub mod state;
pub mod threaded;
pub mod trainer;

pub use checkpoint::{
    load_checkpoint_file, publish_marker_path, CheckpointConfig, CheckpointManager,
    CheckpointSubscriber,
};
pub use compressed::{compress_f16, compress_f32, expand_f16, expand_f32};
pub use memory::{m_default_bytes, m_samo_bytes, samo_savings_fraction, SamoBreakdown};
pub use data_parallel::DataParallelSamo;
pub use dist::DistDataParallel;
pub use pipeline::{PipelineConfig, StageStats, ThreadedPipelineSamo};
pub use sentinel::{DivergenceSentinel, SentinelConfig, Verdict};
pub use serialize::TrainerMeta;
pub use sharded::{m_samo_zero_bytes, ShardedSamoLayerState};
pub use state::SamoLayerState;
pub use threaded::ThreadedDataParallelSamo;
pub use trainer::{DenseMaskedTrainer, SamoTrainer};
