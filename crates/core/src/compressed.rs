//! Compression and expansion primitives (paper Sec. III-B/III-C).
//!
//! A *compressed* tensor holds values only at the unpruned positions
//! given by a shared, linearized `u32` index tensor (`ind`). "Expansion"
//! is defined by the paper as the inverse of compression: it takes a
//! compressed tensor and `ind` and produces the dense tensor with zeros
//! at pruned positions.

use prune::Mask;
use tensor::f16::F16;
use tensor::pool::par_ranges;

/// Gathers `dense[ind[j]]` into a new compressed buffer.
///
/// ```
/// use prune::Mask;
/// let mask = Mask::new(&[2, 2], vec![0, 3]); // paper's Sec. III-B example
/// let compressed = samo::compress_f32(&[1.0, 2.0, 3.0, 4.0], &mask);
/// assert_eq!(compressed, vec![1.0, 4.0]);
/// assert_eq!(samo::expand_f32(&compressed, &mask), vec![1.0, 0.0, 0.0, 4.0]);
/// ```
pub fn compress_f32(dense: &[f32], mask: &Mask) -> Vec<f32> {
    assert_eq!(dense.len(), mask.numel(), "dense length must match mask");
    let ind = mask.indices();
    let mut out = vec![0.0f32; ind.len()];
    let out_slice = &mut out[..];
    // Disjoint writes: position j of out only depends on ind[j].
    let out_ptr = SyncPtr(out_slice.as_mut_ptr());
    let out_ptr = &out_ptr;
    par_ranges(ind.len(), 64 * 1024, |s, e| {
        for j in s..e {
            // SAFETY: each j is written by exactly one task.
            unsafe {
                *out_ptr.0.add(j) = dense[ind[j] as usize];
            }
        }
    });
    out
}

/// Scatters compressed values to a fresh dense buffer (zeros elsewhere).
pub fn expand_f32(values: &[f32], mask: &Mask) -> Vec<f32> {
    let mut out = vec![0.0f32; mask.numel()];
    expand_f32_into(values, mask, &mut out);
    out
}

/// Scatters compressed values into an existing dense buffer; positions
/// not covered by the mask are zeroed.
pub fn expand_f32_into(values: &[f32], mask: &Mask, dense: &mut [f32]) {
    assert_eq!(dense.len(), mask.numel());
    dense.fill(0.0);
    expand_f32_over_zeroed(values, mask, dense);
}

/// Scatter-only expansion: like [`expand_f32_into`] but skips the
/// `fill(0)` pass. The caller must guarantee every pruned position of
/// `dense` is already zero (true for any buffer previously produced by
/// an expansion against the same mask).
pub fn expand_f32_over_zeroed(values: &[f32], mask: &Mask, dense: &mut [f32]) {
    assert_eq!(values.len(), mask.nnz(), "values must match mask nnz");
    assert_eq!(dense.len(), mask.numel());
    let ind = mask.indices();
    let dense_ptr = SyncPtr(dense.as_mut_ptr());
    let dense_ptr = &dense_ptr;
    par_ranges(ind.len(), 64 * 1024, |s, e| {
        for j in s..e {
            // SAFETY: mask indices are strictly increasing, so each
            // dense position is written by exactly one task.
            unsafe {
                *dense_ptr.0.add(ind[j] as usize) = values[j];
            }
        }
    });
}

/// Gathers half-precision values at the mask positions.
pub fn compress_f16(dense: &[F16], mask: &Mask) -> Vec<F16> {
    assert_eq!(dense.len(), mask.numel());
    let ind = mask.indices();
    let mut out = vec![F16::ZERO; ind.len()];
    let out_ptr = SyncPtr(out.as_mut_slice().as_mut_ptr());
    let out_ptr = &out_ptr;
    par_ranges(ind.len(), 64 * 1024, |s, e| {
        for j in s..e {
            // SAFETY: each j is written by exactly one task.
            unsafe {
                *out_ptr.0.add(j) = dense[ind[j] as usize];
            }
        }
    });
    out
}

/// Scatters compressed half-precision values into an existing dense
/// buffer, zeroing pruned positions — the "expand" of the paper's
/// parameter-downcast step.
pub fn expand_f16_into(values: &[F16], mask: &Mask, dense: &mut [F16]) {
    assert_eq!(dense.len(), mask.numel());
    dense.fill(F16::ZERO);
    expand_f16_over_zeroed(values, mask, dense);
}

/// Scatter-only half-precision expansion; same zero-precondition as
/// [`expand_f32_over_zeroed`].
pub fn expand_f16_over_zeroed(values: &[F16], mask: &Mask, dense: &mut [F16]) {
    assert_eq!(values.len(), mask.nnz());
    assert_eq!(dense.len(), mask.numel());
    let ind = mask.indices();
    let dense_ptr = SyncPtr(dense.as_mut_ptr());
    let dense_ptr = &dense_ptr;
    par_ranges(ind.len(), 64 * 1024, |s, e| {
        for j in s..e {
            // SAFETY: mask indices are strictly increasing, so each
            // dense position is written by exactly one task.
            unsafe {
                *dense_ptr.0.add(ind[j] as usize) = values[j];
            }
        }
    });
}

/// Allocating variant of [`expand_f16_into`].
pub fn expand_f16(values: &[F16], mask: &Mask) -> Vec<F16> {
    let mut out = vec![F16::ZERO; mask.numel()];
    expand_f16_into(values, mask, &mut out);
    out
}

/// Raw-pointer wrapper asserting that cross-thread use is safe; only
/// ever used for provably disjoint writes (compressed index `j` ranges,
/// or strictly increasing mask indices).
pub(crate) struct SyncPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_4of8() -> Mask {
        Mask::new(&[2, 4], vec![0, 3, 5, 6])
    }

    #[test]
    fn compress_gathers_in_index_order() {
        let dense: Vec<f32> = (0..8).map(|i| i as f32 * 10.0).collect();
        let c = compress_f32(&dense, &mask_4of8());
        assert_eq!(c, vec![0.0, 30.0, 50.0, 60.0]);
    }

    #[test]
    fn expand_restores_masked_dense() {
        let c = vec![1.0f32, 2.0, 3.0, 4.0];
        let d = expand_f32(&c, &mask_4of8());
        assert_eq!(d, vec![1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn expand_compress_is_identity_on_compressed() {
        let mask = mask_4of8();
        let c = vec![7.0f32, -1.0, 0.5, 9.0];
        assert_eq!(compress_f32(&expand_f32(&c, &mask), &mask), c);
    }

    #[test]
    fn compress_expand_is_masking_on_dense() {
        let mask = mask_4of8();
        let dense: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let roundtrip = expand_f32(&compress_f32(&dense, &mask), &mask);
        let mut masked = dense.clone();
        mask.apply(&mut masked);
        assert_eq!(roundtrip, masked);
    }

    #[test]
    fn expand_into_overwrites_stale_data() {
        let mask = mask_4of8();
        let mut dense = vec![99.0f32; 8];
        expand_f32_into(&[1.0, 2.0, 3.0, 4.0], &mask, &mut dense);
        assert_eq!(dense, vec![1.0, 0.0, 0.0, 2.0, 0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn f16_roundtrip() {
        let mask = mask_4of8();
        let dense: Vec<F16> = (0..8).map(|i| F16::from_f32(i as f32)).collect();
        let c = compress_f16(&dense, &mask);
        assert_eq!(c.len(), 4);
        let mut back = vec![F16::ONE; 8];
        expand_f16_into(&c, &mask, &mut back);
        for (i, v) in back.iter().enumerate() {
            if [0usize, 3, 5, 6].contains(&i) {
                assert_eq!(v.to_f32(), i as f32);
            } else {
                assert!(v.is_zero());
            }
        }
    }

    #[test]
    fn empty_and_full_masks() {
        let empty = Mask::new(&[4], vec![]);
        assert!(compress_f32(&[1.0; 4], &empty).is_empty());
        assert_eq!(expand_f32(&[], &empty), vec![0.0; 4]);

        let full = Mask::dense(&[4]);
        let d = vec![1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(compress_f32(&d, &full), d);
        assert_eq!(expand_f32(&d, &full), d);
    }

    #[test]
    fn large_parallel_compress() {
        let n = 300_000;
        let dense: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mask = prune::random_prune(&[n], 0.9, 5);
        let c = compress_f32(&dense, &mask);
        assert_eq!(c.len(), mask.nnz());
        for (j, &i) in mask.indices().iter().enumerate() {
            assert_eq!(c[j], i as f32);
        }
    }
}
