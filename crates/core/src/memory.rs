//! The analytical memory model of paper Sec. III-D, plus byte-exact
//! accounting of the concrete data structures (checked against each other
//! in tests).
//!
//! For a network of `φ` parameters, pruned fraction `p`, `f = 1 − p`,
//! trained with Adam in mixed precision:
//!
//! * `M_default = 20φ` bytes (2 + 2 + 4 + 4 + 8),
//! * `M_SAMO    = 18fφ + 4fφ + 2φ + 2fφ = 24fφ + 2φ` bytes
//!   (compressed states + shared index + dense θ16 + transient downcast
//!   copy),
//! * absolute saving `(24p − 6)φ` bytes, break-even at `p = 0.25`,
//! * 66–78% saved in the typical pruning range `p ∈ [0.8, 0.9]`.

/// Bytes of model state for default dense mixed-precision Adam training.
///
/// ```
/// // GPT-3 2.7B: 20φ ≈ 53 GB of model state before SAMO.
/// let phi = 2_652_000_000u64;
/// assert_eq!(samo::m_default_bytes(phi), 20 * phi);
/// // At 90% sparsity SAMO cuts it by 78%:
/// let saved = 1.0 - samo::m_samo_bytes(phi, 0.9) as f64
///     / samo::m_default_bytes(phi) as f64;
/// assert!((saved - 0.78).abs() < 0.005);
/// ```
pub fn m_default_bytes(phi: u64) -> u64 {
    20 * phi
}

/// Bytes of model state under SAMO at pruned fraction `p` (Eq. 2),
/// including the transient compressed fp16 copy made during the
/// optimizer's downcast step (peak usage).
pub fn m_samo_bytes(phi: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p));
    let f = 1.0 - p;
    (24.0 * f * phi as f64 + 2.0 * phi as f64).round() as u64
}

/// Absolute memory saving `(24p − 6)φ` bytes (Eq. 5). Negative below the
/// break-even sparsity.
pub fn samo_savings_bytes(phi: u64, p: f64) -> i64 {
    m_default_bytes(phi) as i64 - m_samo_bytes(phi, p) as i64
}

/// Fractional saving relative to `M_default` (the Fig. 2 curve).
pub fn samo_savings_fraction(p: f64) -> f64 {
    (24.0 * p - 6.0) / 20.0
}

/// The sparsity below which SAMO *costs* memory: `p = 0.25`.
pub const BREAK_EVEN_SPARSITY: f64 = 0.25;

/// Dense model-state bytes under SGD with momentum (the optimizer the
/// paper uses for the CNNs): `θ16 + ∇θ16 + θ32 + ∇θ32 + 4-byte momentum`
/// = `16φ`. The paper derives the Adam case; "SAMO can be easily
/// extended to work with other optimizers" (Sec. III-D) — this is that
/// extension, with the same structure.
pub fn m_default_sgd_bytes(phi: u64) -> u64 {
    16 * phi
}

/// SAMO model-state bytes under SGD at pruned fraction `p`:
/// `2φ` dense θ16 + `(4 index + 4 θ32 + 2 ∇θ16 + 4 ∇θ32 + 4 momentum +
/// 2 temp)·fφ = 20fφ + 2φ` peak.
pub fn m_samo_sgd_bytes(phi: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p));
    let f = 1.0 - p;
    (20.0 * f * phi as f64 + 2.0 * phi as f64).round() as u64
}

/// Fractional saving of SAMO-with-SGD relative to dense SGD:
/// `(20p − 6)/16`; break-even at `p = 0.3`.
pub fn samo_sgd_savings_fraction(p: f64) -> f64 {
    (20.0 * p - 6.0) / 16.0
}

/// Break-even sparsity for the SGD variant.
pub const BREAK_EVEN_SPARSITY_SGD: f64 = 0.3;

/// Component-wise breakdown of SAMO's model state for one layer/model of
/// `phi` parameters with `nnz` kept, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamoBreakdown {
    /// Dense half-precision parameters: `2φ`.
    pub theta16: u64,
    /// Shared linearized index tensor: `4fφ`.
    pub index: u64,
    /// Compressed fp32 master parameters: `4fφ`.
    pub theta32: u64,
    /// Compressed fp16 gradients: `2fφ`.
    pub grad16: u64,
    /// Compressed fp32 gradients: `4fφ`.
    pub grad32: u64,
    /// Compressed Adam states: `8fφ`.
    pub optimizer: u64,
    /// Transient compressed fp16 copy in the downcast step: `2fφ`.
    pub downcast_temp: u64,
}

impl SamoBreakdown {
    /// Breakdown for `phi` total parameters with `nnz` unpruned, Adam.
    pub fn new(phi: u64, nnz: u64) -> SamoBreakdown {
        SamoBreakdown {
            theta16: 2 * phi,
            index: 4 * nnz,
            theta32: 4 * nnz,
            grad16: 2 * nnz,
            grad32: 4 * nnz,
            optimizer: 8 * nnz,
            downcast_temp: 2 * nnz,
        }
    }

    /// Steady-state bytes (everything except the transient copy).
    pub fn steady_bytes(&self) -> u64 {
        self.theta16 + self.index + self.theta32 + self.grad16 + self.grad32 + self.optimizer
    }

    /// Peak bytes during the optimizer step (Eq. 2's `24fφ + 2φ`).
    pub fn peak_bytes(&self) -> u64 {
        self.steady_bytes() + self.downcast_temp
    }
}

/// One point of the Fig. 2 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Point {
    pub sparsity: f64,
    pub percent_saved: f64,
}

/// Generates the Fig. 2 series: percentage of model-state memory saved by
/// SAMO versus default mixed precision, over a sparsity sweep.
pub fn fig2_series(steps: usize) -> Vec<Fig2Point> {
    (0..=steps)
        .map(|i| {
            let p = i as f64 / steps as f64;
            Fig2Point {
                sparsity: p,
                percent_saved: samo_savings_fraction(p) * 100.0,
            }
        })
        .collect()
}

/// GiB helper for reporting (the paper mixes GB/GiB loosely; we report
/// decimal GB as it matches their 2.7B headline closest).
pub fn bytes_to_gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_20_bytes_per_param() {
        assert_eq!(m_default_bytes(1), 20);
        assert_eq!(m_default_bytes(2_700_000_000), 54_000_000_000);
    }

    #[test]
    fn samo_formula_matches_eq2() {
        // 24fφ + 2φ with f = 0.1, φ = 100 → 240 + 200 = 440.
        assert_eq!(m_samo_bytes(100, 0.9), 440);
        // f = 1 (no pruning): 26φ — SAMO costs 30% extra.
        assert_eq!(m_samo_bytes(100, 0.0), 2600);
    }

    #[test]
    fn break_even_at_quarter_sparsity() {
        assert_eq!(samo_savings_bytes(1000, BREAK_EVEN_SPARSITY), 0);
        assert!(samo_savings_bytes(1000, 0.24) < 0);
        assert!(samo_savings_bytes(1000, 0.26) > 0);
        assert!(samo_savings_fraction(BREAK_EVEN_SPARSITY).abs() < 1e-12);
    }

    #[test]
    fn paper_range_saves_66_to_78_percent() {
        let at_80 = samo_savings_fraction(0.8);
        let at_90 = samo_savings_fraction(0.9);
        assert!((at_80 - 0.66).abs() < 0.005, "p=0.8 saves {at_80}");
        assert!((at_90 - 0.78).abs() < 0.005, "p=0.9 saves {at_90}");
    }

    #[test]
    fn breakdown_sums_to_formula() {
        let phi = 1_000_000u64;
        for &p in &[0.0, 0.25, 0.5, 0.8, 0.9, 0.99] {
            let nnz = ((1.0 - p) * phi as f64).round() as u64;
            let b = SamoBreakdown::new(phi, nnz);
            assert_eq!(b.peak_bytes(), m_samo_bytes(phi, p), "p = {p}");
        }
    }

    #[test]
    fn theta16_dominates_at_extreme_sparsity() {
        let b = SamoBreakdown::new(1000, 10);
        assert!(b.theta16 > b.steady_bytes() - b.theta16);
    }

    #[test]
    fn fig2_series_shape() {
        let series = fig2_series(100);
        assert_eq!(series.len(), 101);
        // Monotonically increasing in sparsity.
        for w in series.windows(2) {
            assert!(w[1].percent_saved > w[0].percent_saved);
        }
        // Ranges from -30% (p=0) to +90% (p=1).
        assert!((series[0].percent_saved + 30.0).abs() < 1e-9);
        assert!((series[100].percent_saved - 90.0).abs() < 1e-9);
    }

    #[test]
    fn sgd_variant_formulas() {
        assert_eq!(m_default_sgd_bytes(100), 1600);
        // f = 0.1: 20·0.1·φ + 2φ = 4φ.
        assert_eq!(m_samo_sgd_bytes(100, 0.9), 400);
        // Break-even: 20·0.3 − 6 = 0.
        assert!(samo_sgd_savings_fraction(BREAK_EVEN_SPARSITY_SGD).abs() < 1e-12);
        assert!(samo_sgd_savings_fraction(0.29) < 0.0);
        assert!(samo_sgd_savings_fraction(0.9) > 0.0);
        // At p = 0.9 SGD saves 75% (vs Adam's 78%).
        assert!((samo_sgd_savings_fraction(0.9) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sgd_variant_matches_live_structures() {
        // Byte-exact check against a real SamoLayerState with SGD, as
        // for the Adam formula. Peak = 2φ + 20·nnz for SGD.
        use crate::state::SamoLayerState;
        use nn::mixed::Optimizer;
        use nn::optim::SgdConfig;
        let phi = 10_000usize;
        let mask = prune::random_prune(&[phi], 0.9, 1);
        let nnz = mask.nnz() as u64;
        let st = SamoLayerState::from_params(
            &vec![0.1; phi],
            mask,
            &Optimizer::Sgd(SgdConfig::default()),
        );
        assert_eq!(st.measured_bytes(true), 2 * phi as u64 + 20 * nnz);
    }

    #[test]
    fn gpt27b_headline_direction() {
        // Paper Sec. I: 2.7B model, p = 0.9 → "74%" reduction
        // (80.16 GB → 20.28 GB measured on 16 GPUs, which includes
        // framework buffers; the pure model-state formula gives 78%).
        let phi = 2_700_000_000u64;
        let default = m_default_bytes(phi);
        let samo = m_samo_bytes(phi, 0.9);
        let reduction = 1.0 - samo as f64 / default as f64;
        assert!(reduction > 0.70 && reduction < 0.80, "reduction {reduction}");
    }
}
