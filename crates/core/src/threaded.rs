//! Thread-per-rank data-parallel SAMO training over the real
//! message-passing collectives runtime in the `comms` crate.
//!
//! Where [`crate::data_parallel::DataParallelSamo`] loops over replicas
//! inside one thread and reduces gradients with the sequential oracle,
//! this runtime gives every rank its own OS thread owning its replica,
//! sharded optimizer state, loss-scaler copy, and a
//! [`comms::Communicator`] endpoint of an in-process mesh. Gradients
//! move through the chunked **ring all-reduce**, and the reduction is
//! started per parameter bucket from inside backward
//! ([`Layer::backward_with_ready`]), so communication overlaps the rest
//! of the backward pass exactly as on a real cluster.
//!
//! # Bitwise equivalence with the in-process trainer
//!
//! The ring computes the same exact-f64-sum mean as
//! [`comms::reference::allreduce_mean_f16`], which is also what the
//! in-process trainer calls — so both runtimes take bitwise-identical
//! optimizer steps from identical seeds, regardless of thread timing
//! (`tests/data_parallel_threaded.rs` asserts this). Loss-scale
//! decisions need no extra collective: every rank scans the *reduced*
//! (identical) gradient bits, so every scaler replica reaches the same
//! verdict independently.
//!
//! # Failure handling
//!
//! Injected link faults ([`ThreadedDataParallelSamo::faults`]) surface
//! as a step `Err` within the communicator timeout — never a hang. A
//! failed group refuses further steps (poisoned) until
//! [`ThreadedDataParallelSamo::restore`] reloads a
//! checkpoint on every rank, bumps the comms epoch (discarding stale
//! in-flight traffic), and barriers the group back together.

use crate::sharded::ShardedSamoLayerState;
use crate::state::{RemapScratch, SamoLayerState};
use crate::trainer::samo_ring_allreduce_bytes;
use comms::{CommsError, Communicator, FaultController, InProcTransport, Transport};
use nn::layer::Layer;
use nn::mixed::{LossScaler, LossScalerState, OptState, Optimizer};
use prune::{Mask, MaskSchedule};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::f16::F16;
use tensor::Tensor;

/// The per-step work a rank thread runs before the collective phase:
/// forward on this rank's batch, loss, and backward seed — returns the
/// **scaled** output gradient `d(scale·loss)/d(output)` for backward.
pub type StepFn<M> = Arc<dyn Fn(usize, &mut M, f32) -> Tensor + Send + Sync>;

/// Per-rank transport statistics, via [`ThreadedDataParallelSamo::comm_stats`].
#[derive(Debug, Clone, Copy)]
pub struct CommStats {
    /// Bytes actually pushed into this rank's links (headers included).
    pub wire_bytes: u64,
    /// Modeled f16 ring volume (`2·(G−1)/G · fφ · 2B` per step).
    pub model_allreduce_bytes: u64,
    /// Messages lost to injected faults on this rank's outgoing links.
    pub msgs_dropped: u64,
}

type InspectFn<M> = Box<dyn FnOnce(&mut M, &Vec<ShardedSamoLayerState>) + Send>;

enum Cmd<M> {
    Step(StepFn<M>),
    SetScaler(LossScaler),
    SetSchedule(MaskSchedule),
    Snapshot,
    Restore(Arc<Vec<u8>>),
    Inspect(InspectFn<M>),
    Shutdown,
}

struct StepOutcome {
    applied: bool,
    finite: bool,
    /// Total unpruned parameters after this step — refreshes the parent
    /// mirror when a dynamic-sparsity remap changes the mask.
    nnz: usize,
}

struct SnapshotData {
    states: Vec<ShardedSamoLayerState>,
    stats: CommStats,
}

enum Resp {
    Step(Result<StepOutcome, CommsError>),
    Snapshot(Box<SnapshotData>),
    Restored(Result<(), String>),
    Ack,
}

/// Everything one rank thread owns. Generic over the transport: the
/// in-process mesh by default, loopback TCP endpoints when built via
/// [`ThreadedDataParallelSamo::with_transports`].
struct Rank<M: Layer, T: Transport> {
    rank: usize,
    model: M,
    states: Vec<ShardedSamoLayerState>,
    opt: Optimizer,
    scaler: LossScaler,
    comm: Communicator<T>,
    schedule: Option<MaskSchedule>,
    poisoned: bool,
    steps_taken: u64,
    steps_skipped: u64,
    /// Rank 0 only: rolling per-rank step-duration stats
    /// `(sum_us, samples)`, fed by the mesh-native telemetry relay.
    rank_dur_stats: Vec<(f64, u64)>,
}

impl<M: Layer, T: Transport> Rank<M, T> {
    fn step(&mut self, f: &StepFn<M>) -> Result<StepOutcome, CommsError> {
        if self.poisoned {
            return Err(CommsError::Poisoned);
        }
        let res = self.step_inner(f);
        self.poisoned |= res.is_err();
        res
    }

    fn step_inner(&mut self, f: &StepFn<M>) -> Result<StepOutcome, CommsError> {
        // Telemetry once per group, from rank 0's thread. The metrics
        // relay below runs on *every* rank when telemetry is on.
        let t_step0 = telemetry::enabled().then(Instant::now);
        let tel = telemetry::enabled() && self.rank == 0;
        let scale_used = self.scaler.scale();
        let dy = f(self.rank, &mut self.model, scale_used);

        let update = self
            .schedule
            .as_ref()
            .is_some_and(|s| s.is_update_step(self.steps_taken + self.steps_skipped));
        let t_comm = if update {
            // Dynamic-sparsity update step: the compressed bucket layout
            // is about to be renegotiated, so skip the overlapped
            // compressed rings — run a plain backward, reduce the
            // *dense* f16 gradient, remap, and install the reduced
            // compressed gradient for the (possibly new) mask.
            let sp = tel.then(|| telemetry::span("samo.dp_threaded.remap"));
            let _ = self.model.backward(&dy);
            self.remap_step()?;
            sp.map(telemetry::SpanGuard::finish)
        } else {
            // Backward with overlapped all-reduce: as each parameter
            // group reports its gradient ready (reverse execution order
            // — identical on every rank, so ring ids line up), compress
            // it and start its ring; pump in-flight rings between
            // groups.
            let sp = tel.then(|| telemetry::span("samo.dp_threaded.backward_allreduce"));
            let mut order: Vec<(u64, usize)> = Vec::with_capacity(self.states.len());
            let mut comm_err: Option<CommsError> = None;
            {
                let states = &mut self.states;
                let comm = &mut self.comm;
                let order = &mut order;
                let comm_err = &mut comm_err;
                self.model.backward_with_ready(&dy, &mut |off, params| {
                    if comm_err.is_some() {
                        return; // finish backward, but stop talking
                    }
                    for (i, p) in params.iter().enumerate() {
                        let pi = off + i;
                        states[pi].compress_grad(p.grad.as_slice());
                        match comm.ring_start(states[pi].grad16.clone()) {
                            Ok(id) => order.push((id, pi)),
                            Err(e) => {
                                *comm_err = Some(e);
                                return;
                            }
                        }
                    }
                    if let Err(e) = comm.ring_pump() {
                        *comm_err = Some(e);
                    }
                });
            }
            if let Some(e) = comm_err {
                return Err(e);
            }
            self.comm.ring_finish()?;
            for (id, mean) in self.comm.take_completed() {
                let pi = order
                    .iter()
                    .find(|(rid, _)| *rid == id)
                    .expect("completed ring was started by this step")
                    .1;
                self.states[pi].grad16.copy_from_slice(&mean);
            }
            sp.map(telemetry::SpanGuard::finish)
        };

        // The reduced bits are identical on every rank, so a local
        // overflow scan and scaler update reach the same verdict
        // everywhere — no extra collective needed.
        let finite = !self
            .states
            .iter()
            .any(|st| st.grad16.iter().any(|g| !g.is_finite()));
        let proceed = self.scaler.check_and_update(finite);
        if !proceed {
            self.model.zero_grad();
            self.steps_skipped += 1;
            if tel {
                self.record_step(false, scale_used, t_comm, None);
            }
            if let Some(t0) = t_step0 {
                self.relay_step_metrics(t0);
            }
            return Ok(StepOutcome {
                applied: false,
                finite,
                nnz: self.states.iter().map(ShardedSamoLayerState::nnz).sum(),
            });
        }

        // Shard-step, then all-gather the updated fp16 shards.
        let sp = tel.then(|| telemetry::span("samo.dp_threaded.shard_step"));
        let world = self.comm.world();
        let inv = 1.0 / scale_used;
        for pi in 0..self.states.len() {
            let shard16 = self.states[pi].optimizer_step_shard(&self.opt, inv);
            let counts: Vec<usize> = comms::segment_bounds(self.states[pi].nnz(), world)
                .iter()
                .map(|(lo, hi)| hi - lo)
                .collect();
            debug_assert_eq!(
                {
                    let (lo, hi) = self.states[pi].shard_range();
                    hi - lo
                },
                counts[self.rank],
                "comms::segment_bounds must match the optimizer shard partition"
            );
            let gathered = self.comm.all_gather_f16(&shard16, &counts)?;
            self.states[pi].install_gathered(&gathered);
        }
        for (p, st) in self.model.params_mut().into_iter().zip(&self.states) {
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        let t_shard = sp.map(telemetry::SpanGuard::finish);
        self.steps_taken += 1;
        if tel {
            self.record_step(true, scale_used, t_comm, t_shard);
        }
        if let Some(t0) = t_step0 {
            self.relay_step_metrics(t0);
        }
        Ok(StepOutcome {
            applied: true,
            finite,
            nnz: self.states.iter().map(ShardedSamoLayerState::nnz).sum(),
        })
    }

    /// The dynamic-sparsity update path, run in place of the overlapped
    /// compressed ring when the installed [`MaskSchedule`] fires.
    ///
    /// Every rank reduces the f16-narrowed *dense* gradient — bitwise
    /// the values a compressed ring would agree on, and, widened, the
    /// canonical grow score ([`crate::SamoTrainer`] ranks regrowth
    /// candidates from exactly the same bits) — then computes the new
    /// mask locally (inputs are identical on every rank, so no mask
    /// broadcast is needed). When a mask changes, the full fp32 state is
    /// reassembled from every rank's `[θ32 | os]` shard segment over
    /// [`Communicator::all_gather_f32`], remapped in place with
    /// [`SamoLayerState::remap_compressed_state`], and re-sharded under
    /// the new bounds — shard boundaries depend on `nnz`, so surviving
    /// values migrate between ranks here. Finally the comms epoch is
    /// bumped in lockstep: the compressed-gradient bucket layout has
    /// been renegotiated and any stale in-flight bucket from the old
    /// layout is dropped by every future receive.
    fn remap_step(&mut self) -> Result<(), CommsError> {
        let t = self.steps_taken + self.steps_skipped;
        let sched = self.schedule.clone().expect("remap_step requires a schedule");
        let world = self.comm.world();
        let mut moved = false;
        let params = self.model.params_mut();
        assert_eq!(params.len(), self.states.len());
        for (pi, p) in params.into_iter().enumerate() {
            let st = &mut self.states[pi];
            let mut dense16: Vec<F16> =
                p.grad.as_slice().iter().map(|&g| F16::from_f32(g)).collect();
            self.comm.allreduce_mean_f16(&mut dense16)?;
            let score: Vec<f32> = dense16.iter().map(|g| g.to_f32()).collect();
            let new_mask = sched.next_mask(t, p.value.as_slice(), &score, st.mask());
            if &new_mask != st.mask() {
                let nnz = st.nnz();
                let bounds = comms::segment_bounds(nnz, world);
                let karrays = match &st.os_shard {
                    OptState::Adam(_) => 3,
                    OptState::Sgd(_) => 2,
                };
                let (lo, hi) = st.shard_range();
                let mut mine: Vec<f32> = Vec::with_capacity((hi - lo) * karrays);
                mine.extend_from_slice(&st.theta32_shard);
                match &st.os_shard {
                    OptState::Adam(a) => {
                        mine.extend_from_slice(&a.m);
                        mine.extend_from_slice(&a.v);
                    }
                    OptState::Sgd(s) => mine.extend_from_slice(&s.velocity),
                }
                let counts: Vec<usize> =
                    bounds.iter().map(|&(l, h)| (h - l) * karrays).collect();
                let gathered = self.comm.all_gather_f32(&mine, &counts)?;
                let mut theta32 = vec![0.0f32; nnz];
                let mut os = OptState::new(&self.opt, nnz);
                let mut off = 0usize;
                for &(l, h) in &bounds {
                    let seg = h - l;
                    theta32[l..h].copy_from_slice(&gathered[off..off + seg]);
                    match &mut os {
                        OptState::Adam(full) => {
                            full.m[l..h].copy_from_slice(&gathered[off + seg..off + 2 * seg]);
                            full.v[l..h]
                                .copy_from_slice(&gathered[off + 2 * seg..off + 3 * seg]);
                        }
                        OptState::Sgd(full) => {
                            full.velocity[l..h]
                                .copy_from_slice(&gathered[off + seg..off + 2 * seg]);
                        }
                    }
                    off += seg * karrays;
                }
                if let (OptState::Adam(full), OptState::Adam(shard)) = (&mut os, &st.os_shard) {
                    full.step = shard.step;
                }
                let mut full = SamoLayerState::from_parts(
                    st.mask().clone(),
                    theta32,
                    st.grad16.clone(),
                    os,
                );
                let mut scratch = RemapScratch::for_layer(&mut full, &self.opt);
                full.remap_compressed_state(new_mask, &mut scratch);
                let ind = full.mask().indices().clone();
                for (g, &ix) in full.grad16.iter_mut().zip(ind.iter()) {
                    *g = dense16[ix as usize];
                }
                *st = ShardedSamoLayerState::from_full_layer(&full, &self.opt, self.rank, world);
                st.write_dense_f32_params_into(p.value.as_mut_slice());
                moved = true;
            } else {
                // Mask unchanged: the dense reduction above already
                // carries the agreed gradient — install its compressed
                // view directly (the per-layer rings were skipped).
                let ind = st.mask().indices().clone();
                for (g, &ix) in st.grad16.iter_mut().zip(ind.iter()) {
                    *g = dense16[ix as usize];
                }
            }
        }
        if moved {
            self.comm.bump_epoch();
            if telemetry::enabled() && self.rank == 0 {
                telemetry::global()
                    .counter("samo.dp_threaded.remap_events")
                    .inc();
            }
        }
        Ok(())
    }

    /// Mesh-native metrics aggregation: every rank ships its step wall
    /// time over the transport to rank 0, which folds rolling per-rank
    /// stats, warns on stragglers (above
    /// [`crate::pipeline::STRAGGLER_FACTOR`] × the step median) and
    /// emits one aggregated `mesh_metrics` line into the metrics jsonl
    /// stream. Delivery is best-effort — a lost snapshot degrades the
    /// report, never the step.
    fn relay_step_metrics(&mut self, t0: Instant) {
        use telemetry::json::Json;
        let dur_us = t0.elapsed().as_secs_f64() * 1e6;
        let step = (self.steps_taken + self.steps_skipped).saturating_sub(1) as u32;
        if self.rank != 0 {
            self.comm
                .send_telemetry(0, self.rank as u64, step, dur_us.to_le_bytes().to_vec());
            return;
        }
        let world = self.comm.world();
        if self.rank_dur_stats.len() != world {
            self.rank_dur_stats = vec![(0.0, 0); world];
        }
        let wait = self.comm.timeout();
        let mut durs: Vec<(usize, f64)> = vec![(0, dur_us)];
        for r in 1..world {
            if let Some(b) = self.comm.recv_telemetry(r, r as u64, step, wait) {
                if let Ok(bytes) = <[u8; 8]>::try_from(&b[..]) {
                    durs.push((r, f64::from_le_bytes(bytes)));
                }
            }
        }
        let mut sorted: Vec<f64> = durs.iter().map(|d| d.1).collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mut per_rank = Vec::with_capacity(durs.len());
        let mut stragglers = Vec::new();
        for &(r, dur) in &durs {
            let cell = &mut self.rank_dur_stats[r];
            cell.0 += dur;
            cell.1 += 1;
            per_rank.push(Json::Obj(vec![
                ("rank".into(), Json::UInt(r as u64)),
                ("dur_us".into(), Json::Num(dur)),
                ("mean_us".into(), Json::Num(cell.0 / cell.1 as f64)),
            ]));
            if durs.len() > 1 && dur > crate::pipeline::STRAGGLER_FACTOR * median {
                telemetry::log_warn!(
                    "data-parallel straggler: rank {r} step {step} took {dur:.0}us ({:.2}x step median)",
                    dur / median
                );
                stragglers.push(Json::Obj(vec![
                    ("rank".into(), Json::UInt(r as u64)),
                    ("ratio".into(), Json::Num(dur / median)),
                ]));
            }
        }
        telemetry::jsonl::emit_line(&Json::Obj(vec![
            ("kind".into(), Json::from("mesh_metrics")),
            ("step".into(), Json::UInt(u64::from(step))),
            ("ranks".into(), Json::UInt(durs.len() as u64)),
            ("median_us".into(), Json::Num(median)),
            ("max_us".into(), Json::Num(sorted[sorted.len() - 1])),
            ("per_rank".into(), Json::Arr(per_rank)),
            ("stragglers".into(), Json::Arr(stragglers)),
        ]));
    }

    /// Reloads the rank's slice of a full checkpoint, then rejoins the
    /// group on a fresh comms epoch.
    fn restore(&mut self, checkpoint: &[u8]) -> Result<(), String> {
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        if layers.len() != self.states.len() {
            return Err(format!(
                "checkpoint has {} layers, group has {}",
                layers.len(),
                self.states.len()
            ));
        }
        for (layer, st) in layers.iter().zip(&self.states) {
            if layer.mask().shape() != st.mask().shape() {
                return Err("checkpoint mask shape mismatch".into());
            }
        }
        let d = self.comm.world();
        for ((st, layer), p) in self
            .states
            .iter_mut()
            .zip(&layers)
            .zip(self.model.params_mut())
        {
            *st = ShardedSamoLayerState::from_full_layer(layer, &self.opt, self.rank, d);
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        if let Some(meta) = meta {
            self.scaler.restore_state(LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        // Discard any stale in-flight traffic and re-synchronize: every
        // rank restores together, so epochs advance in lockstep.
        self.comm.bump_epoch();
        self.poisoned = false;
        if let Err(e) = self.comm.barrier() {
            self.poisoned = true;
            return Err(format!("post-restore barrier failed: {e}"));
        }
        if telemetry::enabled() && self.rank == 0 {
            telemetry::global()
                .counter("samo.dp_threaded.recoveries")
                .inc();
        }
        Ok(())
    }

    fn stats(&self) -> CommStats {
        let t = self.comm.transport();
        CommStats {
            wire_bytes: t.bytes_sent(),
            model_allreduce_bytes: self.comm.model_allreduce_bytes(),
            msgs_dropped: t.msgs_dropped(),
        }
    }

    /// Cold path: rank 0's metric/JSONL bookkeeping for one step.
    fn record_step(
        &self,
        applied: bool,
        scale_used: f32,
        t_comm: Option<f64>,
        t_shard: Option<f64>,
    ) {
        let reg = telemetry::global();
        reg.counter(if applied {
            "samo.dp_threaded.steps_taken"
        } else {
            "samo.dp_threaded.steps_skipped"
        })
        .inc();
        let nnz: usize = self.states.iter().map(|s| s.nnz()).sum();
        let step_bytes = samo_ring_allreduce_bytes(nnz as u64, self.comm.world() as u64);
        reg.counter("samo.dp_threaded.allreduce_bytes").add(step_bytes);
        reg.gauge("samo.dp_threaded.loss_scale")
            .set(f64::from(self.scaler.scale()));
        let bytes: u64 = self.states.iter().map(|s| s.measured_bytes(true)).sum();
        let mut phases = Vec::new();
        if let Some(t) = t_comm {
            phases.push(("backward_allreduce", t));
        }
        if let Some(t) = t_shard {
            phases.push(("shard_step", t));
        }
        telemetry::jsonl::emit_step(&telemetry::StepEvent {
            kind: "samo_dp_threaded",
            step: self.steps_taken + self.steps_skipped - 1,
            applied,
            loss_scale: scale_used,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
            numel: self.states.iter().map(|s| s.numel()).sum::<usize>() as u64,
            nnz: nnz as u64,
            model_state_bytes: bytes,
            formula_state_bytes: None,
            allreduce_bytes: step_bytes,
            phases,
        });
    }
}

fn rank_loop<M: Layer, T: Transport>(mut rk: Rank<M, T>, rx: Receiver<Cmd<M>>, tx: Sender<Resp>) {
    while let Ok(cmd) = rx.recv() {
        let resp = match cmd {
            Cmd::Step(f) => Resp::Step(rk.step(&f)),
            Cmd::SetScaler(s) => {
                rk.scaler = s;
                Resp::Ack
            }
            Cmd::SetSchedule(s) => {
                rk.schedule = Some(s);
                Resp::Ack
            }
            Cmd::Snapshot => Resp::Snapshot(Box::new(SnapshotData {
                states: rk.states.clone(),
                stats: rk.stats(),
            })),
            Cmd::Restore(ck) => Resp::Restored(rk.restore(&ck)),
            Cmd::Inspect(f) => {
                f(&mut rk.model, &rk.states);
                Resp::Ack
            }
            Cmd::Shutdown => {
                let _ = tx.send(Resp::Ack);
                return;
            }
        };
        if tx.send(resp).is_err() {
            return;
        }
    }
}

/// A data-parallel SAMO group where every rank is a real OS thread and
/// gradients move through the `comms` ring all-reduce. Drop-in peer of
/// [`crate::DataParallelSamo`] (same step semantics, same bits).
pub struct ThreadedDataParallelSamo<M: Layer + Send + 'static> {
    world: usize,
    cmd: Vec<Sender<Cmd<M>>>,
    resp: Vec<Receiver<Resp>>,
    handles: Vec<JoinHandle<()>>,
    faults: Arc<FaultController>,
    opt: Optimizer,
    /// Mirror of the rank scalers (updated with the same verdicts), so
    /// `loss_scale()` answers without a round-trip.
    scaler: LossScaler,
    steps_taken: u64,
    steps_skipped: u64,
    allreduce_bytes: u64,
    numel: usize,
    nnz: usize,
}

impl<M: Layer + Send + 'static> ThreadedDataParallelSamo<M> {
    /// Builds the group from identically initialized replicas and one
    /// mask per parameter tensor, and spawns one thread per rank.
    pub fn new(replicas: Vec<M>, masks: Vec<Mask>, opt: Optimizer) -> ThreadedDataParallelSamo<M> {
        Self::with_comm_timeout(replicas, masks, opt, comms::collectives::DEFAULT_TIMEOUT)
    }

    /// Like [`Self::new`] with an explicit collective deadline (tests
    /// with injected faults want a short one).
    pub fn with_comm_timeout(
        replicas: Vec<M>,
        masks: Vec<Mask>,
        opt: Optimizer,
        timeout: Duration,
    ) -> ThreadedDataParallelSamo<M> {
        let faults = Arc::new(FaultController::new());
        let mesh = InProcTransport::mesh_with_faults(replicas.len(), Arc::clone(&faults));
        Self::with_transports(replicas, masks, opt, timeout, mesh, faults)
    }

    /// Builds the group over caller-supplied transport endpoints — the
    /// same rank threads and collectives, but the wires can be anything
    /// implementing [`Transport`] (e.g. loopback
    /// [`comms::TcpTransport::local_mesh`] endpoints, proving the
    /// runtime is transport-agnostic bit for bit). `transports[r]` must
    /// report rank `r`; `faults` should be the controller those
    /// transports were built with so [`Self::faults`] still steers them.
    pub fn with_transports<T: Transport + 'static>(
        mut replicas: Vec<M>,
        masks: Vec<Mask>,
        opt: Optimizer,
        timeout: Duration,
        transports: Vec<T>,
        faults: Arc<FaultController>,
    ) -> ThreadedDataParallelSamo<M> {
        assert!(
            !replicas.is_empty(),
            "ThreadedDataParallelSamo needs at least one replica"
        );
        let d = replicas.len();
        assert_eq!(transports.len(), d, "one transport endpoint per replica");
        {
            let first: Vec<Vec<f32>> = replicas[0]
                .params()
                .iter()
                .map(|p| p.value.as_slice().to_vec())
                .collect();
            for (r, m) in replicas.iter().enumerate().skip(1) {
                for (p, expect) in m.params().iter().zip(&first) {
                    assert_eq!(
                        p.value.as_slice(),
                        &expect[..],
                        "replica {r} differs at init ({})",
                        p.name
                    );
                }
            }
        }
        let scaler = LossScaler::default();
        let mut numel = 0;
        let mut nnz = 0;
        let mut cmd = Vec::with_capacity(d);
        let mut resp = Vec::with_capacity(d);
        let mut handles = Vec::with_capacity(d);
        for (rank, (mut model, t)) in replicas.drain(..).zip(transports).enumerate() {
            assert_eq!(t.rank(), rank, "transport endpoints must arrive in rank order");
            let params = model.params_mut();
            assert_eq!(params.len(), masks.len(), "one mask per parameter");
            let mut states = Vec::with_capacity(params.len());
            for (p, mask) in params.into_iter().zip(&masks) {
                let st = ShardedSamoLayerState::from_params(
                    p.value.as_slice(),
                    mask.clone(),
                    &opt,
                    rank,
                    d,
                );
                st.write_dense_f32_params_into(p.value.as_mut_slice());
                states.push(st);
            }
            if rank == 0 {
                numel = states.iter().map(|s| s.numel()).sum();
                nnz = states.iter().map(|s| s.nnz()).sum();
            }
            let rk = Rank {
                rank,
                model,
                states,
                opt: opt.clone(),
                scaler: scaler.clone(),
                comm: Communicator::new(t).with_timeout(timeout),
                schedule: None,
                poisoned: false,
                steps_taken: 0,
                steps_skipped: 0,
                rank_dur_stats: Vec::new(),
            };
            let (ctx, crx) = channel::<Cmd<M>>();
            let (rtx, rrx) = channel::<Resp>();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("samo-dp-rank{rank}"))
                    .spawn(move || rank_loop(rk, crx, rtx))
                    .expect("spawn rank thread"),
            );
            cmd.push(ctx);
            resp.push(rrx);
        }
        ThreadedDataParallelSamo {
            world: d,
            cmd,
            resp,
            handles,
            faults,
            opt,
            scaler,
            steps_taken: 0,
            steps_skipped: 0,
            allreduce_bytes: 0,
            numel,
            nnz,
        }
    }

    /// Number of rank threads.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Fault injection handle for every link of the mesh.
    pub fn faults(&self) -> &Arc<FaultController> {
        &self.faults
    }

    /// Current loss scale (multiply the loss before backward — the
    /// step closure receives it as its third argument).
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Applied steps.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped on gradient overflow (every rank skips together).
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Cumulative modeled ring all-reduce bytes, same formula as
    /// [`crate::DataParallelSamo::allreduce_bytes`].
    pub fn allreduce_bytes(&self) -> u64 {
        self.allreduce_bytes
    }

    /// Total parameters φ (per replica).
    pub fn numel(&self) -> usize {
        self.numel
    }

    /// Unpruned parameters fφ (per replica).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Replaces the loss scaler on every rank (and the mirror).
    pub fn set_scaler(&mut self, scaler: LossScaler) {
        self.scaler = scaler.clone();
        for tx in &self.cmd {
            tx.send(Cmd::SetScaler(scaler.clone()))
                .expect("rank thread alive");
        }
        for rx in &self.resp {
            let Ok(Resp::Ack) = rx.recv() else {
                panic!("rank thread died during set_scaler");
            };
        }
    }

    /// Installs a dynamic-sparsity [`MaskSchedule`] on every rank. At
    /// each schedule update step the ranks recompute the masks from
    /// identical reduced bits (no broadcast needed), migrate the
    /// sharded compressed state, and renegotiate the compressed-
    /// gradient bucket layout on a fresh comms epoch — the trajectory
    /// stays bitwise identical to a [`crate::SamoTrainer`] driven by
    /// the same schedule on replicated data.
    pub fn set_mask_schedule(&mut self, schedule: MaskSchedule) {
        for tx in &self.cmd {
            tx.send(Cmd::SetSchedule(schedule.clone()))
                .expect("rank thread alive");
        }
        for rx in &self.resp {
            let Ok(Resp::Ack) = rx.recv() else {
                panic!("rank thread died during set_mask_schedule");
            };
        }
    }

    /// Runs one concurrent training step: every rank thread executes
    /// `f(rank, model, loss_scale)` (forward + scaled backward seed),
    /// backward with overlapped ring all-reduce, shard-step, and
    /// all-gather. Returns `Ok(true)` if applied, `Ok(false)` if
    /// skipped on overflow, and `Err` if any rank's collective failed
    /// (the group then needs [`Self::restore`]).
    pub fn step(
        &mut self,
        f: impl Fn(usize, &mut M, f32) -> Tensor + Send + Sync + 'static,
    ) -> Result<bool, String> {
        let f: StepFn<M> = Arc::new(f);
        for tx in &self.cmd {
            tx.send(Cmd::Step(Arc::clone(&f)))
                .map_err(|_| "a rank thread died".to_string())?;
        }
        let mut outcomes = Vec::with_capacity(self.world);
        let mut errors = Vec::new();
        for (rank, rx) in self.resp.iter().enumerate() {
            match rx.recv() {
                Ok(Resp::Step(Ok(o))) => outcomes.push(o),
                Ok(Resp::Step(Err(e))) => errors.push(format!("rank {rank}: {e}")),
                Ok(_) => errors.push(format!("rank {rank}: protocol confusion")),
                Err(_) => errors.push(format!("rank {rank}: thread died")),
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("; "));
        }
        let applied = outcomes[0].applied;
        let finite = outcomes[0].finite;
        debug_assert!(
            outcomes
                .iter()
                .all(|o| o.applied == applied && o.finite == finite && o.nnz == outcomes[0].nnz),
            "ranks must agree on the step verdict and mask"
        );
        // Keep the mirror scaler in lockstep with the rank replicas.
        let _ = self.scaler.check_and_update(finite);
        if applied {
            self.steps_taken += 1;
        } else {
            self.steps_skipped += 1;
        }
        // A dynamic-sparsity remap may have changed the mask this step.
        self.nnz = outcomes[0].nnz;
        self.allreduce_bytes +=
            samo_ring_allreduce_bytes(self.nnz as u64, self.world as u64);
        Ok(applied)
    }

    /// Serializes the group as one rank-count-independent v2 checkpoint
    /// (same format as [`crate::DataParallelSamo::save`]).
    pub fn save(&mut self) -> bytes::Bytes {
        let snaps = self.snapshot_all();
        let nparams = snaps[0].states.len();
        let layers: Vec<crate::state::SamoLayerState> = (0..nparams)
            .map(|pi| {
                let ranks: Vec<&ShardedSamoLayerState> =
                    snaps.iter().map(|s| &s.states[pi]).collect();
                ShardedSamoLayerState::to_full_layer(&ranks, &self.opt)
            })
            .collect();
        let snap = self.scaler.snapshot();
        let meta = crate::serialize::TrainerMeta {
            loss_scale: snap.scale,
            good_steps: snap.good_steps,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
        };
        crate::serialize::save_checkpoint(&layers, &meta)
    }

    /// Restores a checkpoint on every rank and re-synchronizes the
    /// group (fresh comms epoch + barrier). This is the recovery path
    /// after a failed step: heal the faulted links first, then restore.
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), String> {
        let ck = Arc::new(checkpoint.to_vec());
        for tx in &self.cmd {
            tx.send(Cmd::Restore(Arc::clone(&ck)))
                .map_err(|_| "a rank thread died".to_string())?;
        }
        let mut errors = Vec::new();
        for (rank, rx) in self.resp.iter().enumerate() {
            match rx.recv() {
                Ok(Resp::Restored(Ok(()))) => {}
                Ok(Resp::Restored(Err(e))) => errors.push(format!("rank {rank}: {e}")),
                Ok(_) => errors.push(format!("rank {rank}: protocol confusion")),
                Err(_) => errors.push(format!("rank {rank}: thread died")),
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("; "));
        }
        // Re-sync the mirror from the checkpoint's own metadata.
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        self.nnz = layers.iter().map(SamoLayerState::nnz).sum();
        if let Some(meta) = meta {
            self.scaler.restore_state(LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        Ok(())
    }

    /// Per-rank transport statistics (wire bytes, modeled ring bytes,
    /// fault-dropped messages), in rank order.
    pub fn comm_stats(&mut self) -> Vec<CommStats> {
        self.snapshot_all().into_iter().map(|s| s.stats).collect()
    }

    /// Runs `f` on rank `rank`'s thread with exclusive access to its
    /// replica and sharded states, and returns the result — the
    /// inspection hook tests use to compare bits across runtimes.
    pub fn with_rank<R, F>(&mut self, rank: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut M, &[ShardedSamoLayerState]) -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        self.cmd[rank]
            .send(Cmd::Inspect(Box::new(move |model, states| {
                let _ = tx.send(f(model, states));
            })))
            .expect("rank thread alive");
        let out = rx.recv().expect("inspect reply");
        let Ok(Resp::Ack) = self.resp[rank].recv() else {
            panic!("rank thread died during inspect");
        };
        out
    }

    fn snapshot_all(&mut self) -> Vec<SnapshotData> {
        for tx in &self.cmd {
            tx.send(Cmd::Snapshot).expect("rank thread alive");
        }
        self.resp
            .iter()
            .map(|rx| match rx.recv() {
                Ok(Resp::Snapshot(s)) => *s,
                _ => panic!("rank thread died during snapshot"),
            })
            .collect()
    }
}

impl<M: Layer + Send + 'static> Drop for ThreadedDataParallelSamo<M> {
    fn drop(&mut self) {
        for tx in &self.cmd {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
