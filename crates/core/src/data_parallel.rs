//! In-process data-parallel SAMO training with ZeRO-style sharding —
//! the full runtime the paper's Sec. IV-A describes (compressed gradient
//! all-reduce across `G_data` replicas), composed with the sharded
//! optimizer extension of [`crate::sharded`].
//!
//! Each rank holds a full replica of the compute model (dense θ16), the
//! full compressed fp16 gradient, and *its shard* of the fp32/optimizer
//! state. One training step:
//!
//! 1. every rank runs forward/backward on its batch shard (caller),
//! 2. the compressed `∇θ16` are all-reduced (mean) across ranks,
//! 3. every rank applies the optimizer to its own shard,
//! 4. the updated compressed fp16 parameters are all-gathered and
//!    expanded into every replica's dense θ16.

use crate::sharded::ShardedSamoLayerState;
use crate::trainer::{allreduce_mean_f16, samo_ring_allreduce_bytes};
use nn::layer::Layer;
use nn::mixed::{LossScaler, Optimizer};
use prune::Mask;
use tensor::f16::F16;

/// A group of data-parallel ranks training one pruned model with SAMO.
pub struct DataParallelSamo<M: Layer> {
    replicas: Vec<M>,
    /// `[rank][param]` sharded states.
    states: Vec<Vec<ShardedSamoLayerState>>,
    opt: Optimizer,
    scaler: LossScaler,
    steps_taken: u64,
    steps_skipped: u64,
    /// Cumulative compressed-gradient bytes moved through the all-reduce.
    allreduce_bytes: u64,
}

impl<M: Layer> DataParallelSamo<M> {
    /// Builds the group from identically initialized replicas (their
    /// parameters must match — this is checked) and one mask per
    /// parameter tensor.
    pub fn new(mut replicas: Vec<M>, masks: Vec<Mask>, opt: Optimizer) -> DataParallelSamo<M> {
        // A data-parallel group of zero ranks has no defined collective
        // semantics; misconfiguration is a programming error, caught here
        // rather than as an index panic deep inside `step()`.
        assert!(
            !replicas.is_empty(),
            "DataParallelSamo needs at least one replica"
        );
        let d = replicas.len();
        // Check replicas agree before pruning.
        {
            let first: Vec<Vec<f32>> = replicas[0]
                .params()
                .iter()
                .map(|p| p.value.as_slice().to_vec())
                .collect();
            for (r, m) in replicas.iter().enumerate().skip(1) {
                for (p, expect) in m.params().iter().zip(&first) {
                    assert_eq!(
                        p.value.as_slice(),
                        &expect[..],
                        "replica {r} differs at init ({})",
                        p.name
                    );
                }
            }
        }
        let mut states = Vec::with_capacity(d);
        for (rank, model) in replicas.iter_mut().enumerate() {
            let params = model.params_mut();
            assert_eq!(params.len(), masks.len(), "one mask per parameter");
            let mut rank_states = Vec::with_capacity(params.len());
            for (p, mask) in params.into_iter().zip(&masks) {
                let st = ShardedSamoLayerState::from_params(
                    p.value.as_slice(),
                    mask.clone(),
                    &opt,
                    rank,
                    d,
                );
                st.write_dense_f32_params_into(p.value.as_mut_slice());
                rank_states.push(st);
            }
            states.push(rank_states);
        }
        DataParallelSamo {
            replicas,
            states,
            opt,
            scaler: LossScaler::default(),
            steps_taken: 0,
            steps_skipped: 0,
            allreduce_bytes: 0,
        }
    }

    /// Number of data-parallel ranks.
    pub fn world_size(&self) -> usize {
        self.replicas.len()
    }

    /// Replaces the loss scaler (e.g. a lower initial scale for models
    /// whose raw gradients approach the fp16 range).
    pub fn set_scaler(&mut self, scaler: LossScaler) {
        self.scaler = scaler;
    }

    /// Mutable access to rank `r`'s model for forward/backward.
    pub fn replica_mut(&mut self, r: usize) -> &mut M {
        &mut self.replicas[r]
    }

    /// Current loss scale (multiply the loss before backward).
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Applied steps.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped on gradient overflow (every rank skips together).
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Cumulative compressed-gradient bytes this group has moved through
    /// its all-reduce: the ring formula `2·(G−1)/G · fφ` fp16 values per
    /// step (skipped steps included, since the collective runs before
    /// the overflow check). At G = 2 this equals the old flat `2·fφ`.
    pub fn allreduce_bytes(&self) -> u64 {
        self.allreduce_bytes
    }

    /// Total parameters φ (per replica).
    pub fn numel(&self) -> usize {
        self.states[0].iter().map(|s| s.numel()).sum()
    }

    /// Unpruned parameters fφ (per replica).
    pub fn nnz(&self) -> usize {
        self.states[0].iter().map(|s| s.nnz()).sum()
    }

    /// Per-rank model-state bytes (all ranks hold the same amount ±1
    /// shard-remainder element).
    pub fn bytes_per_rank(&self) -> u64 {
        self.states[0].iter().map(|s| s.measured_bytes(true)).sum()
    }

    /// Completes a step after every replica has run forward/backward
    /// with the scaled loss: compress → all-reduce → shard-step →
    /// all-gather → expand. Returns `false` if skipped on overflow.
    pub fn step(&mut self) -> bool {
        let tel = telemetry::enabled();
        let d = self.replicas.len();
        let nparams = self.states[0].len();

        // 1. Compress each rank's gradients.
        let sp = tel.then(|| telemetry::span("samo.dp.compress"));
        for (model, rank_states) in self.replicas.iter_mut().zip(&mut self.states) {
            for (p, st) in model.params_mut().into_iter().zip(rank_states.iter_mut()) {
                st.compress_grad(p.grad.as_slice());
            }
        }
        let t_compress = sp.map(telemetry::SpanGuard::finish);

        // 2. All-reduce (mean) the compressed fp16 gradients per param.
        let sp = tel.then(|| telemetry::span("samo.dp.allreduce"));
        for pi in 0..nparams {
            let mut bufs: Vec<&mut [F16]> = Vec::with_capacity(d);
            // Split-borrow across ranks.
            let mut rest: &mut [Vec<ShardedSamoLayerState>] = &mut self.states;
            while let Some((head, tail)) = rest.split_first_mut() {
                bufs.push(&mut head[pi].grad16);
                rest = tail;
            }
            allreduce_mean_f16(&mut bufs)
                .expect("replica gradient buffers share one layout by construction");
        }
        let t_allreduce = sp.map(telemetry::SpanGuard::finish);
        // The collective has run by now whether or not the step applies.
        // Accounted with the bandwidth-optimal ring formula
        // `2·(G−1)/G · fφ` values — what a real ring all-reduce moves
        // per rank (and what `comms` implements), not the flat `fφ`
        // payload model.
        let step_allreduce_bytes =
            samo_ring_allreduce_bytes(self.nnz() as u64, self.replicas.len() as u64);
        self.allreduce_bytes += step_allreduce_bytes;

        // Overflow check on the reduced gradients.
        let finite = !self
            .states
            .iter()
            .flat_map(|rs| rs.iter())
            .any(|st| st.grad16.iter().any(|g| !g.is_finite()));
        let scale = self.scaler.scale();
        let proceed = self.scaler.check_and_update(finite);
        if !proceed {
            for model in &mut self.replicas {
                model.zero_grad();
            }
            self.steps_skipped += 1;
            if tel {
                self.record_step(false, scale, step_allreduce_bytes, t_compress, t_allreduce, None);
            }
            return false;
        }

        // 3–4. Each rank steps its shard; gather shards per parameter.
        let sp = tel.then(|| telemetry::span("samo.dp.shard_step"));
        for pi in 0..nparams {
            let nnz = self.states[0][pi].grad16.len();
            let mut gathered = vec![F16::ZERO; nnz];
            for rank_states in &mut self.states {
                let st = &mut rank_states[pi];
                let shard16 = st.optimizer_step_shard(&self.opt, 1.0 / scale);
                let (lo, hi) = st.shard_range();
                gathered[lo..hi].copy_from_slice(&shard16);
            }
            for rank_states in &mut self.states {
                rank_states[pi].install_gathered(&gathered);
            }
        }

        // 5. Write the updated dense parameters into every replica.
        for (model, rank_states) in self.replicas.iter_mut().zip(&self.states) {
            for (p, st) in model.params_mut().into_iter().zip(rank_states) {
                st.write_dense_f32_params_into(p.value.as_mut_slice());
                p.zero_grad();
            }
        }
        let t_shard_step = sp.map(telemetry::SpanGuard::finish);
        self.steps_taken += 1;
        if tel {
            self.record_step(
                true,
                scale,
                step_allreduce_bytes,
                t_compress,
                t_allreduce,
                t_shard_step,
            );
        }
        true
    }

    /// Serializes the group's training state as one v2 checkpoint: the
    /// per-rank shards are gathered back into full compressed layers (a
    /// rank-count-independent layout — a checkpoint written at `d = 4`
    /// restores into any world size), plus the loss-scaler state and
    /// step counters.
    pub fn save(&self) -> bytes::Bytes {
        let layers = self.gather_full_layers();
        let snap = self.scaler.snapshot();
        let meta = crate::serialize::TrainerMeta {
            loss_scale: snap.scale,
            good_steps: snap.good_steps,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
        };
        crate::serialize::save_checkpoint(&layers, &meta)
    }

    fn gather_full_layers(&self) -> Vec<crate::state::SamoLayerState> {
        (0..self.states[0].len())
            .map(|pi| {
                let ranks: Vec<&ShardedSamoLayerState> =
                    self.states.iter().map(|rs| &rs[pi]).collect();
                ShardedSamoLayerState::to_full_layer(&ranks, &self.opt)
            })
            .collect()
    }

    /// Restores a checkpoint produced by [`Self::save`] into the whole
    /// group: every rank's shards are re-sliced from the full layers and
    /// every replica's dense parameters rewritten, so the group resumes
    /// bitwise identically. The group's structure (parameter count, mask
    /// shapes) must match what was saved; the world size may differ.
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), String> {
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        self.check_structure(&layers)?;
        let d = self.replicas.len();
        for (rank, (model, rank_states)) in
            self.replicas.iter_mut().zip(&mut self.states).enumerate()
        {
            for ((st, layer), p) in rank_states
                .iter_mut()
                .zip(&layers)
                .zip(model.params_mut())
            {
                *st = ShardedSamoLayerState::from_full_layer(layer, &self.opt, rank, d);
                st.write_dense_f32_params_into(p.value.as_mut_slice());
                p.zero_grad();
            }
        }
        if let Some(meta) = meta {
            self.scaler.restore_state(nn::mixed::LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        if telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.recoveries").inc();
        }
        Ok(())
    }

    /// Reconstructs a single failed rank from a checkpoint taken at the
    /// group's current step, leaving the surviving ranks untouched. The
    /// rebuilt rank is bitwise identical to one that never failed (same
    /// θ16/∇θ16/θ32-shard/optimizer shard), which
    /// [`Self::rank_failure_drill`] verifies.
    pub fn restore_rank(&mut self, rank: usize, checkpoint: &[u8]) -> Result<(), String> {
        if rank >= self.replicas.len() {
            return Err(format!(
                "rank {rank} out of range for world size {}",
                self.replicas.len()
            ));
        }
        let (layers, _) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        self.check_structure(&layers)?;
        let d = self.replicas.len();
        let model = &mut self.replicas[rank];
        let rank_states = &mut self.states[rank];
        for ((st, layer), p) in rank_states
            .iter_mut()
            .zip(&layers)
            .zip(model.params_mut())
        {
            *st = ShardedSamoLayerState::from_full_layer(layer, &self.opt, rank, d);
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        if telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.rank_recoveries").inc();
        }
        Ok(())
    }

    fn check_structure(&self, layers: &[crate::state::SamoLayerState]) -> Result<(), String> {
        if layers.len() != self.states[0].len() {
            return Err(format!(
                "checkpoint has {} layers, group has {}",
                layers.len(),
                self.states[0].len()
            ));
        }
        for (layer, st) in layers.iter().zip(&self.states[0]) {
            if layer.mask().shape() != st.mask().shape() {
                return Err("checkpoint mask shape mismatch".into());
            }
        }
        Ok(())
    }

    /// Fault drill: checkpoints the group, destroys rank `rank`'s state
    /// (scrambling its parameters and shards, as a lost node would),
    /// reconstructs it from the checkpoint, and verifies bitwise
    /// resynchronization against a surviving rank. Returns the
    /// checkpoint size in bytes on success; any mismatch is an `Err`
    /// naming the first diverging tensor.
    pub fn rank_failure_drill(&mut self, rank: usize) -> Result<usize, String> {
        if self.replicas.len() < 2 {
            return Err("drill needs at least two ranks (one must survive)".into());
        }
        if rank >= self.replicas.len() {
            return Err(format!(
                "rank {rank} out of range for world size {}",
                self.replicas.len()
            ));
        }
        let checkpoint = self.save();
        telemetry::log_info!(
            "rank_failure_drill: dropping rank {rank}, checkpoint {} bytes",
            checkpoint.len()
        );

        // Simulate the failure: wipe the rank's model and shards.
        for p in self.replicas[rank].params_mut() {
            p.value.as_mut_slice().fill(f32::NAN);
            p.zero_grad();
        }
        for st in &mut self.states[rank] {
            st.theta16.fill(tensor::f16::F16::from_f32(f32::NAN));
            st.grad16.fill(tensor::f16::F16::from_f32(f32::NAN));
            st.theta32_shard.fill(f32::NAN);
        }

        self.restore_rank(rank, &checkpoint)?;

        // Prove bitwise resynchronization against a surviving rank.
        let witness = if rank == 0 { 1 } else { 0 };
        for (pi, (a, b)) in self.states[rank]
            .iter()
            .zip(&self.states[witness])
            .enumerate()
        {
            if a.theta16 != b.theta16 {
                return Err(format!("param {pi}: θ16 diverged after rank recovery"));
            }
            if a.grad16 != b.grad16 {
                return Err(format!("param {pi}: ∇θ16 diverged after rank recovery"));
            }
        }
        let restored: Vec<Vec<f32>> = self.replicas[rank]
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        for (p, want) in self.replicas[witness].params().iter().zip(&restored) {
            if p.value.as_slice() != &want[..] {
                return Err(format!("parameter {}: replica diverged after rank recovery", p.name));
            }
        }
        Ok(checkpoint.len())
    }

    /// Cold path: metric/JSONL bookkeeping for one completed `step()`.
    fn record_step(
        &self,
        applied: bool,
        scale_used: f32,
        step_allreduce_bytes: u64,
        t_compress: Option<f64>,
        t_allreduce: Option<f64>,
        t_shard_step: Option<f64>,
    ) {
        let reg = telemetry::global();
        reg.counter(if applied {
            "samo.dp.steps_taken"
        } else {
            "samo.dp.steps_skipped"
        })
        .inc();
        reg.counter("samo.dp.allreduce_bytes")
            .add(step_allreduce_bytes);
        reg.gauge("samo.dp.loss_scale")
            .set(f64::from(self.scaler.scale()));
        let bytes = self.bytes_per_rank();
        reg.gauge("samo.dp.bytes_per_rank").set_max(bytes as f64);
        let mut phases = Vec::new();
        if let Some(t) = t_compress {
            phases.push(("compress", t));
        }
        if let Some(t) = t_allreduce {
            phases.push(("allreduce", t));
        }
        if let Some(t) = t_shard_step {
            phases.push(("shard_step", t));
        }
        telemetry::jsonl::emit_step(&telemetry::StepEvent {
            kind: "samo_dp",
            step: self.steps_taken + self.steps_skipped - 1,
            applied,
            loss_scale: scale_used,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
            numel: self.numel() as u64,
            nnz: self.nnz() as u64,
            model_state_bytes: bytes,
            // Sharded per-rank state has per-rank remainders; the paper's
            // closed form does not apply verbatim, so it is omitted.
            formula_state_bytes: None,
            allreduce_bytes: step_allreduce_bytes,
            phases,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::layer::Sequential;
    use nn::linear::Linear;
    use nn::loss::mse;
    use nn::optim::AdamConfig;
    use tensor::Tensor;

    fn model(seed: u64) -> Sequential {
        Sequential::new()
            .push(Linear::new(6, 12, true, seed))
            .push(nn::activations::Gelu::new())
            .push(Linear::new(12, 6, true, seed + 1))
    }

    fn masks(m: &Sequential) -> Vec<Mask> {
        m.params()
            .iter()
            .map(|p| {
                if p.value.shape().len() >= 2 {
                    prune::magnitude_prune(p.value.as_slice(), p.value.shape(), 0.7)
                } else {
                    Mask::dense(p.value.shape())
                }
            })
            .collect()
    }

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 1e-2,
            ..Default::default()
        })
    }

    #[test]
    fn replicas_stay_bitwise_synchronized() {
        let masks = masks(&model(5));
        let mut dp = DataParallelSamo::new(vec![model(5), model(5), model(5)], masks, adam());
        dp.set_scaler(LossScaler::new(256.0));
        for step in 0..6 {
            for r in 0..dp.world_size() {
                let scale = dp.loss_scale();
                let x = Tensor::randn(&[4, 6], 1.0, 100 + (step * 3 + r) as u64);
                let t = Tensor::randn(&[4, 6], 1.0, 200 + (step * 3 + r) as u64);
                let m = dp.replica_mut(r);
                let y = m.forward(&x);
                let (_, mut dy) = mse(&y, &t);
                tensor::ops::scale(scale, dy.as_mut_slice());
                m.backward(&dy);
            }
            assert!(dp.step());
            // All replicas bitwise identical after the step.
            let reference: Vec<Vec<f32>> = dp.replicas[0]
                .params()
                .iter()
                .map(|p| p.value.as_slice().to_vec())
                .collect();
            for r in 1..dp.world_size() {
                for (p, want) in dp.replicas[r].params().iter().zip(&reference) {
                    assert_eq!(p.value.as_slice(), &want[..], "step {step} rank {r}");
                }
            }
        }
        assert_eq!(dp.steps_taken(), 6);
    }

    #[test]
    fn sharding_reduces_per_rank_memory() {
        let masks1 = masks(&model(7));
        let dp1 = DataParallelSamo::new(vec![model(7)], masks1, adam());
        let masks4 = masks(&model(7));
        let dp4 =
            DataParallelSamo::new(vec![model(7), model(7), model(7), model(7)], masks4, adam());
        assert!(
            dp4.bytes_per_rank() < dp1.bytes_per_rank(),
            "{} vs {}",
            dp4.bytes_per_rank(),
            dp1.bytes_per_rank()
        );
    }

    #[test]
    fn matches_single_rank_samo_trainer() {
        // d = 1 sharded data-parallel ≡ the plain SamoTrainer, bitwise.
        use crate::trainer::SamoTrainer;
        let masks_dp = masks(&model(9));
        let mut dp = DataParallelSamo::new(vec![model(9)], masks_dp, adam());
        dp.set_scaler(LossScaler::new(256.0));
        let mut plain_model = model(9);
        let masks_plain = masks(&model(9));
        let mut plain = SamoTrainer::new(&mut plain_model, masks_plain, adam());
        plain.scaler = LossScaler::new(256.0);

        for step in 0..5 {
            let x = Tensor::randn(&[4, 6], 1.0, 300 + step);
            let t = Tensor::randn(&[4, 6], 1.0, 400 + step);

            let scale = dp.loss_scale();
            let m = dp.replica_mut(0);
            let y = m.forward(&x);
            let (_, mut dy) = mse(&y, &t);
            tensor::ops::scale(scale, dy.as_mut_slice());
            m.backward(&dy);
            dp.step();

            let y = plain_model.forward(&x);
            let (_, mut dy) = mse(&y, &t);
            tensor::ops::scale(plain.loss_scale(), dy.as_mut_slice());
            plain_model.backward(&dy);
            plain.step(&mut plain_model);

            for (a, b) in dp.replicas[0].params().iter().zip(plain_model.params()) {
                assert_eq!(a.value.as_slice(), b.value.as_slice(), "step {step}");
            }
        }
    }

    #[test]
    fn overflow_skips_and_keeps_ranks_aligned() {
        let masks2 = masks(&model(11));
        let mut dp = DataParallelSamo::new(vec![model(11), model(11)], masks2, adam());
        // Poison one rank's gradient; the reduced gradient overflows and
        // every rank must skip.
        let before: Vec<Vec<f32>> = dp.replicas[0]
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        dp.replica_mut(0).params_mut()[0]
            .grad
            .as_mut_slice()
            .fill(f32::INFINITY);
        assert!(!dp.step());
        for (p, want) in dp.replicas[1].params().iter().zip(&before) {
            assert_eq!(p.value.as_slice(), &want[..]);
        }
        assert_eq!(dp.steps_taken(), 0);
        assert_eq!(dp.steps_skipped(), 1);
        // The all-reduce ran before the overflow was detected, so its
        // bytes still count: 2·fφ for one step.
        assert_eq!(dp.allreduce_bytes(), 2 * dp.nnz() as u64);
    }

    fn drive_step(dp: &mut DataParallelSamo<Sequential>, step: usize) {
        for r in 0..dp.world_size() {
            let scale = dp.loss_scale();
            let x = Tensor::randn(&[4, 6], 1.0, 700 + (step * 8 + r) as u64);
            let t = Tensor::randn(&[4, 6], 1.0, 800 + (step * 8 + r) as u64);
            let m = dp.replica_mut(r);
            let y = m.forward(&x);
            let (_, mut dy) = mse(&y, &t);
            tensor::ops::scale(scale, dy.as_mut_slice());
            m.backward(&dy);
        }
        dp.step();
    }

    #[test]
    fn group_save_restore_resumes_identically() {
        let build = || {
            let masks3 = masks(&model(17));
            let mut dp =
                DataParallelSamo::new(vec![model(17), model(17), model(17)], masks3, adam());
            dp.set_scaler(LossScaler::new(256.0));
            dp
        };
        let mut live = build();
        for s in 0..3 {
            drive_step(&mut live, s);
        }
        let ckpt = live.save();

        // Continue live.
        for s in 3..6 {
            drive_step(&mut live, s);
        }

        // Restore into a fresh group and replay the same steps.
        let mut resumed = build();
        resumed.restore(&ckpt).unwrap();
        assert_eq!(resumed.steps_taken(), 3);
        assert_eq!(resumed.loss_scale(), 256.0);
        for s in 3..6 {
            drive_step(&mut resumed, s);
        }
        for r in 0..live.world_size() {
            for (a, b) in live.replicas[r].params().iter().zip(resumed.replicas[r].params()) {
                assert_eq!(a.value.as_slice(), b.value.as_slice(), "rank {r} {}", a.name);
            }
        }
    }

    #[test]
    fn checkpoint_restores_across_world_sizes() {
        // A d=3 checkpoint restores into a d=2 group (rank-count
        // independent layout) and continues identically to a single-rank
        // restore of the same bytes.
        let masks3 = masks(&model(19));
        let mut dp3 = DataParallelSamo::new(vec![model(19), model(19), model(19)], masks3, adam());
        dp3.set_scaler(LossScaler::new(128.0));
        for s in 0..2 {
            drive_step(&mut dp3, s);
        }
        let ckpt = dp3.save();

        let masks2 = masks(&model(19));
        let mut dp2 = DataParallelSamo::new(vec![model(19), model(19)], masks2, adam());
        dp2.restore(&ckpt).unwrap();
        assert_eq!(dp2.steps_taken(), dp3.steps_taken());
        for (a, b) in dp2.replicas[0].params().iter().zip(dp3.replicas[0].params()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice(), "{}", a.name);
        }
    }

    #[test]
    fn rank_failure_drill_resynchronizes_bitwise() {
        let masks3 = masks(&model(23));
        let mut dp = DataParallelSamo::new(vec![model(23), model(23), model(23)], masks3, adam());
        dp.set_scaler(LossScaler::new(256.0));
        for s in 0..3 {
            drive_step(&mut dp, s);
        }
        let bytes = dp.rank_failure_drill(1).unwrap();
        assert!(bytes > 0);
        // The group keeps training in lockstep after the recovery.
        for s in 3..6 {
            drive_step(&mut dp, s);
        }
        let reference: Vec<Vec<f32>> = dp.replicas[0]
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        for r in 1..dp.world_size() {
            for (p, want) in dp.replicas[r].params().iter().zip(&reference) {
                assert_eq!(p.value.as_slice(), &want[..], "rank {r} {}", p.name);
            }
        }
        assert_eq!(dp.steps_taken(), 6);
    }

    #[test]
    fn drill_rejects_degenerate_groups() {
        let masks1 = masks(&model(27));
        let mut dp = DataParallelSamo::new(vec![model(27)], masks1, adam());
        assert!(dp.rank_failure_drill(0).is_err(), "needs a surviving rank");
        let ckpt = dp.save();
        let err = dp.restore_rank(5, &ckpt).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn restore_rejects_corrupt_checkpoint() {
        let masks2 = masks(&model(29));
        let mut dp = DataParallelSamo::new(vec![model(29), model(29)], masks2, adam());
        let mut bad = dp.save().to_vec();
        let n = bad.len();
        bad[n / 2] ^= 0x10;
        assert!(dp.restore(&bad).is_err());
    }

    #[test]
    fn allreduce_bytes_accumulate_per_step() {
        let masks2 = masks(&model(13));
        let mut dp = DataParallelSamo::new(vec![model(13), model(13)], masks2, adam());
        dp.set_scaler(LossScaler::new(128.0));
        assert_eq!(dp.allreduce_bytes(), 0);
        let per_step = 2 * dp.nnz() as u64;
        for step in 0..3 {
            for r in 0..dp.world_size() {
                let scale = dp.loss_scale();
                let x = Tensor::randn(&[4, 6], 1.0, 500 + (step * 2 + r) as u64);
                let t = Tensor::randn(&[4, 6], 1.0, 600 + (step * 2 + r) as u64);
                let m = dp.replica_mut(r);
                let y = m.forward(&x);
                let (_, mut dy) = mse(&y, &t);
                tensor::ops::scale(scale, dy.as_mut_slice());
                m.backward(&dy);
            }
            dp.step();
        }
        assert_eq!(dp.allreduce_bytes(), 3 * per_step);
        assert_eq!(dp.steps_taken() + dp.steps_skipped(), 3);
        // φ and fφ agree with the underlying masks.
        assert!(dp.nnz() < dp.numel());
    }
}
