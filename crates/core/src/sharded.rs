//! ZeRO-style sharding of SAMO's compressed state — an extension beyond
//! the paper.
//!
//! The paper compares against DeepSpeed's ZeRO optimizer (Rajbhandari et
//! al.), which shards optimizer state across data-parallel ranks, but
//! never composes the two ideas. They compose naturally: SAMO compresses
//! the model state to `24fφ + 2φ` bytes; ZeRO-1 then divides the
//! *compressed* optimizer-side tensors (`θ32`, `∇θ32`, `os`) across the
//! `d` data-parallel ranks. Each rank holds
//!
//! * the full dense `θ16` (needed for forward/backward): `2φ`,
//! * the full shared index and fp16 gradient: `(4 + 2)fφ`,
//! * its shard of `θ32 + ∇θ32 + os (+ downcast temp)`: `(4+4+8+2)fφ/d`,
//!
//! i.e. `M = 2φ + 6fφ + 18fφ/d`, recovering SAMO exactly at `d = 1` and
//! approaching `2φ + 6fφ` for large `d` — for GPT-3 2.7B at `p = 0.9`
//! and `d = 64` this is 6.9 GB vs SAMO's 11.7 GB vs dense 53 GB.
//!
//! The training step per rank: all ranks hold identical `∇θ16`
//! (compressed) after the gradient all-reduce; each rank runs the SAMO
//! optimizer phases on *its shard only*, then the updated compressed
//! fp16 parameters are all-gathered and expanded into the dense `θ16`.

use crate::compressed::{compress_f32, expand_f16_into};
use nn::mixed::{OptState, Optimizer};
use prune::Mask;
use tensor::f16::F16;

/// Per-rank SAMO state with ZeRO-1-style sharded optimizer tensors.
#[derive(Clone, Debug)]
pub struct ShardedSamoLayerState {
    mask: Mask,
    shard_id: usize,
    num_shards: usize,
    /// This rank's contiguous range within the compressed value space.
    lo: usize,
    hi: usize,
    /// Dense fp16 parameters (full copy, every rank).
    pub theta16: Vec<F16>,
    /// Full compressed fp16 gradient (input to the all-reduce).
    pub grad16: Vec<F16>,
    /// Shard of the fp32 master parameters.
    pub theta32_shard: Vec<f32>,
    /// Shard of the fp32 gradients.
    pub grad32_shard: Vec<f32>,
    /// Shard of the optimizer state.
    pub os_shard: OptState,
}

/// Contiguous shard bounds of rank `r` of `d` over `n` elements.
fn shard_bounds(n: usize, r: usize, d: usize) -> (usize, usize) {
    let base = n / d;
    let extra = n % d;
    let lo = r * base + r.min(extra);
    let len = base + usize::from(r < extra);
    (lo, lo + len)
}

impl ShardedSamoLayerState {
    /// Builds rank `shard_id`'s state (of `num_shards`) from dense
    /// parameter values and the pruning mask.
    pub fn from_params(
        values: &[f32],
        mask: Mask,
        opt: &Optimizer,
        shard_id: usize,
        num_shards: usize,
    ) -> ShardedSamoLayerState {
        assert!(num_shards >= 1 && shard_id < num_shards);
        assert_eq!(values.len(), mask.numel());
        let compressed = compress_f32(values, &mask);
        let (lo, hi) = shard_bounds(compressed.len(), shard_id, num_shards);
        // θ16 starts as the fp16 rounding of the full compressed params.
        let temp16: Vec<F16> = compressed.iter().map(|&v| F16::from_f32(v)).collect();
        let mut theta16 = vec![F16::ZERO; values.len()];
        expand_f16_into(&temp16, &mask, &mut theta16);
        let nnz = mask.nnz();
        ShardedSamoLayerState {
            theta32_shard: compressed[lo..hi].to_vec(),
            grad32_shard: vec![0.0; hi - lo],
            os_shard: OptState::new(opt, hi - lo),
            grad16: vec![F16::ZERO; nnz],
            theta16,
            mask,
            shard_id,
            num_shards,
            lo,
            hi,
        }
    }

    /// Rebuilds rank `shard_id`'s state from a *full* (unsharded)
    /// compressed layer state, e.g. one loaded from a checkpoint — the
    /// recovery path when a rank is lost and must be reconstructed.
    /// Exactly inverts [`Self::to_full_layer`].
    pub fn from_full_layer(
        full: &crate::state::SamoLayerState,
        opt: &Optimizer,
        shard_id: usize,
        num_shards: usize,
    ) -> ShardedSamoLayerState {
        assert!(num_shards >= 1 && shard_id < num_shards);
        let mask = full.mask().clone();
        let nnz = mask.nnz();
        assert_eq!(full.theta32.len(), nnz);
        let (lo, hi) = shard_bounds(nnz, shard_id, num_shards);
        // θ16 is reconstructed the same way install_gathered produces it
        // on the surviving ranks: narrow θ32, expand — so a rebuilt rank
        // is bitwise identical to one that never failed.
        let temp16: Vec<F16> = full.theta32.iter().map(|&v| F16::from_f32(v)).collect();
        let mut theta16 = vec![F16::ZERO; mask.numel()];
        expand_f16_into(&temp16, &mask, &mut theta16);
        let os_shard = match (&full.os, opt) {
            (OptState::Adam(st), Optimizer::Adam(_)) => OptState::Adam(nn::optim::AdamState {
                m: st.m[lo..hi].to_vec(),
                v: st.v[lo..hi].to_vec(),
                step: st.step,
            }),
            (OptState::Sgd(st), Optimizer::Sgd(_)) => OptState::Sgd(nn::optim::SgdState {
                velocity: st.velocity[lo..hi].to_vec(),
            }),
            _ => panic!("optimizer state/config mismatch"),
        };
        ShardedSamoLayerState {
            theta32_shard: full.theta32[lo..hi].to_vec(),
            grad32_shard: vec![0.0; hi - lo],
            os_shard,
            grad16: full.grad16.clone(),
            theta16,
            mask,
            shard_id,
            num_shards,
            lo,
            hi,
        }
    }

    /// Reassembles the full (unsharded) compressed layer state for one
    /// parameter from every rank's shard, for checkpointing: the shards
    /// are contiguous and partition the compressed space, so
    /// concatenation recovers exactly the state an unsharded
    /// [`crate::state::SamoLayerState`] would hold.
    ///
    /// `ranks` must hold one state per rank, in rank order, all for the
    /// same parameter tensor.
    pub fn to_full_layer(
        ranks: &[&ShardedSamoLayerState],
        opt: &Optimizer,
    ) -> crate::state::SamoLayerState {
        assert!(!ranks.is_empty(), "need at least one shard");
        let first = ranks[0];
        assert_eq!(ranks.len(), first.num_shards, "one state per rank");
        let nnz = first.mask.nnz();
        let mut theta32 = vec![0.0f32; nnz];
        let mut os = OptState::new(opt, nnz);
        for (r, st) in ranks.iter().enumerate() {
            assert_eq!(st.shard_id, r, "ranks must be in order");
            assert_eq!(st.mask, first.mask, "shards of different tensors");
            let (lo, hi) = st.shard_range();
            theta32[lo..hi].copy_from_slice(&st.theta32_shard);
            match (&mut os, &st.os_shard) {
                (OptState::Adam(full), OptState::Adam(shard)) => {
                    full.m[lo..hi].copy_from_slice(&shard.m);
                    full.v[lo..hi].copy_from_slice(&shard.v);
                    full.step = shard.step;
                }
                (OptState::Sgd(full), OptState::Sgd(shard)) => {
                    full.velocity[lo..hi].copy_from_slice(&shard.velocity);
                }
                _ => panic!("optimizer state/config mismatch"),
            }
        }
        crate::state::SamoLayerState::from_parts(
            first.mask.clone(),
            theta32,
            first.grad16.clone(),
            os,
        )
    }

    /// This rank's shard bounds within the compressed space.
    pub fn shard_range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Total parameters φ in this tensor.
    pub fn numel(&self) -> usize {
        self.mask.numel()
    }

    /// Unpruned parameters fφ in this tensor.
    pub fn nnz(&self) -> usize {
        self.mask.nnz()
    }

    /// The pruning mask (shared structure across all ranks).
    pub fn mask(&self) -> &Mask {
        &self.mask
    }

    /// Rank index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Total number of ranks the state is sharded across.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Compresses a dense (loss-scaled) fp32 gradient into `∇θ16`.
    pub fn compress_grad(&mut self, dense_scaled_grad: &[f32]) {
        assert_eq!(dense_scaled_grad.len(), self.mask.numel());
        for (g16, &i) in self.grad16.iter_mut().zip(self.mask.indices().iter()) {
            *g16 = F16::from_f32(dense_scaled_grad[i as usize]);
        }
    }

    /// Runs the optimizer on this rank's shard and returns the updated
    /// *compressed fp16* shard — the payload of the parameter
    /// all-gather.
    pub fn optimizer_step_shard(&mut self, opt: &Optimizer, inv_loss_scale: f32) -> Vec<F16> {
        for (g32, g16) in self
            .grad32_shard
            .iter_mut()
            .zip(&self.grad16[self.lo..self.hi])
        {
            *g32 = g16.to_f32() * inv_loss_scale;
        }
        self.os_shard
            .step(opt, &mut self.theta32_shard, &self.grad32_shard);
        self.theta32_shard.iter().map(|&v| F16::from_f32(v)).collect()
    }

    /// Installs the all-gathered compressed fp16 parameters (every
    /// rank's shard, concatenated) and expands them into the dense θ16.
    pub fn install_gathered(&mut self, full_compressed16: &[F16]) {
        assert_eq!(full_compressed16.len(), self.mask.nnz());
        expand_f16_into(full_compressed16, &self.mask, &mut self.theta16);
    }

    /// Dense fp32 view of the current parameters.
    pub fn dense_f32_params(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.theta16.len()];
        self.write_dense_f32_params_into(&mut out);
        out
    }

    /// Writes the dense fp32 parameter view into an existing buffer
    /// (table-based widen, no allocation).
    pub fn write_dense_f32_params_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.theta16.len());
        tensor::ops::widen_into(&self.theta16, out);
    }

    /// Measured model-state bytes held by this rank.
    pub fn measured_bytes(&self, include_temp: bool) -> u64 {
        let shard = self.hi - self.lo;
        let mut b = (self.theta16.len() * 2
            + self.mask.index_bytes()
            + self.grad16.len() * 2
            + self.theta32_shard.len() * 4
            + self.grad32_shard.len() * 4) as u64
            + self.os_shard.bytes() as u64;
        if include_temp {
            b += (shard * 2) as u64;
        }
        b
    }
}

/// Analytic per-rank memory of ZeRO-sharded SAMO (Adam):
/// `2φ + 6fφ + 18fφ/d` (peak, including the sharded downcast temp).
pub fn m_samo_zero_bytes(phi: u64, p: f64, d: u64) -> u64 {
    assert!((0.0..=1.0).contains(&p));
    assert!(d >= 1);
    let f = 1.0 - p;
    let full = 6.0 * f * phi as f64;
    let sharded = 18.0 * f * phi as f64 / d as f64;
    (2.0 * phi as f64 + full + sharded).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::m_samo_bytes;
    use crate::state::SamoLayerState;
    use nn::optim::AdamConfig;

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 0.05,
            ..Default::default()
        })
    }

    #[test]
    fn shard_bounds_partition() {
        for &(n, d) in &[(10usize, 3usize), (7, 7), (100, 8), (5, 1), (3, 5)] {
            let mut covered = 0usize;
            let mut prev_hi = 0usize;
            for r in 0..d {
                let (lo, hi) = shard_bounds(n, r, d);
                assert_eq!(lo, prev_hi, "shards must be contiguous");
                assert!(hi >= lo);
                covered += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(covered, n);
            assert_eq!(prev_hi, n);
        }
    }

    #[test]
    fn analytic_memory_recovers_samo_at_d1() {
        let phi = 1_000_000u64;
        for p in [0.5, 0.8, 0.9] {
            assert_eq!(m_samo_zero_bytes(phi, p, 1), m_samo_bytes(phi, p));
        }
    }

    #[test]
    fn analytic_memory_decreases_in_d_with_floor() {
        let phi = 1_000_000u64;
        let p = 0.9;
        let mut prev = u64::MAX;
        for d in [1u64, 2, 4, 8, 64, 1024] {
            let m = m_samo_zero_bytes(phi, p, d);
            assert!(m < prev);
            prev = m;
        }
        let floor = (2.0 * phi as f64 + 6.0 * 0.1 * phi as f64) as u64;
        assert!(prev >= floor);
        assert!(prev < floor + floor / 50, "should approach the floor");
    }

    #[test]
    fn measured_bytes_match_analytic() {
        let phi = 50_000usize;
        let p = 0.9;
        let d = 4;
        let mask = prune::random_prune(&[phi], p, 1);
        let nnz = mask.nnz() as u64;
        let mut total_sharded = 0u64;
        for r in 0..d {
            let st = ShardedSamoLayerState::from_params(
                &vec![0.1; phi],
                mask.clone(),
                &adam(),
                r,
                d,
            );
            // Per-rank: 2φ + (4+2)·nnz + (4+4+8+2)·shard.
            let (lo, hi) = st.shard_range();
            let expect = 2 * phi as u64 + 6 * nnz + 18 * (hi - lo) as u64;
            assert_eq!(st.measured_bytes(true), expect, "rank {r}");
            total_sharded += 18 * (hi - lo) as u64;
        }
        assert_eq!(total_sharded, 18 * nnz, "shards cover everything once");
    }

    /// The extension's correctness theorem: d ranks running sharded SAMO
    /// (identical all-reduced gradients, all-gathered parameters)
    /// produce exactly the unsharded SAMO trajectory.
    #[test]
    fn sharded_training_equals_unsharded() {
        let phi = 257usize; // deliberately not divisible by d
        let d = 3usize;
        let mask = prune::random_prune(&[phi], 0.7, 2);
        let values: Vec<f32> = (0..phi).map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.01).collect();

        let mut reference = SamoLayerState::from_params(&values, mask.clone(), &adam());
        let mut ranks: Vec<ShardedSamoLayerState> = (0..d)
            .map(|r| ShardedSamoLayerState::from_params(&values, mask.clone(), &adam(), r, d))
            .collect();

        for step in 0..5 {
            // The (already all-reduced) gradient every rank sees.
            let grads: Vec<f32> = (0..phi)
                .map(|i| ((i + step * 13) % 29) as f32 * 0.01 - 0.14)
                .collect();

            reference.compress_grad(&grads);
            reference.optimizer_step(&adam(), 1.0);

            // Each rank: compress, step its shard, contribute to the
            // all-gather.
            let nnz = mask.nnz();
            let mut gathered = vec![F16::ZERO; nnz];
            for rank in ranks.iter_mut() {
                rank.compress_grad(&grads);
                let shard16 = rank.optimizer_step_shard(&adam(), 1.0);
                let (lo, hi) = rank.shard_range();
                gathered[lo..hi].copy_from_slice(&shard16);
            }
            for rank in ranks.iter_mut() {
                rank.install_gathered(&gathered);
            }

            // Every rank's dense θ16 equals the reference's, bitwise.
            for (r, rank) in ranks.iter().enumerate() {
                assert_eq!(
                    rank.theta16, reference.theta16,
                    "rank {r} diverged at step {step}"
                );
            }
            // And shard θ32 values equal the reference's θ32 slices.
            for rank in &ranks {
                let (lo, hi) = rank.shard_range();
                assert_eq!(&rank.theta32_shard[..], &reference.theta32[lo..hi]);
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip_is_bitwise() {
        let phi = 131usize; // not divisible by d
        let d = 4usize;
        let mask = prune::random_prune(&[phi], 0.6, 5);
        let values: Vec<f32> = (0..phi).map(|i| (i as f32 * 0.3).sin() * 0.1).collect();
        let mut ranks: Vec<ShardedSamoLayerState> = (0..d)
            .map(|r| ShardedSamoLayerState::from_params(&values, mask.clone(), &adam(), r, d))
            .collect();

        // A couple of steps so shards carry non-trivial optimizer state.
        for step in 0..3 {
            let grads: Vec<f32> = (0..phi).map(|i| ((i + step * 7) % 11) as f32 * 0.02).collect();
            let nnz = mask.nnz();
            let mut gathered = vec![F16::ZERO; nnz];
            for rank in ranks.iter_mut() {
                rank.compress_grad(&grads);
                let shard16 = rank.optimizer_step_shard(&adam(), 1.0);
                let (lo, hi) = rank.shard_range();
                gathered[lo..hi].copy_from_slice(&shard16);
            }
            for rank in ranks.iter_mut() {
                rank.install_gathered(&gathered);
            }
        }

        let refs: Vec<&ShardedSamoLayerState> = ranks.iter().collect();
        let full = ShardedSamoLayerState::to_full_layer(&refs, &adam());
        for (r, orig) in ranks.iter().enumerate() {
            let rebuilt = ShardedSamoLayerState::from_full_layer(&full, &adam(), r, d);
            assert_eq!(rebuilt.shard_range(), orig.shard_range());
            assert_eq!(rebuilt.theta16, orig.theta16, "rank {r} θ16");
            assert_eq!(rebuilt.grad16, orig.grad16, "rank {r} ∇θ16");
            assert_eq!(rebuilt.theta32_shard, orig.theta32_shard, "rank {r} θ32");
            match (&rebuilt.os_shard, &orig.os_shard) {
                (OptState::Adam(a), OptState::Adam(b)) => {
                    assert_eq!(a.step, b.step);
                    assert_eq!(a.m, b.m);
                    assert_eq!(a.v, b.v);
                }
                _ => panic!("wrong optimizer state"),
            }
        }
    }

    #[test]
    fn headline_numbers_for_gpt27b() {
        // Doc-comment claim: 2.7B, p = 0.9, d = 64 → ~6.9 GB per rank.
        let phi = 2_652_000_000u64;
        let m = m_samo_zero_bytes(phi, 0.9, 64) as f64 / 1e9;
        assert!((m - 6.9).abs() < 0.3, "got {m} GB");
    }
}
