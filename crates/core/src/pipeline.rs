//! Thread-per-stage inter-layer (pipeline) SAMO training over the real
//! message-passing runtime in the `comms` crate — the hybrid
//! `G_inter × G_data` decomposition of AxoNN (paper Sec. III) running
//! on OS threads instead of the event-driven simulator in `axonn-sim`.
//!
//! A [`Sequential`] model is partitioned into `G_inter` contiguous
//! stage blocks ([`comms::segment_bounds`] over the layer list, the
//! same split the simulator and the analytic model use). Each of the
//! `G_inter × G_data` ranks owns one stage block of one data replica
//! on its own thread, plus two communicator endpoints:
//!
//! * a **pipeline mesh** per data replica (`world = G_inter`) carrying
//!   boundary activations forward and activation-gradients backward as
//!   tagged p2p messages ([`comms::Communicator::send_p2p`]), and the
//!   per-step cross-stage overflow verdict;
//! * a **data mesh** per stage (`world = G_data`) running the
//!   compressed-`∇θ16` chunked ring all-reduce and the sharded
//!   parameter all-gather, exactly as
//!   [`crate::ThreadedDataParallelSamo`] does.
//!
//! # Scheduling
//!
//! The per-rank scheduler is message-driven with **backward preferred
//! over forward** (AxoNN's rule, mirrored from `axonn-sim`'s
//! event-driven simulator): each loop iteration first polls the
//! downstream link for the next activation-gradient, and only when no
//! backward work is ready does it admit the next forward microbatch.
//! Stage 0 additionally enforces the `max_in_flight` activation-memory
//! cap (`next_fwd < bwd_done + max_in_flight`), which bounds every
//! stage's stash of boundary inputs. Backward executes in strict
//! microbatch order, so gradient accumulation order — and therefore
//! every f32 sum — matches the single-process trainer exactly.
//!
//! Layer activation caches are single-slot, so a stage whose cache no
//! longer holds the microbatch being retired re-runs its forward from
//! the stashed boundary input just in time (classic activation
//! recomputation). The last stage never recomputes: under backward
//! priority its backward always immediately follows the matching
//! forward. [`PipelineConfig::force_recompute`] forces the recompute
//! everywhere, which makes per-stage work uniform — the pipeline bench
//! uses it to compare the measured bubble against Eq. 7.
//!
//! On the **last** microbatch the backward runs through
//! [`Layer::backward_with_ready`], compressing each parameter bucket
//! and starting its ring on the data mesh as soon as its gradient is
//! final — the all-reduce overlaps the backward tail, as in the
//! data-parallel runtime.
//!
//! # Bitwise equivalence with the single-process trainer
//!
//! For any `(G_inter, G_data)` and any thread timing, checkpoint bytes
//! equal a single-process [`crate::SamoTrainer`] driven with the same
//! microbatches step for step (`tests/pipeline_threaded.rs`):
//! forward/backward compose the same deterministic kernels, backward
//! order per parameter is microbatch order everywhere, recomputation
//! reproduces identical activations (stage blocks must be
//! recompute-safe, i.e. forward twice ≡ forward once — true of every
//! stateless layer), the ring mean is the exact-f64-sum rounding which
//! is the identity at `G_data = 1` and exact for identical replicas,
//! and the sharded optimizer path is bitwise-equal to the fused
//! single-process kernels (`crate::sharded` tests).
//!
//! # Failure handling
//!
//! A killed or cut stage surfaces as a bounded step `Err` — every rank
//! carries a progress deadline in its scheduler loop, so a silent
//! neighbour can never hang the group. The group then refuses further
//! steps (poisoned) until [`ThreadedPipelineSamo::restore`] reloads a
//! checkpoint on every rank, bumps both mesh epochs (discarding stale
//! in-flight traffic) and barriers the group back together.

use crate::sharded::ShardedSamoLayerState;
use comms::{CommsError, Communicator, FaultController, InProcTransport, Transport};
use nn::layer::{Layer, Sequential};
use nn::mixed::{LossScaler, LossScalerState, Optimizer};
use prune::Mask;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::f16::F16;
use tensor::Tensor;

/// Produces stage 0's boundary input for `(data_idx, microbatch)`.
pub type InputFn = Arc<dyn Fn(usize, usize) -> Tensor + Send + Sync>;

/// Given the last stage's output for `(data_idx, microbatch)` and the
/// current loss scale, returns the **scaled** output gradient
/// `d(scale·loss)/d(output)` seeding backward.
pub type LossGradFn = Arc<dyn Fn(usize, usize, &Tensor, f32) -> Tensor + Send + Sync>;

/// Per-stage Perfetto trace rows: every forward/backward slice a stage
/// executes is recorded as one Chrome `trace_event` complete event on
/// **pid 3** (pid 0 is the simulated pipeline, pid 1 live spans, pid 2
/// comms ring hops), one `tid` lane per `(data_idx, stage)` rank. The
/// timeline origin is shared with the comms hops
/// ([`comms::trace::now_us`]), so stage compute and ring traffic line
/// up in one combined trace. Recording is gated on
/// [`telemetry::enabled`].
pub mod trace {
    use telemetry::json::Json;
    use telemetry::sink::Handle;
    use telemetry::trace::TraceEvent;
    use telemetry::ThreadLocalSink;

    /// The pid lane for live pipeline-stage events in combined traces.
    pub const PIPELINE_TRACE_PID: u64 = 3;

    static EVENTS: ThreadLocalSink<TraceEvent> = ThreadLocalSink::new();

    thread_local! {
        static LOCAL_EVENTS: Handle<TraceEvent> = EVENTS.handle();
    }

    /// Records one stage compute slice on the rank's lane. Each rank
    /// thread buffers into its own [`ThreadLocalSink`] buffer, so the
    /// hot path never contends on a global lock; buffers survive thread
    /// death, so a killed rank's slices still reach [`take_events`].
    pub fn record_slice(
        lane: u64,
        name: String,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        LOCAL_EVENTS.with(|buf| {
            buf.lock().push(TraceEvent {
                name,
                cat: "pipeline".into(),
                pid: PIPELINE_TRACE_PID,
                tid: lane,
                ts_us,
                dur_us,
                args,
            })
        });
    }

    /// Records the per-rank **step window** slice (`name: "step"`,
    /// `args.step = N`, `args.group = lane base`) that
    /// [`telemetry::critical_path`] uses to attribute compute/comm/wait
    /// slices to training steps. The group id keeps same-numbered steps
    /// of two pipeline groups in one process from merging.
    pub fn record_step_window(lane: u64, group: u64, step: u64, ts_us: f64, dur_us: f64) {
        record_slice(
            lane,
            "step".into(),
            ts_us,
            dur_us,
            vec![
                ("step".into(), Json::UInt(step)),
                ("group".into(), Json::UInt(group)),
            ],
        );
    }

    /// Drains every recorded stage event (for trace-file assembly),
    /// including buffers of threads that have already exited.
    pub fn take_events() -> Vec<TraceEvent> {
        EVENTS.drain()
    }
}

/// Pipeline decomposition and scheduling knobs.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Pipeline depth: number of contiguous stage blocks.
    pub g_inter: usize,
    /// Data-parallel width: replicas per stage.
    pub g_data: usize,
    /// Microbatches per training step (the paper's `M = B/(mbs·G_data)`).
    pub microbatches: usize,
    /// Rows per microbatch — boundary tensors travel flat over the
    /// wire and are reshaped to `[mb_rows, features]` on arrival.
    pub mb_rows: usize,
    /// Activation-memory cap: at most this many microbatches may be
    /// in flight (forwarded but not yet retired by backward) per stage.
    pub max_in_flight: usize,
    /// Progress deadline of the per-rank scheduler and deadline of
    /// every collective — a dead neighbour surfaces as `Err` within it.
    pub timeout: Duration,
    /// Recompute the stage forward before *every* backward, even when
    /// the activation cache is still valid. Keeps per-stage work
    /// uniform for the Eq. 7 bubble cross-check.
    pub force_recompute: bool,
}

impl PipelineConfig {
    /// A conservative default: `g_inter` stages, no data parallelism,
    /// `2·g_inter` microbatches, cap at pipeline depth.
    pub fn new(g_inter: usize, microbatches: usize, mb_rows: usize) -> PipelineConfig {
        PipelineConfig {
            g_inter,
            g_data: 1,
            microbatches,
            mb_rows,
            max_in_flight: g_inter.max(1),
            timeout: comms::collectives::DEFAULT_TIMEOUT,
            force_recompute: false,
        }
    }
}

/// Per-rank scheduler statistics, cumulative across steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Seconds spent in stage forward compute (initial passes).
    pub fwd_s: f64,
    /// Seconds spent in backward compute, including any recompute.
    pub bwd_s: f64,
    /// Wall seconds inside the scheduler loop (excludes the collective
    /// epilogue), summed over steps — `1 − (fwd_s+bwd_s)/sched_wall_s`
    /// is this rank's measured bubble fraction.
    pub sched_wall_s: f64,
    /// Just-in-time activation recomputations performed.
    pub recomputes: u64,
    /// When this rank's scheduler loop last started/ended, microseconds
    /// on the shared comms-trace clock ([`comms::trace::now_us`]) — the
    /// bubble bench reconstructs the step makespan across ranks from
    /// these (`max(end) − min(start)` over the group).
    pub last_sched_start_us: f64,
    /// See [`Self::last_sched_start_us`].
    pub last_sched_end_us: f64,
    /// Bytes this rank pushed into its pipeline-mesh links.
    pub pipe_wire_bytes: u64,
    /// Bytes this rank pushed into its data-mesh links.
    pub data_wire_bytes: u64,
    /// Messages lost to injected faults on either mesh.
    pub msgs_dropped: u64,
}

const DIR_ACT: u64 = 0;
const DIR_GRAD: u64 = 1;

/// Tag id for one boundary message: microbatch in the high bits, the
/// direction (activation vs gradient) in bit 0. The training step goes
/// in the tag's separate `step` field, so ids never collide across
/// steps, microbatches, or directions within an epoch.
fn p2p_id(mb: usize, dir: u64) -> u64 {
    ((mb as u64) << 1) | dir
}

/// A rank whose step duration exceeds this multiple of the step median
/// is reported as a straggler by rank (0,0)'s metrics aggregation.
pub const STRAGGLER_FACTOR: f64 = 1.5;

/// 16-byte wire record of one rank's step-duration snapshot:
/// `stage: u32le | data_idx: u32le | dur_us: f64le`.
fn encode_metric(stage: usize, data_idx: usize, dur_us: f64) -> Vec<u8> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&(stage as u32).to_le_bytes());
    b.extend_from_slice(&(data_idx as u32).to_le_bytes());
    b.extend_from_slice(&dur_us.to_le_bytes());
    b
}

/// Parses a batch of concatenated [`encode_metric`] records; trailing
/// partial records (impossible from well-behaved peers) are dropped.
fn decode_metrics(bytes: &[u8]) -> Vec<(usize, usize, f64)> {
    bytes
        .chunks_exact(16)
        .map(|c| {
            let stage = u32::from_le_bytes(c[0..4].try_into().unwrap()) as usize;
            let data_idx = u32::from_le_bytes(c[4..8].try_into().unwrap()) as usize;
            let dur = f64::from_le_bytes(c[8..16].try_into().unwrap());
            (stage, data_idx, dur)
        })
        .collect()
}

type InspectFn = Box<dyn FnOnce(&mut Sequential, &Vec<ShardedSamoLayerState>) + Send>;

enum Cmd {
    Step {
        input: InputFn,
        loss_grad: LossGradFn,
        step: u32,
    },
    SetScaler(LossScaler),
    Snapshot,
    Restore(Arc<Vec<u8>>),
    Inspect(InspectFn),
    Shutdown,
}

struct StepOutcome {
    applied: bool,
    finite: bool,
}

struct SnapshotData {
    states: Vec<ShardedSamoLayerState>,
    stats: StageStats,
}

enum Resp {
    Step(Result<StepOutcome, CommsError>),
    Snapshot(Box<SnapshotData>),
    Restored(Result<(), String>),
    Ack,
}

/// Everything one `(stage, data_idx)` rank thread owns.
struct StageRank {
    stage: usize,
    data_idx: usize,
    g_inter: usize,
    /// Global trace lane (`tid`) of this rank: unique across every
    /// pipeline group of the process, shared by the rank's pipeline
    /// slices (pid 3) and both communicators' comms slices (pid 2).
    lane: u64,
    /// Index of this stage's first parameter in whole-model order.
    param_off: usize,
    block: Sequential,
    states: Vec<ShardedSamoLayerState>,
    opt: Optimizer,
    scaler: LossScaler,
    /// Pipeline mesh of this data replica; rank = stage.
    pipe: Communicator<InProcTransport>,
    /// Data mesh of this stage; rank = data_idx.
    data: Communicator<InProcTransport>,
    microbatches: usize,
    mb_rows: usize,
    max_in_flight: usize,
    timeout: Duration,
    force_recompute: bool,
    poisoned: bool,
    steps_taken: u64,
    steps_skipped: u64,
    stats: StageStats,
    /// Boundary input per in-flight microbatch (recompute source).
    input_stash: Vec<Option<Tensor>>,
    /// Last stage only: outputs awaiting their loss gradient.
    y_stash: Vec<Option<Tensor>>,
    /// Which microbatch the stage's activation caches belong to.
    cache_mb: Option<usize>,
    /// Rank (0,0) only: rolling per-rank step-duration stats
    /// `(sum_us, samples)` indexed by `data_idx * g_inter + stage`,
    /// fed by the mesh-native telemetry relay. Empty elsewhere.
    rank_dur_stats: Vec<(f64, u64)>,
}

impl StageRank {
    fn is_last(&self) -> bool {
        self.stage + 1 == self.g_inter
    }

    fn trace_lane(&self) -> u64 {
        self.lane
    }

    fn tensor_from_wire(&self, v: Vec<f32>) -> Result<Tensor, CommsError> {
        if self.mb_rows == 0 || !v.len().is_multiple_of(self.mb_rows) {
            return Err(CommsError::Mismatch(format!(
                "boundary payload of {} values does not divide into {} rows",
                v.len(),
                self.mb_rows
            )));
        }
        let cols = v.len() / self.mb_rows;
        Ok(Tensor::from_vec(&[self.mb_rows, cols], v))
    }

    fn step(&mut self, input: &InputFn, loss_grad: &LossGradFn, step: u32) -> Result<StepOutcome, CommsError> {
        if self.poisoned {
            return Err(CommsError::Poisoned);
        }
        let res = self.step_inner(input, loss_grad, step);
        self.poisoned |= res.is_err();
        res
    }

    fn step_inner(
        &mut self,
        input: &InputFn,
        loss_grad: &LossGradFn,
        step: u32,
    ) -> Result<StepOutcome, CommsError> {
        let tel = telemetry::enabled();
        // Step window start: the "step" slice recorded on completion
        // covers the scheduler loop plus the collective epilogue, so
        // the critical-path analyzer can attribute every compute/comm/
        // wait slice inside it to this training step.
        let win0 = tel.then(comms::trace::now_us);
        let m = self.microbatches;
        let s = self.stage;
        let last = self.is_last();
        let scale_used = self.scaler.scale();
        self.input_stash = (0..m).map(|_| None).collect();
        self.y_stash = (0..m).map(|_| None).collect();
        self.cache_mb = None;

        // Message-driven schedule: backward preferred over forward.
        self.stats.last_sched_start_us = comms::trace::now_us();
        let wall0 = Instant::now();
        let mut fwd_done = 0usize;
        let mut bwd_done = 0usize;
        let mut ring_order: Vec<(u64, usize)> = Vec::with_capacity(self.states.len());
        let mut last_progress = Instant::now();
        while bwd_done < m {
            let mut progressed = false;

            // 1. Backward, in strict microbatch order (keeps per-layer
            //    gradient accumulation order identical to the oracle).
            let dy = if last {
                (fwd_done > bwd_done).then(|| {
                    let y = self.y_stash[bwd_done].take().expect("output stashed");
                    loss_grad(self.data_idx, bwd_done, &y, scale_used)
                })
            } else {
                self.pipe
                    .try_recv_p2p(s + 1, p2p_id(bwd_done, DIR_GRAD), step)?
                    .map(|v| self.tensor_from_wire(v))
                    .transpose()?
            };
            if let Some(dy) = dy {
                self.backward_mb(bwd_done, &dy, bwd_done + 1 == m, step, &mut ring_order, tel)?;
                bwd_done += 1;
                progressed = true;
            }

            // 2. Forward, inside the activation-memory window.
            if !progressed && fwd_done < m && fwd_done < bwd_done + self.max_in_flight {
                let x = if s == 0 {
                    Some(input(self.data_idx, fwd_done))
                } else {
                    self.pipe
                        .try_recv_p2p(s - 1, p2p_id(fwd_done, DIR_ACT), step)?
                        .map(|v| self.tensor_from_wire(v))
                        .transpose()?
                };
                if let Some(x) = x {
                    self.forward_mb(fwd_done, x, step, tel)?;
                    fwd_done += 1;
                    progressed = true;
                }
            }

            if progressed {
                last_progress = Instant::now();
            } else {
                // Keep any in-flight rings moving, then check the
                // progress deadline: a dead neighbour must surface as a
                // bounded Err, never a hang.
                self.data.ring_pump()?;
                if last_progress.elapsed() > self.timeout {
                    let from = if last { s.saturating_sub(1) } else { s + 1 };
                    if tel {
                        // The scheduler starved to its progress deadline:
                        // make the stall visible as a timed-out wait
                        // slice, like the blocking-recv deadline path.
                        use telemetry::json::Json;
                        let t1 = comms::trace::now_us();
                        let stalled_us = last_progress.elapsed().as_secs_f64() * 1e6;
                        comms::trace::record_wait(
                            self.lane,
                            format!("sched stall (mb {fwd_done}f/{bwd_done}b)"),
                            t1 - stalled_us,
                            stalled_us,
                            vec![
                                ("from".to_string(), Json::from(from)),
                                ("timed_out".to_string(), Json::Bool(true)),
                            ],
                        );
                    }
                    return Err(CommsError::Timeout { rank: s, from });
                }
                std::thread::yield_now();
            }
        }
        self.stats.sched_wall_s += wall0.elapsed().as_secs_f64();
        self.stats.last_sched_end_us = comms::trace::now_us();

        // Collective epilogue: finish the overlapped rings, install the
        // reduced gradients, agree on the overflow verdict across
        // stages, then shard-step + all-gather parameters.
        self.data.ring_finish()?;
        for (id, mean) in self.data.take_completed() {
            let pi = ring_order
                .iter()
                .find(|(rid, _)| *rid == id)
                .expect("completed ring was started by this step")
                .1;
            self.states[pi].grad16.copy_from_slice(&mean);
        }
        let local_finite = !self
            .states
            .iter()
            .any(|st| st.grad16.iter().any(|g| !g.is_finite()));
        // One f16 flag per stage; every stage of this replica sees the
        // same flags, and replicas agree because the reduced gradient
        // bits are identical — so every rank's scaler stays in lockstep.
        let flag = F16::from_f32(if local_finite { 1.0 } else { 0.0 });
        let flags = self
            .pipe
            .all_gather_f16(&[flag], &vec![1usize; self.g_inter])?;
        let finite = flags.iter().all(|f| f.to_f32() == 1.0);
        let proceed = self.scaler.check_and_update(finite);
        if !proceed {
            self.block.zero_grad();
            self.steps_skipped += 1;
            if tel {
                self.record_step(false);
            }
            if let Some(w0) = win0 {
                self.finish_step_telemetry(step, w0);
            }
            return Ok(StepOutcome { applied: false, finite });
        }

        let world = self.data.world();
        let inv = 1.0 / scale_used;
        for pi in 0..self.states.len() {
            let shard16 = self.states[pi].optimizer_step_shard(&self.opt, inv);
            let counts: Vec<usize> = comms::segment_bounds(self.states[pi].nnz(), world)
                .iter()
                .map(|(lo, hi)| hi - lo)
                .collect();
            let gathered = self.data.all_gather_f16(&shard16, &counts)?;
            self.states[pi].install_gathered(&gathered);
        }
        for (p, st) in self.block.params_mut().into_iter().zip(&self.states) {
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        self.steps_taken += 1;
        if tel {
            self.record_step(true);
        }
        if let Some(w0) = win0 {
            self.finish_step_telemetry(step, w0);
        }
        Ok(StepOutcome { applied: true, finite })
    }

    /// Telemetry tail of a completed step: records this rank's step
    /// window slice and runs the mesh-native metrics relay. Only called
    /// when telemetry is enabled and the step reached a verdict (error
    /// paths skip it — a dead rank's wait slices still tell the story).
    fn finish_step_telemetry(&mut self, step: u32, win0: f64) {
        let now = comms::trace::now_us();
        let dur_us = (now - win0).max(0.0);
        let group = self.lane - (self.data_idx * self.g_inter + self.stage) as u64;
        trace::record_step_window(self.trace_lane(), group, u64::from(step), win0, dur_us);
        self.relay_step_metrics(step, dur_us);
    }

    /// Mesh-native metrics aggregation: every rank ships its step
    /// duration over the transport to rank (0,0), which folds rolling
    /// per-rank stats, warns on stragglers, and emits one aggregated
    /// `mesh_metrics` line into the metrics jsonl stream.
    ///
    /// Two hops: stages > 0 send to stage 0 over their replica's pipe
    /// mesh; replicas > 0 relay their gathered batch to data rank 0
    /// over the stage-0 data mesh. Delivery is best-effort
    /// ([`Communicator::send_telemetry`] never poisons) — a lost
    /// snapshot degrades the report, never the step.
    fn relay_step_metrics(&mut self, step: u32, dur_us: f64) {
        let g = self.g_inter;
        let mine = encode_metric(self.stage, self.data_idx, dur_us);
        if self.stage > 0 {
            self.pipe.send_telemetry(0, self.stage as u64, step, mine);
            return;
        }
        let mut batch = mine;
        for s in 1..g {
            if let Some(b) = self.pipe.recv_telemetry(s, s as u64, step, self.timeout) {
                batch.extend_from_slice(&b);
            }
        }
        if self.data_idx > 0 {
            self.data.send_telemetry(0, self.data_idx as u64, step, batch);
            return;
        }
        let mut entries = decode_metrics(&batch);
        for di in 1..self.data.world() {
            if let Some(b) = self.data.recv_telemetry(di, di as u64, step, self.timeout) {
                entries.extend(decode_metrics(&b));
            }
        }
        self.aggregate_metrics(step, &entries);
    }

    /// Rank (0,0): fold one step's snapshots into the rolling per-rank
    /// stats, flag stragglers (above [`STRAGGLER_FACTOR`] × the step
    /// median), and emit the aggregated `mesh_metrics` jsonl line.
    fn aggregate_metrics(&mut self, step: u32, entries: &[(usize, usize, f64)]) {
        use telemetry::json::Json;
        if entries.is_empty() {
            return;
        }
        let g = self.g_inter;
        let world = g * self.data.world();
        if self.rank_dur_stats.len() != world {
            self.rank_dur_stats = vec![(0.0, 0); world];
        }
        let mut durs: Vec<f64> = entries.iter().map(|e| e.2).collect();
        durs.sort_by(f64::total_cmp);
        let median = durs[durs.len() / 2];
        let mut per_rank = Vec::with_capacity(entries.len());
        let mut stragglers = Vec::new();
        for &(s, di, dur) in entries {
            let Some(cell) = self.rank_dur_stats.get_mut(di * g + s) else {
                continue; // malformed snapshot; drop it
            };
            cell.0 += dur;
            cell.1 += 1;
            let mean = cell.0 / cell.1 as f64;
            per_rank.push(Json::Obj(vec![
                ("stage".into(), Json::UInt(s as u64)),
                ("data".into(), Json::UInt(di as u64)),
                ("dur_us".into(), Json::Num(dur)),
                ("mean_us".into(), Json::Num(mean)),
            ]));
            if entries.len() > 1 && dur > STRAGGLER_FACTOR * median {
                telemetry::log_warn!(
                    "pipeline straggler: rank (s{s},d{di}) step {step} took {dur:.0}us ({:.2}x step median)",
                    dur / median
                );
                stragglers.push(Json::Obj(vec![
                    ("stage".into(), Json::UInt(s as u64)),
                    ("data".into(), Json::UInt(di as u64)),
                    ("ratio".into(), Json::Num(dur / median)),
                ]));
            }
        }
        telemetry::jsonl::emit_line(&Json::Obj(vec![
            ("kind".into(), Json::from("mesh_metrics")),
            ("step".into(), Json::UInt(u64::from(step))),
            ("ranks".into(), Json::UInt(entries.len() as u64)),
            ("median_us".into(), Json::Num(median)),
            ("max_us".into(), Json::Num(durs[durs.len() - 1])),
            ("per_rank".into(), Json::Arr(per_rank)),
            ("stragglers".into(), Json::Arr(stragglers)),
        ]));
    }

    fn forward_mb(&mut self, mb: usize, x: Tensor, step: u32, tel: bool) -> Result<(), CommsError> {
        let ts = tel.then(comms::trace::now_us);
        let t0 = Instant::now();
        let y = self.block.forward(&x);
        let dt = t0.elapsed().as_secs_f64();
        self.stats.fwd_s += dt;
        if let Some(ts) = ts {
            trace::record_slice(
                self.trace_lane(),
                format!("F{mb}"),
                ts,
                dt * 1e6,
                vec![("mb".into(), telemetry::json::Json::UInt(mb as u64))],
            );
        }
        self.cache_mb = Some(mb);
        self.input_stash[mb] = Some(x);
        if self.is_last() {
            self.y_stash[mb] = Some(y);
        } else {
            self.pipe
                .send_p2p(self.stage + 1, p2p_id(mb, DIR_ACT), step, y.as_slice().to_vec())?;
        }
        Ok(())
    }

    fn backward_mb(
        &mut self,
        mb: usize,
        dy: &Tensor,
        last_mb: bool,
        step: u32,
        ring_order: &mut Vec<(u64, usize)>,
        tel: bool,
    ) -> Result<(), CommsError> {
        let ts = tel.then(comms::trace::now_us);
        let t0 = Instant::now();
        if self.force_recompute || self.cache_mb != Some(mb) {
            // The activation caches belong to a different microbatch:
            // re-run the stage forward from the stashed boundary input.
            // Parameters are unchanged within a step, so the recompute
            // reproduces the original activations bit for bit.
            let x = self.input_stash[mb].take().expect("boundary input stashed");
            let _ = self.block.forward(&x);
            self.stats.recomputes += 1;
        } else {
            self.input_stash[mb] = None;
        }
        let dx = if last_mb {
            // Final microbatch: every parameter's accumulated gradient
            // becomes final as its layer finishes backward — compress
            // and start its ring immediately so the all-reduce overlaps
            // the rest of the backward tail.
            let states = &mut self.states;
            let data = &mut self.data;
            let mut comm_err: Option<CommsError> = None;
            let dx = {
                let comm_err = &mut comm_err;
                let ring_order = &mut *ring_order;
                self.block.backward_with_ready(dy, &mut |off, params| {
                    if comm_err.is_some() {
                        return; // finish backward, but stop talking
                    }
                    for (i, p) in params.iter().enumerate() {
                        let pi = off + i;
                        states[pi].compress_grad(p.grad.as_slice());
                        match data.ring_start(states[pi].grad16.clone()) {
                            Ok(id) => ring_order.push((id, pi)),
                            Err(e) => {
                                *comm_err = Some(e);
                                return;
                            }
                        }
                    }
                    if let Err(e) = data.ring_pump() {
                        *comm_err = Some(e);
                    }
                })
            };
            if let Some(e) = comm_err {
                return Err(e);
            }
            dx
        } else {
            self.block.backward(dy)
        };
        self.cache_mb = None;
        let dt = t0.elapsed().as_secs_f64();
        self.stats.bwd_s += dt;
        if let Some(ts) = ts {
            trace::record_slice(
                self.trace_lane(),
                format!("B{mb}"),
                ts,
                dt * 1e6,
                vec![("mb".into(), telemetry::json::Json::UInt(mb as u64))],
            );
        }
        if self.stage > 0 {
            self.pipe
                .send_p2p(self.stage - 1, p2p_id(mb, DIR_GRAD), step, dx.as_slice().to_vec())?;
        }
        Ok(())
    }

    /// Reloads this rank's stage slice of a full checkpoint, then
    /// rejoins both meshes on fresh epochs.
    fn restore(&mut self, checkpoint: &[u8]) -> Result<(), String> {
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        let lo = self.param_off;
        let hi = lo + self.states.len();
        if layers.len() < hi {
            return Err(format!(
                "checkpoint has {} layers, stage {} needs {}..{}",
                layers.len(),
                self.stage,
                lo,
                hi
            ));
        }
        let slice = &layers[lo..hi];
        for (layer, st) in slice.iter().zip(&self.states) {
            if layer.mask().shape() != st.mask().shape() {
                return Err("checkpoint mask shape mismatch".into());
            }
        }
        let d = self.data.world();
        for ((st, layer), p) in self
            .states
            .iter_mut()
            .zip(slice)
            .zip(self.block.params_mut())
        {
            *st = ShardedSamoLayerState::from_full_layer(layer, &self.opt, self.data_idx, d);
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        if let Some(meta) = meta {
            self.scaler.restore_state(LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        // Discard stale in-flight traffic on both meshes and
        // re-synchronize: every rank restores together, so epochs
        // advance in lockstep; the barriers run pipe-then-data on every
        // rank, and the meshes are disjoint, so no ordering deadlock.
        self.pipe.bump_epoch();
        self.data.bump_epoch();
        self.poisoned = false;
        if let Err(e) = self.pipe.barrier() {
            self.poisoned = true;
            return Err(format!("post-restore pipeline barrier failed: {e}"));
        }
        if let Err(e) = self.data.barrier() {
            self.poisoned = true;
            return Err(format!("post-restore data barrier failed: {e}"));
        }
        if telemetry::enabled() && self.stage == 0 && self.data_idx == 0 {
            telemetry::global().counter("samo.pipeline.recoveries").inc();
        }
        Ok(())
    }

    fn snapshot(&mut self) -> SnapshotData {
        let mut stats = self.stats;
        stats.pipe_wire_bytes = self.pipe.transport().bytes_sent();
        stats.data_wire_bytes = self.data.transport().bytes_sent();
        stats.msgs_dropped =
            self.pipe.transport().msgs_dropped() + self.data.transport().msgs_dropped();
        SnapshotData {
            states: self.states.clone(),
            stats,
        }
    }

    /// Cold path: rank (0,0)'s metric bookkeeping for one step.
    fn record_step(&self, applied: bool) {
        if self.stage != 0 || self.data_idx != 0 {
            return;
        }
        let reg = telemetry::global();
        reg.counter(if applied {
            "samo.pipeline.steps_taken"
        } else {
            "samo.pipeline.steps_skipped"
        })
        .inc();
        reg.gauge("samo.pipeline.loss_scale")
            .set(f64::from(self.scaler.scale()));
    }
}

fn rank_loop(mut rk: StageRank, rx: Receiver<Cmd>, tx: Sender<Resp>) {
    while let Ok(cmd) = rx.recv() {
        let resp = match cmd {
            Cmd::Step { input, loss_grad, step } => Resp::Step(rk.step(&input, &loss_grad, step)),
            Cmd::SetScaler(s) => {
                rk.scaler = s;
                Resp::Ack
            }
            Cmd::Snapshot => Resp::Snapshot(Box::new(rk.snapshot())),
            Cmd::Restore(ck) => Resp::Restored(rk.restore(&ck)),
            Cmd::Inspect(f) => {
                f(&mut rk.block, &rk.states);
                Resp::Ack
            }
            Cmd::Shutdown => {
                let _ = tx.send(Resp::Ack);
                return;
            }
        };
        if tx.send(resp).is_err() {
            return;
        }
    }
}

/// A hybrid `G_inter × G_data` SAMO group: every rank is an OS thread
/// owning one pipeline-stage block of one data replica, boundary
/// tensors move as tagged p2p messages, and gradients ride the
/// compressed ring all-reduce within each data-parallel group. Peer of
/// [`crate::ThreadedDataParallelSamo`] (which is the `G_inter = 1`
/// special case) and bitwise-equivalent to [`crate::SamoTrainer`].
pub struct ThreadedPipelineSamo {
    cfg: PipelineConfig,
    cmd: Vec<Sender<Cmd>>,
    resp: Vec<Receiver<Resp>>,
    handles: Vec<JoinHandle<()>>,
    /// One fault controller per data replica's pipeline mesh.
    pipe_faults: Vec<Arc<FaultController>>,
    /// One fault controller per stage's data mesh.
    data_faults: Vec<Arc<FaultController>>,
    opt: Optimizer,
    /// Mirror of the rank scalers (updated with the same verdicts).
    scaler: LossScaler,
    /// Parameters per stage, in stage order (checkpoint reassembly).
    params_per_stage: Vec<usize>,
    steps_taken: u64,
    steps_skipped: u64,
    step_seq: u32,
    numel: usize,
    nnz: usize,
}

impl ThreadedPipelineSamo {
    /// Builds the group from `g_data` identically initialized model
    /// replicas (consumed and partitioned into `g_inter` stage blocks
    /// each) and one mask per parameter tensor, then spawns one thread
    /// per `(stage, data_idx)` rank.
    pub fn new(replicas: Vec<Sequential>, masks: Vec<Mask>, opt: Optimizer, cfg: PipelineConfig) -> ThreadedPipelineSamo {
        assert_eq!(replicas.len(), cfg.g_data, "one model replica per data rank");
        assert!(cfg.g_inter >= 1 && cfg.g_data >= 1);
        assert!(cfg.microbatches >= 1, "need at least one microbatch");
        assert!(cfg.max_in_flight >= 1, "max_in_flight must admit one microbatch");
        let n_layers = replicas[0].len();
        assert!(
            n_layers >= cfg.g_inter,
            "cannot split {n_layers} layers into {} stages",
            cfg.g_inter
        );
        {
            let first: Vec<Vec<f32>> = replicas[0]
                .params()
                .iter()
                .map(|p| p.value.as_slice().to_vec())
                .collect();
            assert_eq!(first.len(), masks.len(), "one mask per parameter");
            for (r, m) in replicas.iter().enumerate().skip(1) {
                assert_eq!(m.len(), n_layers, "replica {r} layer count differs");
                for (p, expect) in m.params().iter().zip(&first) {
                    assert_eq!(
                        p.value.as_slice(),
                        &expect[..],
                        "replica {r} differs at init ({})",
                        p.name
                    );
                }
            }
        }

        // Meshes: one pipeline ring per data replica, one data ring per
        // stage. Each rank takes endpoint [stage] of its replica's pipe
        // mesh and endpoint [data_idx] of its stage's data mesh.
        let pipe_faults: Vec<Arc<FaultController>> =
            (0..cfg.g_data).map(|_| Arc::new(FaultController::new())).collect();
        let data_faults: Vec<Arc<FaultController>> =
            (0..cfg.g_inter).map(|_| Arc::new(FaultController::new())).collect();
        let mut pipe_meshes: Vec<Vec<Option<InProcTransport>>> = pipe_faults
            .iter()
            .map(|f| {
                InProcTransport::mesh_with_faults(cfg.g_inter, Arc::clone(f))
                    .into_iter()
                    .map(Some)
                    .collect()
            })
            .collect();
        let mut data_meshes: Vec<Vec<Option<InProcTransport>>> = data_faults
            .iter()
            .map(|f| {
                InProcTransport::mesh_with_faults(cfg.g_data, Arc::clone(f))
                    .into_iter()
                    .map(Some)
                    .collect()
            })
            .collect();

        let bounds = comms::segment_bounds(n_layers, cfg.g_inter);
        let scaler = LossScaler::default();
        // Trace lanes are process-global so two groups alive in one
        // session (e.g. the bench sweeping pipeline depths) never share
        // a `tid` row in the combined trace.
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_LANE: AtomicU64 = AtomicU64::new(0);
        let lane_base = NEXT_LANE.fetch_add((cfg.g_inter * cfg.g_data) as u64, Ordering::Relaxed);
        let mut params_per_stage = vec![0usize; cfg.g_inter];
        let mut numel = 0usize;
        let mut nnz = 0usize;
        let mut cmd = Vec::with_capacity(cfg.g_inter * cfg.g_data);
        let mut resp = Vec::with_capacity(cfg.g_inter * cfg.g_data);
        let mut handles = Vec::with_capacity(cfg.g_inter * cfg.g_data);
        for (data_idx, replica) in replicas.into_iter().enumerate() {
            let mut layers = replica.into_layers();
            // Split back-to-front so earlier bounds stay valid.
            let mut blocks: Vec<Sequential> = Vec::with_capacity(cfg.g_inter);
            for &(lo, _hi) in bounds.iter().rev() {
                blocks.push(Sequential::from_layers(layers.split_off(lo)));
            }
            blocks.reverse();
            let mut param_off = 0usize;
            for (stage, mut block) in blocks.into_iter().enumerate() {
                let n_params = block.params().len();
                if data_idx == 0 {
                    params_per_stage[stage] = n_params;
                }
                let stage_masks = &masks[param_off..param_off + n_params];
                let mut states = Vec::with_capacity(n_params);
                for (p, mask) in block.params_mut().into_iter().zip(stage_masks) {
                    assert_eq!(p.numel(), mask.numel(), "mask shape mismatch for {}", p.name);
                    let st = ShardedSamoLayerState::from_params(
                        p.value.as_slice(),
                        mask.clone(),
                        &opt,
                        data_idx,
                        cfg.g_data,
                    );
                    st.write_dense_f32_params_into(p.value.as_mut_slice());
                    states.push(st);
                }
                if data_idx == 0 {
                    numel += states.iter().map(|s| s.numel()).sum::<usize>();
                    nnz += states.iter().map(|s| s.nnz()).sum::<usize>();
                }
                let pipe_t = pipe_meshes[data_idx][stage].take().expect("pipe endpoint");
                let data_t = data_meshes[stage][data_idx].take().expect("data endpoint");
                let lane = lane_base + (data_idx * cfg.g_inter + stage) as u64;
                let rk = StageRank {
                    stage,
                    data_idx,
                    g_inter: cfg.g_inter,
                    lane,
                    param_off,
                    block,
                    states,
                    opt: opt.clone(),
                    scaler: scaler.clone(),
                    pipe: Communicator::new(pipe_t)
                        .with_timeout(cfg.timeout)
                        .with_trace_lane(lane),
                    data: Communicator::new(data_t)
                        .with_timeout(cfg.timeout)
                        .with_trace_lane(lane),
                    microbatches: cfg.microbatches,
                    mb_rows: cfg.mb_rows,
                    max_in_flight: cfg.max_in_flight,
                    timeout: cfg.timeout,
                    force_recompute: cfg.force_recompute,
                    poisoned: false,
                    steps_taken: 0,
                    steps_skipped: 0,
                    stats: StageStats::default(),
                    input_stash: Vec::new(),
                    y_stash: Vec::new(),
                    cache_mb: None,
                    rank_dur_stats: Vec::new(),
                };
                param_off += n_params;
                let (ctx, crx) = channel::<Cmd>();
                let (rtx, rrx) = channel::<Resp>();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("samo-pp-s{stage}d{data_idx}"))
                        .spawn(move || rank_loop(rk, crx, rtx))
                        .expect("spawn stage thread"),
                );
                cmd.push(ctx);
                resp.push(rrx);
            }
        }
        ThreadedPipelineSamo {
            cfg,
            cmd,
            resp,
            handles,
            pipe_faults,
            data_faults,
            opt,
            scaler,
            params_per_stage,
            steps_taken: 0,
            steps_skipped: 0,
            step_seq: 0,
            numel,
            nnz,
        }
    }

    /// Pipeline depth.
    pub fn g_inter(&self) -> usize {
        self.cfg.g_inter
    }

    /// Data-parallel width.
    pub fn g_data(&self) -> usize {
        self.cfg.g_data
    }

    /// Fault injection handles, one per data replica's pipeline mesh
    /// (index = `data_idx`; ranks within it are stage indices).
    pub fn pipe_faults(&self) -> &[Arc<FaultController>] {
        &self.pipe_faults
    }

    /// Fault injection handles, one per stage's data mesh
    /// (index = `stage`; ranks within it are data indices).
    pub fn data_faults(&self) -> &[Arc<FaultController>] {
        &self.data_faults
    }

    /// Current loss scale (the loss-gradient closure receives it).
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Applied steps.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped on gradient overflow (all ranks skip together).
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Total parameters φ (per replica).
    pub fn numel(&self) -> usize {
        self.numel
    }

    /// Unpruned parameters fφ (per replica).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Replaces the loss scaler on every rank (and the mirror).
    pub fn set_scaler(&mut self, scaler: LossScaler) {
        self.scaler = scaler.clone();
        for tx in &self.cmd {
            tx.send(Cmd::SetScaler(scaler.clone())).expect("rank thread alive");
        }
        for rx in &self.resp {
            let Ok(Resp::Ack) = rx.recv() else {
                panic!("rank thread died during set_scaler");
            };
        }
    }

    /// Runs one pipelined training step. `input(data_idx, mb)` feeds
    /// stage 0; `loss_grad(data_idx, mb, y, scale)` turns the last
    /// stage's output into the scaled backward seed. Returns `Ok(true)`
    /// if applied, `Ok(false)` if skipped on overflow, `Err` if any
    /// rank failed (the group then needs [`Self::restore`]).
    pub fn step(
        &mut self,
        input: impl Fn(usize, usize) -> Tensor + Send + Sync + 'static,
        loss_grad: impl Fn(usize, usize, &Tensor, f32) -> Tensor + Send + Sync + 'static,
    ) -> Result<bool, String> {
        let input: InputFn = Arc::new(input);
        let loss_grad: LossGradFn = Arc::new(loss_grad);
        let step = self.step_seq;
        self.step_seq = self.step_seq.wrapping_add(1);
        for tx in &self.cmd {
            tx.send(Cmd::Step {
                input: Arc::clone(&input),
                loss_grad: Arc::clone(&loss_grad),
                step,
            })
            .map_err(|_| "a rank thread died".to_string())?;
        }
        let mut outcomes = Vec::with_capacity(self.cmd.len());
        let mut errors = Vec::new();
        for (i, rx) in self.resp.iter().enumerate() {
            let (stage, data_idx) = (i % self.cfg.g_inter, i / self.cfg.g_inter);
            match rx.recv() {
                Ok(Resp::Step(Ok(o))) => outcomes.push(o),
                Ok(Resp::Step(Err(e))) => errors.push(format!("stage {stage} (data {data_idx}): {e}")),
                Ok(_) => errors.push(format!("stage {stage} (data {data_idx}): protocol confusion")),
                Err(_) => errors.push(format!("stage {stage} (data {data_idx}): thread died")),
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("; "));
        }
        let applied = outcomes[0].applied;
        let finite = outcomes[0].finite;
        debug_assert!(
            outcomes.iter().all(|o| o.applied == applied && o.finite == finite),
            "ranks must agree on the step verdict"
        );
        // Keep the mirror scaler in lockstep with the rank replicas.
        let _ = self.scaler.check_and_update(finite);
        if applied {
            self.steps_taken += 1;
        } else {
            self.steps_skipped += 1;
        }
        Ok(applied)
    }

    /// Serializes the group as one topology-independent v2 checkpoint:
    /// shards are gathered across data ranks and stage slices
    /// concatenated in model order, so the bytes equal what a
    /// single-process [`crate::SamoTrainer`] in the same state saves.
    pub fn save(&mut self) -> bytes::Bytes {
        let snaps = self.snapshot_all();
        let g_inter = self.cfg.g_inter;
        let mut layers: Vec<crate::state::SamoLayerState> = Vec::new();
        for (stage, &n_params) in self.params_per_stage.iter().enumerate() {
            for li in 0..n_params {
                let ranks: Vec<&ShardedSamoLayerState> = (0..self.cfg.g_data)
                    .map(|d| &snaps[d * g_inter + stage].states[li])
                    .collect();
                layers.push(ShardedSamoLayerState::to_full_layer(&ranks, &self.opt));
            }
        }
        let snap = self.scaler.snapshot();
        let meta = crate::serialize::TrainerMeta {
            loss_scale: snap.scale,
            good_steps: snap.good_steps,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
        };
        crate::serialize::save_checkpoint(&layers, &meta)
    }

    /// Restores a checkpoint on every rank and re-synchronizes the
    /// group (fresh epochs on both meshes + barriers). The recovery
    /// path after a failed step: heal the faulted links first.
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), String> {
        let ck = Arc::new(checkpoint.to_vec());
        for tx in &self.cmd {
            tx.send(Cmd::Restore(Arc::clone(&ck)))
                .map_err(|_| "a rank thread died".to_string())?;
        }
        let mut errors = Vec::new();
        for (i, rx) in self.resp.iter().enumerate() {
            let (stage, data_idx) = (i % self.cfg.g_inter, i / self.cfg.g_inter);
            match rx.recv() {
                Ok(Resp::Restored(Ok(()))) => {}
                Ok(Resp::Restored(Err(e))) => errors.push(format!("stage {stage} (data {data_idx}): {e}")),
                Ok(_) => errors.push(format!("stage {stage} (data {data_idx}): protocol confusion")),
                Err(_) => errors.push(format!("stage {stage} (data {data_idx}): thread died")),
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("; "));
        }
        // Re-sync the mirror from the checkpoint's own metadata.
        let (_, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        if let Some(meta) = meta {
            self.scaler.restore_state(LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        Ok(())
    }

    /// Per-rank scheduler statistics in rank order
    /// (`data_idx · g_inter + stage`).
    pub fn stage_stats(&mut self) -> Vec<StageStats> {
        self.snapshot_all().into_iter().map(|s| s.stats).collect()
    }

    /// Runs `f` on rank `(stage, data_idx)`'s thread with exclusive
    /// access to its stage block and sharded states.
    pub fn with_rank<R, F>(&mut self, stage: usize, data_idx: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Sequential, &[ShardedSamoLayerState]) -> R + Send + 'static,
    {
        let i = data_idx * self.cfg.g_inter + stage;
        let (tx, rx) = channel();
        self.cmd[i]
            .send(Cmd::Inspect(Box::new(move |block, states| {
                let _ = tx.send(f(block, states));
            })))
            .expect("rank thread alive");
        let out = rx.recv().expect("inspect reply");
        let Ok(Resp::Ack) = self.resp[i].recv() else {
            panic!("rank thread died during inspect");
        };
        out
    }

    fn snapshot_all(&mut self) -> Vec<SnapshotData> {
        for tx in &self.cmd {
            tx.send(Cmd::Snapshot).expect("rank thread alive");
        }
        self.resp
            .iter()
            .map(|rx| match rx.recv() {
                Ok(Resp::Snapshot(s)) => *s,
                _ => panic!("rank thread died during snapshot"),
            })
            .collect()
    }
}

impl Drop for ThreadedPipelineSamo {
    fn drop(&mut self) {
        for tx in &self.cmd {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
