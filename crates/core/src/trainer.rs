//! End-to-end training integration: SAMO-compressed training and the
//! dense masked baseline it must be numerically equivalent to, plus the
//! compressed data-parallel gradient all-reduce (paper Sec. IV-A).

use crate::state::{RemapScratch, SamoLayerState};
use nn::layer::Layer;
use nn::mixed::{DenseMixedState, LossScaler, Optimizer};
use prune::{Mask, MaskSchedule};
use tensor::f16::F16;

/// SAMO training state for a whole model: one compressed layer state per
/// parameter tensor, plus the shared loss scaler and (optionally) a
/// dynamic-sparsity [`MaskSchedule`] with its per-layer remap scratch.
pub struct SamoTrainer {
    pub layers: Vec<SamoLayerState>,
    pub opt: Optimizer,
    pub scaler: LossScaler,
    steps_taken: u64,
    steps_skipped: u64,
    schedule: Option<MaskSchedule>,
    remap_scratch: Vec<RemapScratch>,
    remap_events: u64,
}

impl SamoTrainer {
    /// Builds the trainer from a model's current parameters and one mask
    /// per parameter tensor (in `model.params()` order). The model's
    /// parameters are immediately pruned in place.
    pub fn new(model: &mut impl Layer, masks: Vec<Mask>, opt: Optimizer) -> SamoTrainer {
        let params = model.params_mut();
        assert_eq!(
            params.len(),
            masks.len(),
            "need exactly one mask per parameter tensor"
        );
        let mut layers = Vec::with_capacity(params.len());
        for (p, mask) in params.into_iter().zip(masks) {
            assert_eq!(p.numel(), mask.numel(), "mask shape mismatch for {}", p.name);
            let st = SamoLayerState::from_params(p.value.as_slice(), mask, &opt);
            // Load the (pruned, fp16-rounded) parameters back into the
            // compute model — forward/backward run on widened θ16.
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            layers.push(st);
        }
        SamoTrainer {
            layers,
            opt,
            scaler: LossScaler::default(),
            steps_taken: 0,
            steps_skipped: 0,
            schedule: None,
            remap_scratch: Vec::new(),
            remap_events: 0,
        }
    }

    /// Installs a dynamic-sparsity schedule: on every schedule update
    /// step, [`Self::step`] recomputes each layer's mask and remaps the
    /// compressed state in place before compressing the new gradient.
    /// Pre-sizes one [`RemapScratch`] per layer so remap events never
    /// allocate once warm.
    pub fn set_mask_schedule(&mut self, schedule: MaskSchedule) {
        let opt = &self.opt;
        self.remap_scratch = self
            .layers
            .iter_mut()
            .map(|l| RemapScratch::for_layer(l, opt))
            .collect();
        self.schedule = Some(schedule);
    }

    /// The installed dynamic-sparsity schedule, if any.
    pub fn mask_schedule(&self) -> Option<&MaskSchedule> {
        self.schedule.as_ref()
    }

    /// Number of steps at which at least one layer's mask actually moved.
    pub fn remap_events(&self) -> u64 {
        self.remap_events
    }

    /// The deterministic step index `t` the schedule is evaluated at:
    /// applied plus skipped steps, so every rank of a data-parallel
    /// group (which agrees on the skip verdict bitwise) agrees on the
    /// remap timeline too.
    pub fn step_index(&self) -> u64 {
        self.steps_taken + self.steps_skipped
    }

    /// Total parameters φ across all layers.
    pub fn numel(&self) -> usize {
        self.layers.iter().map(|l| l.numel()).sum()
    }

    /// Unpruned parameters fφ.
    pub fn nnz(&self) -> usize {
        self.layers.iter().map(|l| l.nnz()).sum()
    }

    /// Measured model-state bytes (peak includes downcast temp).
    pub fn model_state_bytes(&self, peak: bool) -> u64 {
        self.layers.iter().map(|l| l.measured_bytes(peak)).sum()
    }

    /// Steps applied (not skipped by the loss scaler).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped due to gradient overflow.
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Current loss scale to multiply the loss by before backward.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Serializes the compressed training state (see `crate::serialize`
    /// for the v2 format) including the loss-scaler state and step
    /// counters, so a resumed run continues the exact scaling schedule.
    /// The compute model is *not* included — θ16 is reconstructible from
    /// the checkpoint via [`Self::restore`].
    pub fn save(&self) -> bytes::Bytes {
        crate::serialize::save_checkpoint(&self.layers, &self.meta())
    }

    /// The trainer-level state a v2 checkpoint carries.
    fn meta(&self) -> crate::serialize::TrainerMeta {
        let snap = self.scaler.snapshot();
        crate::serialize::TrainerMeta {
            loss_scale: snap.scale,
            good_steps: snap.good_steps,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
        }
    }

    /// Restores a checkpoint produced by [`Self::save`] into this
    /// trainer and writes the reconstructed parameters into `model`.
    /// The model/mask structure must match what was saved. For a v2
    /// checkpoint the loss-scaler state and step counters are restored
    /// too; a legacy v1 buffer leaves them untouched.
    pub fn restore(&mut self, checkpoint: &[u8], model: &mut impl Layer) -> Result<(), String> {
        let (layers, meta) = crate::serialize::load_checkpoint(checkpoint, &self.opt)?;
        if layers.len() != self.layers.len() {
            return Err(format!(
                "checkpoint has {} layers, trainer has {}",
                layers.len(),
                self.layers.len()
            ));
        }
        for (new, old) in layers.iter().zip(&self.layers) {
            if new.mask().shape() != old.mask().shape() {
                return Err("checkpoint mask shape mismatch".into());
            }
        }
        self.layers = layers;
        if self.schedule.is_some() {
            // The restored layers are fresh allocations without remap
            // headroom; rebuild the scratch (and re-reserve) so future
            // remap events stay allocation-free.
            let opt = &self.opt;
            self.remap_scratch = self
                .layers
                .iter_mut()
                .map(|l| RemapScratch::for_layer(l, opt))
                .collect();
        }
        for (p, st) in model.params_mut().into_iter().zip(&self.layers) {
            if p.numel() != st.numel() {
                return Err(format!("parameter {} size mismatch", p.name));
            }
            st.write_dense_f32_params_into(p.value.as_mut_slice());
            p.zero_grad();
        }
        if let Some(meta) = meta {
            self.scaler.restore_state(nn::mixed::LossScalerState {
                scale: meta.loss_scale,
                good_steps: meta.good_steps,
            });
            self.steps_taken = meta.steps_taken;
            self.steps_skipped = meta.steps_skipped;
        }
        if telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.recoveries").inc();
        }
        Ok(())
    }

    /// Recovery path: restores the last good checkpoint *and* backs the
    /// loss scale off once, so the replayed steps retry with a gentler
    /// scale than the one that just diverged. Used by the divergence
    /// sentinel (`crate::sentinel`).
    pub fn rollback(&mut self, checkpoint: &[u8], model: &mut impl Layer) -> Result<(), String> {
        self.restore(checkpoint, model)?;
        self.scaler.force_backoff();
        telemetry::log_info!(
            "rollback: restored step {} (skipped {}), loss scale backed off to {}",
            self.steps_taken,
            self.steps_skipped,
            self.scaler.scale()
        );
        if telemetry::enabled() {
            telemetry::global().counter("samo.ckpt.rollbacks").inc();
        }
        Ok(())
    }

    /// Completes a training step after `model` has run forward/backward
    /// with the loss multiplied by [`Self::loss_scale`], using the two
    /// fused single-pass kernels: gather + f16-round + overflow-detect
    /// ([`SamoLayerState::compress_grad_fused`]), then upscale +
    /// optimizer + downcast + scatter writing the model's dense f32
    /// parameters in place ([`SamoLayerState::optimizer_step_fused`]).
    /// Returns `false` if the step was skipped.
    ///
    /// The steady-state path performs no heap allocation: both kernels
    /// work in place, and the skipped-step path only zeroes gradients
    /// (asserted by `tests/zero_alloc.rs`).
    ///
    /// With telemetry enabled, each fused kernel is timed
    /// (`samo.step.compress`, `samo.step.optimizer`) and one
    /// [`telemetry::StepEvent`] line is appended to `metrics.jsonl`;
    /// disabled, the only overhead is one atomic load.
    pub fn step(&mut self, model: &mut impl Layer) -> bool {
        let tel = telemetry::enabled();
        if self.schedule.is_some() {
            self.maybe_remap(model);
        }
        // Backward pass hook: compress gradients layer by layer, folding
        // the overflow scan into the same pass. The allocation-free
        // `for_each_param_mut` traversal (not `params_mut`, which builds
        // a Vec) keeps the whole step off the heap.
        let sp = tel.then(|| telemetry::span("samo.step.compress"));
        let mut finite = true;
        {
            let layers = &mut self.layers;
            let mut i = 0;
            model.for_each_param_mut(&mut |p| {
                finite &= layers[i].compress_grad_fused(p.grad.as_slice());
                i += 1;
            });
            assert_eq!(i, layers.len());
        }
        let t_compress = sp.map(telemetry::SpanGuard::finish);
        let scale = self.scaler.scale();
        let proceed = self.scaler.check_and_update(finite);
        let mut t_optimizer = None;
        if proceed {
            let sp = tel.then(|| telemetry::span("samo.step.optimizer"));
            let opt = &self.opt;
            let layers = &mut self.layers;
            let inv_scale = 1.0 / scale;
            let mut i = 0;
            model.for_each_param_mut(&mut |p| {
                layers[i].optimizer_step_fused(opt, inv_scale, p.value.as_mut_slice());
                p.zero_grad();
                i += 1;
            });
            t_optimizer = sp.map(telemetry::SpanGuard::finish);
            self.steps_taken += 1;
        } else {
            model.for_each_param_mut(&mut |p| p.zero_grad());
            self.steps_skipped += 1;
        }
        if tel {
            self.record_step(proceed, scale, t_compress, t_optimizer, None);
        }
        proceed
    }

    /// Dynamic-sparsity hook run at the top of [`Self::step`]: if the
    /// schedule fires at the current step index, recompute each layer's
    /// mask from the dense weights and the f16-canonicalized dense
    /// gradient (the *grow score* — exactly the values a data-parallel
    /// gradient ring reduces, so every runtime ranks regrowth candidates
    /// identically) and remap the compressed state in place. Runs before
    /// the compress/verdict phase so the new mask's gradient slots are
    /// filled by the normal fused compress whether or not the scaler
    /// skips the step — the remap timeline is therefore a pure function
    /// of the step index.
    fn maybe_remap(&mut self, model: &mut impl Layer) {
        let t = self.step_index();
        let Some(sched) = &self.schedule else { return };
        if !sched.is_update_step(t) {
            return;
        }
        let sched = sched.clone();
        let tel = telemetry::enabled();
        let sp = tel.then(|| telemetry::span("samo.step.remap"));
        let layers = &mut self.layers;
        let scratch = &mut self.remap_scratch;
        let mut i = 0;
        let mut moved = false;
        model.for_each_param_mut(&mut |p| {
            let layer = &mut layers[i];
            let sc = &mut scratch[i];
            sc.score.clear();
            sc.score
                .extend(p.grad.as_slice().iter().map(|&g| F16::from_f32(g).to_f32()));
            let new_mask = sched.next_mask(t, p.value.as_slice(), &sc.score, layer.mask());
            if &new_mask != layer.mask() {
                layer.remap_compressed_state(new_mask, sc);
                layer.write_dense_f32_params_into(p.value.as_mut_slice());
                moved = true;
            }
            i += 1;
        });
        assert_eq!(i, layers.len());
        if moved {
            self.remap_events += 1;
            if tel {
                telemetry::global().counter("samo.remap_events").inc();
            }
        }
        drop(sp);
    }

    /// Cold path: metric/JSONL bookkeeping for one completed `step()`.
    fn record_step(
        &self,
        applied: bool,
        scale_used: f32,
        t_compress: Option<f64>,
        t_optimizer: Option<f64>,
        t_expand: Option<f64>,
    ) {
        let numel = self.numel() as u64;
        let nnz = self.nnz() as u64;
        let reg = telemetry::global();
        reg.counter(if applied {
            "samo.steps_taken"
        } else {
            "samo.steps_skipped"
        })
        .inc();
        reg.gauge("samo.loss_scale")
            .set(f64::from(self.scaler.scale()));
        let bytes = self.model_state_bytes(true);
        reg.gauge("samo.model_state_bytes").set_max(bytes as f64);
        let mut phases = Vec::new();
        if let Some(t) = t_compress {
            phases.push(("compress", t));
        }
        if let Some(t) = t_optimizer {
            phases.push(("optimizer", t));
        }
        if let Some(t) = t_expand {
            phases.push(("expand", t));
        }
        telemetry::jsonl::emit_step(&telemetry::StepEvent {
            kind: "samo",
            step: self.steps_taken + self.steps_skipped - 1,
            applied,
            loss_scale: scale_used,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
            numel,
            nnz,
            model_state_bytes: bytes,
            formula_state_bytes: Some(formula_state_bytes(&self.opt, numel, nnz)),
            allreduce_bytes: samo_allreduce_bytes(nnz),
            phases,
        });
    }
}

/// Closed-form peak SAMO model-state bytes for `phi` parameters with
/// `nnz` kept: the paper's `2φ + 24·nnz` for Adam (Eq. 2's `24fφ + 2φ`
/// at exact integer granularity) and `2φ + 20·nnz` for SGD with
/// momentum. Matches [`SamoTrainer::model_state_bytes`] exactly.
pub fn formula_state_bytes(opt: &Optimizer, phi: u64, nnz: u64) -> u64 {
    match opt {
        Optimizer::Adam(_) => 2 * phi + 24 * nnz,
        Optimizer::Sgd(_) => 2 * phi + 20 * nnz,
    }
}

/// Closed-form dense mixed-precision model-state bytes: `20φ` (Adam) or
/// `16φ` (SGD). Matches [`DenseMaskedTrainer::model_state_bytes`].
pub fn dense_formula_state_bytes(opt: &Optimizer, phi: u64) -> u64 {
    match opt {
        Optimizer::Adam(_) => 20 * phi,
        Optimizer::Sgd(_) => 16 * phi,
    }
}

/// Dense mixed-precision baseline with gradient masking: trains exactly
/// the same subnetwork as SAMO but stores everything dense (`M_default`).
/// SAMO must reproduce this trainer's trajectory bit-for-bit on θ32 —
/// that equivalence is the reproduction's core correctness theorem.
pub struct DenseMaskedTrainer {
    pub layers: Vec<(DenseMixedState, Mask)>,
    pub opt: Optimizer,
    pub scaler: LossScaler,
    steps_taken: u64,
    steps_skipped: u64,
}

impl DenseMaskedTrainer {
    /// Mirrors [`SamoTrainer::new`] with dense storage.
    pub fn new(model: &mut impl Layer, masks: Vec<Mask>, opt: Optimizer) -> DenseMaskedTrainer {
        let params = model.params_mut();
        assert_eq!(params.len(), masks.len());
        let mut layers = Vec::with_capacity(params.len());
        for (p, mask) in params.into_iter().zip(masks) {
            let mut masked = p.value.as_slice().to_vec();
            mask.apply(&mut masked);
            let st = DenseMixedState::from_params(&masked, &opt);
            // Load fp16-rounded pruned params into the compute model.
            let dense: Vec<f32> = st.theta16.iter().map(|v| v.to_f32()).collect();
            p.value.as_mut_slice().copy_from_slice(&dense);
            layers.push((st, mask));
        }
        DenseMaskedTrainer {
            layers,
            opt,
            scaler: LossScaler::default(),
            steps_taken: 0,
            steps_skipped: 0,
        }
    }

    /// Current loss scale.
    pub fn loss_scale(&self) -> f32 {
        self.scaler.scale()
    }

    /// Measured model-state bytes (20φ for Adam).
    pub fn model_state_bytes(&self) -> u64 {
        self.layers.iter().map(|(st, _)| st.bytes() as u64).sum()
    }

    /// Total parameters φ across all layers.
    pub fn numel(&self) -> usize {
        self.layers.iter().map(|(_, m)| m.numel()).sum()
    }

    /// Unpruned parameters fφ.
    pub fn nnz(&self) -> usize {
        self.layers.iter().map(|(_, m)| m.nnz()).sum()
    }

    /// Steps applied (not skipped by the loss scaler).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Steps skipped due to gradient overflow.
    pub fn steps_skipped(&self) -> u64 {
        self.steps_skipped
    }

    /// Dense counterpart of [`SamoTrainer::step`]: masks gradients (the
    /// subnetwork constraint), runs the dense optimizer, re-masks
    /// parameters, writes back.
    pub fn step(&mut self, model: &mut impl Layer) -> bool {
        let tel = telemetry::enabled();
        let params = model.params_mut();
        assert_eq!(params.len(), self.layers.len());
        let sp = tel.then(|| telemetry::span("dense.step.mask_grad"));
        for (p, (st, mask)) in params.iter().zip(&mut self.layers) {
            let mut g = p.grad.as_slice().to_vec();
            mask.apply(&mut g);
            st.set_grad_from_f32(&g);
        }
        let t_mask_grad = sp.map(telemetry::SpanGuard::finish);
        let finite = !self
            .layers
            .iter()
            .any(|(st, _)| st.grad16.iter().any(|g| !g.is_finite()));
        let scale = self.scaler.scale();
        let proceed = self.scaler.check_and_update(finite);
        let mut t_optimizer = None;
        if proceed {
            let sp = tel.then(|| telemetry::span("dense.step.optimizer"));
            for (p, (st, mask)) in params.into_iter().zip(&mut self.layers) {
                st.optimizer_step(&self.opt, 1.0 / scale);
                // Keep pruned positions exactly zero (masked subnetwork
                // training; weight decay would otherwise leave them 0
                // anyway since they start at 0 with 0 grad, but we pin
                // them for exactness).
                let mut t32 = st.theta32.clone();
                mask.apply(&mut t32);
                st.theta32.copy_from_slice(&t32);
                tensor::ops::narrow_into(&st.theta32, &mut st.theta16);
                let dense: Vec<f32> = st.theta16.iter().map(|v| v.to_f32()).collect();
                p.value.as_mut_slice().copy_from_slice(&dense);
                p.zero_grad();
            }
            t_optimizer = sp.map(telemetry::SpanGuard::finish);
            self.steps_taken += 1;
        } else {
            for p in params {
                p.zero_grad();
            }
            self.steps_skipped += 1;
        }
        if tel {
            self.record_step(proceed, scale, t_mask_grad, t_optimizer);
        }
        proceed
    }

    /// Cold path: metric/JSONL bookkeeping for one completed `step()`.
    fn record_step(
        &self,
        applied: bool,
        scale_used: f32,
        t_mask_grad: Option<f64>,
        t_optimizer: Option<f64>,
    ) {
        let numel = self.numel() as u64;
        let nnz = self.nnz() as u64;
        let reg = telemetry::global();
        reg.counter(if applied {
            "dense.steps_taken"
        } else {
            "dense.steps_skipped"
        })
        .inc();
        reg.gauge("dense.loss_scale")
            .set(f64::from(self.scaler.scale()));
        let bytes = self.model_state_bytes();
        reg.gauge("dense.model_state_bytes").set_max(bytes as f64);
        let mut phases = Vec::new();
        if let Some(t) = t_mask_grad {
            phases.push(("mask_grad", t));
        }
        if let Some(t) = t_optimizer {
            phases.push(("optimizer", t));
        }
        telemetry::jsonl::emit_step(&telemetry::StepEvent {
            kind: "dense_masked",
            step: self.steps_taken + self.steps_skipped - 1,
            applied,
            loss_scale: scale_used,
            steps_taken: self.steps_taken,
            steps_skipped: self.steps_skipped,
            numel,
            nnz,
            model_state_bytes: bytes,
            formula_state_bytes: Some(dense_formula_state_bytes(&self.opt, numel)),
            allreduce_bytes: dense_allreduce_bytes(numel),
            phases,
        });
    }
}

/// Global L2 norm of the model's current (scaled) gradients — the signal
/// the divergence sentinel (`crate::sentinel`) watches alongside the
/// loss. fp64 accumulation so large models don't overflow the sum.
pub fn grad_l2_norm(model: &impl Layer) -> f64 {
    let mut sum = 0.0f64;
    for p in model.params() {
        for &g in p.grad.as_slice() {
            sum += f64::from(g) * f64::from(g);
        }
    }
    sum.sqrt()
}

/// In-place mean all-reduce over per-replica compressed fp16 gradient
/// buffers (one buffer per data-parallel rank) — the collective SAMO
/// issues instead of a dense `φ`-sized all-reduce (paper Sec. IV-A).
/// All buffers end up holding the mean.
///
/// Delegates to [`comms::reference::allreduce_mean_f16`], the exact-sum
/// sequential oracle: the chunked ring all-reduce in `comms` computes
/// the same function bit-for-bit, which is what lets the threaded
/// data-parallel runtime match the in-process one exactly.
///
/// Degenerate inputs are rejected instead of reduced nonsensically: an
/// empty replica set is a no-op `Ok` (a zero-rank collective has no
/// defined mean but also nothing to corrupt), while mismatched buffer
/// lengths — ranks disagreeing about the compressed layout — are a real
/// collective error and return `Err`.
pub fn allreduce_mean_f16(replicas: &mut [&mut [F16]]) -> Result<(), String> {
    comms::reference::allreduce_mean_f16(replicas).map_err(|e| e.to_string())
}

/// Message bytes of a dense fp16 gradient all-reduce for `phi` params
/// (flat payload model, Eq. 9: every parameter crosses the wire once).
pub fn dense_allreduce_bytes(phi: u64) -> u64 {
    2 * phi
}

/// Message bytes of SAMO's compressed all-reduce: only `fφ` values move.
pub fn samo_allreduce_bytes(nnz: u64) -> u64 {
    2 * nnz
}

/// Per-rank wire bytes of a dense fp16 *ring* all-reduce across `world`
/// ranks: `2·(G−1)/G · φ` values of 2 bytes (reduce-scatter plus
/// all-gather, each moving `(G−1)/G` of the buffer).
pub fn dense_ring_allreduce_bytes(phi: u64, world: u64) -> u64 {
    comms::ring_allreduce_model_bytes(phi, world, 2)
}

/// Per-rank wire bytes of SAMO's compressed fp16 ring all-reduce: the
/// same ring factor over the `fφ` surviving coordinates, so the
/// compressed/dense ratio stays `f` at every world size.
pub fn samo_ring_allreduce_bytes(nnz: u64, world: u64) -> u64 {
    comms::ring_allreduce_model_bytes(nnz, world, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::linear::Linear;
    use nn::loss::mse;
    use nn::optim::AdamConfig;
    use tensor::Tensor;

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig {
            lr: 0.05,
            ..Default::default()
        })
    }

    #[test]
    fn trainer_prunes_model_at_init() {
        let mut model = Linear::new(8, 8, false, 1);
        let mask = prune::random_prune(&[8, 8], 0.75, 2);
        let trainer = SamoTrainer::new(&mut model, vec![mask.clone()], adam());
        assert_eq!(trainer.nnz(), 16);
        let w = model.params()[0].value.as_slice();
        let zeros = w.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 48);
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        // y = x * 0.5 target; a pruned linear layer must still fit it on
        // its unpruned coordinates.
        let mut model = Linear::new(4, 4, true, 3);
        let masks = vec![
            prune::random_prune(&[4, 4], 0.5, 4),
            Mask::dense(&[4]), // keep bias dense
        ];
        let mut trainer = SamoTrainer::new(&mut model, masks, adam());
        let x = Tensor::randn(&[16, 4], 1.0, 5);
        let target = Tensor::from_vec(&[16, 4], x.as_slice().iter().map(|v| v * 0.5).collect());

        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..150 {
            let y = model.forward(&x);
            let (loss, mut dy) = mse(&y, &target);
            tensor::ops::scale(trainer.loss_scale(), dy.as_mut_slice());
            model.backward(&dy);
            trainer.step(&mut model);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.3,
            "loss {} -> {last_loss}",
            first_loss.unwrap()
        );
        assert!(trainer.steps_taken() > 100);
    }

    #[test]
    fn pruned_positions_never_move() {
        let mut model = Linear::new(6, 6, false, 7);
        let mask = prune::random_prune(&[6, 6], 0.8, 8);
        let pruned_positions: Vec<usize> = {
            let keep = mask.to_bools();
            (0..36).filter(|&i| !keep[i]).collect()
        };
        let mut trainer = SamoTrainer::new(&mut model, vec![mask], adam());
        let x = Tensor::randn(&[8, 6], 1.0, 9);
        let target = Tensor::randn(&[8, 6], 1.0, 10);
        for _ in 0..20 {
            let y = model.forward(&x);
            let (_, mut dy) = mse(&y, &target);
            tensor::ops::scale(trainer.loss_scale(), dy.as_mut_slice());
            model.backward(&dy);
            trainer.step(&mut model);
        }
        let w = model.params()[0].value.as_slice();
        for &i in &pruned_positions {
            assert_eq!(w[i], 0.0, "pruned weight {i} moved");
        }
    }

    #[test]
    fn overflow_skips_step_and_backs_off_scale() {
        let mut model = Linear::new(2, 2, false, 11);
        let mut trainer = SamoTrainer::new(&mut model, vec![Mask::dense(&[2, 2])], adam());
        let before = model.params()[0].value.as_slice().to_vec();
        let scale_before = trainer.loss_scale();
        // Poison the gradient.
        model.params_mut()[0]
            .grad
            .as_mut_slice()
            .copy_from_slice(&[f32::INFINITY, 0.0, 0.0, 0.0]);
        let applied = trainer.step(&mut model);
        assert!(!applied);
        assert_eq!(model.params()[0].value.as_slice(), &before[..]);
        assert!(trainer.loss_scale() < scale_before);
        assert_eq!(trainer.steps_skipped(), 1);
    }

    #[test]
    fn memory_vs_dense_baseline() {
        let phi = 50_000usize;
        let p = 0.9;
        let mask = prune::random_prune(&[phi], p, 12);

        let mut m1 = Linear::from_weights(Tensor::zeros(&[phi / 100, 100]), None);
        let samo = SamoTrainer::new(&mut m1, vec![mask.clone()], adam());
        let mut m2 = Linear::from_weights(Tensor::zeros(&[phi / 100, 100]), None);
        let dense = DenseMaskedTrainer::new(&mut m2, vec![mask], adam());

        assert_eq!(dense.model_state_bytes(), 20 * phi as u64);
        assert_eq!(
            samo.model_state_bytes(true),
            crate::memory::m_samo_bytes(phi as u64, p)
        );
        let saving = 1.0 - samo.model_state_bytes(true) as f64 / dense.model_state_bytes() as f64;
        assert!((saving - 0.78).abs() < 0.01, "saving {saving}");
    }

    #[test]
    fn microbatch_accumulation_equals_full_batch() {
        // AxoNN processes a batch as pipelined microbatches whose
        // gradients accumulate before the optimizer step (Sec. II-E);
        // SAMO compresses only at step time, so accumulating two
        // half-batches must equal one full-batch step exactly.
        let make = || {
            let mut m = Linear::new(6, 6, false, 41);
            let masks = vec![prune::random_prune(&[6, 6], 0.5, 42)];
            let t = SamoTrainer::new(&mut m, masks, adam());
            (m, t)
        };
        let x1 = Tensor::randn(&[3, 6], 1.0, 43);
        let x2 = Tensor::randn(&[3, 6], 1.0, 44);
        let t1 = Tensor::randn(&[3, 6], 1.0, 45);
        let t2 = Tensor::randn(&[3, 6], 1.0, 46);

        // Microbatched: two forward/backward passes, one step. Use sum
        // (not mean) losses so accumulation is the exact full-batch
        // gradient.
        let (mut m_micro, mut tr_micro) = make();
        for (x, t) in [(&x1, &t1), (&x2, &t2)] {
            let y = m_micro.forward(x);
            let (_, mut dy) = mse(&y, t);
            // Undo mse's 1/N and apply the loss scale: dy · N · scale.
            tensor::ops::scale(tr_micro.loss_scale() * y.numel() as f32, dy.as_mut_slice());
            m_micro.backward(&dy);
        }
        tr_micro.step(&mut m_micro);

        // Full batch: concatenated inputs, one forward/backward.
        let (mut m_full, mut tr_full) = make();
        let xall = Tensor::from_vec(
            &[6, 6],
            x1.as_slice().iter().chain(x2.as_slice()).copied().collect(),
        );
        let tall = Tensor::from_vec(
            &[6, 6],
            t1.as_slice().iter().chain(t2.as_slice()).copied().collect(),
        );
        let y = m_full.forward(&xall);
        let (_, mut dy) = mse(&y, &tall);
        tensor::ops::scale(tr_full.loss_scale() * y.numel() as f32, dy.as_mut_slice());
        m_full.backward(&dy);
        tr_full.step(&mut m_full);

        for (a, b) in tr_micro.layers.iter().zip(&tr_full.layers) {
            for (x, y) in a.theta32.iter().zip(&b.theta32) {
                assert!(
                    (x - y).abs() < 2e-2 * (1.0 + x.abs()),
                    "accumulated {x} vs full-batch {y}"
                );
            }
        }
    }

    #[test]
    fn mask_schedule_remaps_and_memory_tracks_the_trajectory() {
        use prune::MomentumPruneRegrow;
        let mut model = Linear::new(12, 12, false, 71);
        let phi = 144u64;
        // Trajectory sparsifies 0.5 -> 0.9 then densifies back to 0.25.
        let traj = MomentumPruneRegrow::new(vec![(0, 0.5), (6, 0.9), (12, 0.25)], 3, 0.1);
        let start = prune::magnitude_prune(
            model.params()[0].value.as_slice(),
            &[12, 12],
            traj.sparsity_at(0),
        );
        let mut tr = SamoTrainer::new(&mut model, vec![start], adam());
        tr.set_mask_schedule(MaskSchedule::MomentumPruneRegrow(traj.clone()));

        let x = Tensor::randn(&[8, 12], 1.0, 72);
        let target = Tensor::randn(&[8, 12], 1.0, 73);
        let mut seen_nnz = std::collections::BTreeSet::new();
        for _ in 0..14 {
            let t = tr.step_index();
            let y = model.forward(&x);
            let (_, mut dy) = mse(&y, &target);
            tensor::ops::scale(tr.loss_scale(), dy.as_mut_slice());
            model.backward(&dy);
            tr.step(&mut model);
            if traj.is_update_step(t) {
                let want = ((1.0 - traj.sparsity_at(t)) * phi as f64).round() as usize;
                assert_eq!(tr.nnz(), want, "nnz off trajectory at t = {t}");
            }
            seen_nnz.insert(tr.nnz());
            // Memory follows 24(1 − p(t))φ + 2φ as p evolves.
            assert_eq!(
                tr.model_state_bytes(true),
                formula_state_bytes(&tr.opt, phi, tr.nnz() as u64)
            );
            // Dense view invariant: pruned positions are exactly zero.
            let keep = tr.layers[0].mask().to_bools();
            for (i, &w) in model.params()[0].value.as_slice().iter().enumerate() {
                if !keep[i] {
                    assert_eq!(w, 0.0, "pruned weight {i} nonzero after remap");
                }
            }
        }
        assert!(
            tr.remap_events() >= 3,
            "expected >= 3 mask changes, saw {}",
            tr.remap_events()
        );
        assert!(seen_nnz.len() >= 3, "mask never moved: {seen_nnz:?}");
        // Final phase densified: more survivors than the start.
        assert_eq!(tr.nnz(), ((1.0 - 0.25) * phi as f64).round() as usize);
    }

    #[test]
    fn trainer_save_restore_resumes_identically() {
        let make = || {
            let mut model = Linear::new(8, 8, true, 21);
            let masks = vec![
                prune::random_prune(&[8, 8], 0.75, 22),
                Mask::dense(&[8]),
            ];
            let tr = SamoTrainer::new(&mut model, masks, adam());
            (model, tr)
        };
        let (mut model, mut tr) = make();
        let x = Tensor::randn(&[4, 8], 1.0, 23);
        let target = Tensor::randn(&[4, 8], 1.0, 24);
        let train_step = |m: &mut Linear, t: &mut SamoTrainer| {
            let y = m.forward(&x);
            let (_, mut dy) = mse(&y, &target);
            tensor::ops::scale(t.loss_scale(), dy.as_mut_slice());
            m.backward(&dy);
            t.step(m);
        };
        for _ in 0..4 {
            train_step(&mut model, &mut tr);
        }
        let checkpoint = tr.save();

        // Continue live.
        for _ in 0..3 {
            train_step(&mut model, &mut tr);
        }

        // Restore into a fresh trainer/model and replay.
        let (mut model2, mut tr2) = make();
        tr2.restore(&checkpoint, &mut model2).unwrap();
        assert_eq!(model.params().len(), model2.params().len());
        for _ in 0..3 {
            train_step(&mut model2, &mut tr2);
        }
        for (a, b) in model.params().iter().zip(model2.params()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice(), "{}", a.name);
        }
    }

    #[test]
    fn restore_rejects_structural_mismatch() {
        let mut m1 = Linear::new(4, 4, false, 31);
        let tr1 = SamoTrainer::new(&mut m1, vec![Mask::dense(&[4, 4])], adam());
        let ckpt = tr1.save();

        let mut m2 = Linear::new(6, 6, false, 32);
        let mut tr2 = SamoTrainer::new(&mut m2, vec![Mask::dense(&[6, 6])], adam());
        assert!(tr2.restore(&ckpt, &mut m2).is_err());
    }

    #[test]
    fn allreduce_mean_is_elementwise_mean() {
        let mut a = vec![F16::from_f32(1.0), F16::from_f32(4.0)];
        let mut b = vec![F16::from_f32(3.0), F16::from_f32(0.0)];
        {
            let mut bufs: Vec<&mut [F16]> = vec![&mut a, &mut b];
            allreduce_mean_f16(&mut bufs).unwrap();
        }
        assert_eq!(a[0].to_f32(), 2.0);
        assert_eq!(a[1].to_f32(), 2.0);
        assert_eq!(b[0].to_f32(), 2.0);
        assert_eq!(b[1].to_f32(), 2.0);
    }

    #[test]
    fn allreduce_on_compressed_equals_compress_of_allreduce() {
        use crate::compressed::{compress_f16, expand_f16};
        let mask = prune::random_prune(&[64], 0.8, 13);
        let d1: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 * 0.5)).collect();
        let d2: Vec<F16> = (0..64).map(|i| F16::from_f32(32.0 - i as f32)).collect();

        // Path A: compress then all-reduce.
        let mut c1 = compress_f16(&d1, &mask);
        let mut c2 = compress_f16(&d2, &mask);
        {
            let mut bufs: Vec<&mut [F16]> = vec![&mut c1, &mut c2];
            allreduce_mean_f16(&mut bufs).unwrap();
        }

        // Path B: all-reduce dense then compress.
        let mut e1 = expand_f16(&compress_f16(&d1, &mask), &mask);
        let mut e2 = expand_f16(&compress_f16(&d2, &mask), &mask);
        {
            let mut bufs: Vec<&mut [F16]> = vec![&mut e1, &mut e2];
            allreduce_mean_f16(&mut bufs).unwrap();
        }
        let cref = compress_f16(&e1, &mask);
        assert_eq!(c1, cref);
    }

    #[test]
    fn allreduce_rejects_degenerate_inputs() {
        // Empty replica set: nothing to reduce, explicit no-op.
        let mut none: Vec<&mut [F16]> = vec![];
        assert!(allreduce_mean_f16(&mut none).is_ok());

        // Mismatched compressed layouts are a collective error.
        let mut a = vec![F16::from_f32(1.0); 4];
        let mut b = vec![F16::from_f32(1.0); 3];
        let a_before = a.clone();
        let mut bufs: Vec<&mut [F16]> = vec![&mut a, &mut b];
        let err = allreduce_mean_f16(&mut bufs).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
        assert_eq!(a, a_before, "failed allreduce must not write");
    }

    #[test]
    fn save_restores_scaler_state_and_counters() {
        let mut model = Linear::new(4, 4, false, 61);
        let mut tr = SamoTrainer::new(&mut model, vec![Mask::dense(&[4, 4])], adam());
        // Force one skip (backoff) and a couple of good steps.
        model.params_mut()[0].grad.as_mut_slice()[0] = f32::INFINITY;
        tr.step(&mut model);
        for _ in 0..2 {
            model.params_mut()[0].grad.as_mut_slice().fill(0.01);
            tr.step(&mut model);
        }
        assert_eq!(tr.steps_taken(), 2);
        assert_eq!(tr.steps_skipped(), 1);
        let scale = tr.loss_scale();
        let ckpt = tr.save();

        let mut model2 = Linear::new(4, 4, false, 62);
        let mut tr2 = SamoTrainer::new(&mut model2, vec![Mask::dense(&[4, 4])], adam());
        tr2.restore(&ckpt, &mut model2).unwrap();
        assert_eq!(tr2.steps_taken(), 2);
        assert_eq!(tr2.steps_skipped(), 1);
        assert_eq!(tr2.loss_scale(), scale);
        assert_eq!(tr2.scaler.snapshot(), tr.scaler.snapshot());
    }

    #[test]
    fn rollback_restores_state_and_backs_off_scale() {
        let mut model = Linear::new(4, 4, false, 63);
        let mut tr = SamoTrainer::new(&mut model, vec![Mask::dense(&[4, 4])], adam());
        for _ in 0..3 {
            model.params_mut()[0].grad.as_mut_slice().fill(0.02);
            tr.step(&mut model);
        }
        let good = tr.save();
        let scale = tr.loss_scale();
        let theta: Vec<f32> = model.params()[0].value.as_slice().to_vec();

        // "Diverge": take more steps, then roll back.
        for _ in 0..2 {
            model.params_mut()[0].grad.as_mut_slice().fill(5.0);
            tr.step(&mut model);
        }
        tr.rollback(&good, &mut model).unwrap();
        assert_eq!(model.params()[0].value.as_slice(), &theta[..]);
        assert_eq!(tr.steps_taken(), 3);
        assert_eq!(tr.loss_scale(), scale * 0.5, "rollback must back off the scale");
    }

    #[test]
    fn grad_norm_reflects_gradients() {
        let mut model = Linear::new(2, 2, false, 64);
        model.params_mut()[0]
            .grad
            .as_mut_slice()
            .copy_from_slice(&[3.0, 4.0, 0.0, 0.0]);
        assert!((grad_l2_norm(&model) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_message_sizes() {
        assert_eq!(dense_allreduce_bytes(1000), 2000);
        assert_eq!(samo_allreduce_bytes(100), 200);
        // 10x reduction at 90% sparsity.
        assert_eq!(dense_allreduce_bytes(1000) / samo_allreduce_bytes(100), 10);
    }

    #[test]
    fn ring_allreduce_message_sizes() {
        // Ring factor 2·(G−1)/G of the fp16 payload, degenerate at G≤1.
        assert_eq!(dense_ring_allreduce_bytes(1000, 1), 0);
        assert_eq!(dense_ring_allreduce_bytes(1000, 2), 2000); // = flat model at G=2
        assert_eq!(dense_ring_allreduce_bytes(1000, 4), 3000);
        assert_eq!(samo_ring_allreduce_bytes(100, 4), 300);

        // Compressed/dense ratio ≈ 1/f = nnz/φ at every world size: the
        // ring factor cancels (satellite check for Eq. 9 at density
        // f = 0.1 → a 10× wire-volume reduction).
        for world in [2u64, 3, 4, 8] {
            let dense = dense_ring_allreduce_bytes(1000, world) as f64;
            let samo = samo_ring_allreduce_bytes(100, world) as f64;
            let ratio = samo / dense;
            // Within 1%: integer byte counts truncate when G ∤ 2·n·(G−1).
            assert!(
                (ratio - 0.1).abs() < 1e-3,
                "world {world}: compressed/dense = {ratio}, want 1/f = 0.1"
            );
        }
    }
}
