//! The thread-per-rank data-parallel runtime is **bitwise
//! interchangeable** with the in-process [`samo::DataParallelSamo`]:
//! driven with the same per-rank microbatches, both groups save
//! byte-identical checkpoints after every step, no matter how the rank
//! threads interleave — and a killed rank surfaces as a bounded `Err`,
//! after which heal + `restore` resynchronizes the group bitwise.
//!
//! (CI's comms matrix job runs this under `SAMO_THREADS=1` and the
//! default pool: rank parallelism must come from the comms threads,
//! not the GEMM pool.)

use nn::layer::{Layer, Sequential};
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use prune::Mask;
use samo::threaded::ThreadedDataParallelSamo;
use samo::DataParallelSamo;
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

const WORLD: usize = 2;
const IN: usize = 6;
const OUT: usize = 4;
const BATCH: usize = 5;

fn build_model(seed: u64) -> Sequential {
    Sequential::new()
        .push(Linear::new(IN, 8, true, seed))
        .push(nn::activations::Gelu::new())
        .push(Linear::new(8, OUT, true, seed + 1))
}

fn masks_for(model: &Sequential, seed: u64) -> Vec<Mask> {
    model
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if p.value.shape().len() >= 2 {
                prune::random_prune(p.value.shape(), 0.8, seed + i as u64)
            } else {
                Mask::dense(p.value.shape())
            }
        })
        .collect()
}

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

/// Deterministic per-rank microbatch for one step.
fn batch_for(rank: usize, step: usize) -> (Tensor, Tensor) {
    let seed = 5_000 + (step * WORLD + rank) as u64;
    (
        Tensor::randn(&[BATCH, IN], 1.0, seed),
        Tensor::randn(&[BATCH, OUT], 1.0, seed + 10_000),
    )
}

fn threaded_step(group: &mut ThreadedDataParallelSamo<Sequential>, step: usize) -> Result<bool, String> {
    // The closure does forward + scaled loss-grad only; the rank thread
    // itself runs `backward_with_ready` to overlap the ring.
    group.step(move |rank, model, scale| {
        let (x, target) = batch_for(rank, step);
        let y = model.forward(&x);
        let (_, mut dy) = mse(&y, &target);
        tensor::ops::scale(scale, dy.as_mut_slice());
        dy
    })
}

fn reference_step(group: &mut DataParallelSamo<Sequential>, step: usize) -> bool {
    let scale = group.loss_scale();
    for rank in 0..WORLD {
        let (x, target) = batch_for(rank, step);
        let model = group.replica_mut(rank);
        let y = model.forward(&x);
        let (_, mut dy) = mse(&y, &target);
        tensor::ops::scale(scale, dy.as_mut_slice());
        model.backward(&dy);
    }
    group.step()
}

#[test]
fn threaded_group_checkpoints_bitwise_equal_to_in_process_group() {
    let replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(41)).collect();
    let masks = masks_for(&replicas[0], 141);
    let mut threaded = ThreadedDataParallelSamo::new(replicas, masks.clone(), adam());
    let reference_replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(41)).collect();
    let mut reference = DataParallelSamo::new(reference_replicas, masks, adam());

    for step in 0..4 {
        let applied = threaded_step(&mut threaded, step).expect("healthy step");
        // Overflow verdicts must agree too: both groups see the same
        // reduced gradient bits, so they skip the same steps.
        assert_eq!(applied, reference_step(&mut reference, step), "verdict at step {step}");
        assert_eq!(
            threaded.save().as_ref(),
            reference.save().as_ref(),
            "checkpoints diverged at step {step}"
        );
    }
    assert_eq!(threaded.steps_taken(), reference.steps_taken());
}

#[test]
fn killed_rank_errors_then_heal_restore_resyncs_bitwise() {
    let replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(43)).collect();
    let masks = masks_for(&replicas[0], 143);
    let mut threaded = ThreadedDataParallelSamo::with_comm_timeout(
        replicas,
        masks.clone(),
        adam(),
        Duration::from_millis(200),
    );
    let reference_replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(43)).collect();
    let mut reference = DataParallelSamo::new(reference_replicas, masks, adam());

    threaded_step(&mut threaded, 0).unwrap();
    reference_step(&mut reference, 0);
    let checkpoint = Arc::new(threaded.save());
    assert_eq!(checkpoint.as_ref().as_ref(), reference.save().as_ref());

    // Kill rank 1: the next step must surface as a bounded Err, not a
    // hang, and must not wedge the group.
    threaded.faults().kill_rank(1, WORLD);
    let err = threaded_step(&mut threaded, 1).expect_err("dead rank must fail the step");
    assert!(err.contains("timed out"), "unexpected error: {err}");

    // Recovery: heal the links, restore the pre-failure checkpoint on
    // both runtimes, and the replay is bitwise equal to a never-failed
    // group.
    threaded.faults().heal_rank(1, WORLD);
    threaded.restore(checkpoint.as_ref()).expect("restore after heal");
    reference.restore(checkpoint.as_ref()).expect("reference restore");
    for step in 1..3 {
        let applied = threaded_step(&mut threaded, step).expect("replay step");
        assert_eq!(applied, reference_step(&mut reference, step), "verdict at step {step}");
        assert_eq!(
            threaded.save().as_ref(),
            reference.save().as_ref(),
            "replay diverged at step {step}"
        );
    }
}
