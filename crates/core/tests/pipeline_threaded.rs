//! The inter-layer pipeline runtime's correctness theorem: checkpoint
//! bytes are **bitwise identical** to a single-process
//! [`samo::trainer::SamoTrainer`] driven with the same microbatches,
//! for every pipeline depth — and therefore identical across depths —
//! no matter how the stage threads interleave. Also pins the recovery
//! path: kill a stage → bounded `Err` → heal + `restore` → bitwise
//! resync with the never-failed trainer.
//!
//! (CI's pipeline matrix job runs this under `SAMO_THREADS=1` and the
//! default pool: stage parallelism must come from the stage threads,
//! not the GEMM pool.)

use nn::layer::{Layer, Sequential};
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use prune::Mask;
use samo::pipeline::{PipelineConfig, ThreadedPipelineSamo};
use samo::trainer::SamoTrainer;
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

const WIDTH: usize = 8;
const ROWS: usize = 4;
const MBS: usize = 3;

/// Six uniform layers: splits evenly into 2 or 3 contiguous stages.
fn build_model(seed: u64) -> Sequential {
    let mut m = Sequential::new();
    for i in 0..3 {
        m = m
            .push(Linear::new(WIDTH, WIDTH, true, seed + i))
            .push(nn::activations::Gelu::new());
    }
    m
}

fn masks_for(model: &Sequential, seed: u64) -> Vec<Mask> {
    model
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if p.value.shape().len() >= 2 {
                prune::random_prune(p.value.shape(), 0.8, seed + i as u64)
            } else {
                Mask::dense(p.value.shape())
            }
        })
        .collect()
}

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

fn batch_for(step: usize, mb: usize) -> (Tensor, Tensor) {
    let seed = 6_000 + (step * MBS + mb) as u64;
    (
        Tensor::randn(&[ROWS, WIDTH], 1.0, seed),
        Tensor::randn(&[ROWS, WIDTH], 1.0, seed + 10_000),
    )
}

fn build_pipeline(g_inter: usize, seed: u64, timeout: Duration) -> ThreadedPipelineSamo {
    let model = build_model(seed);
    let masks = masks_for(&model, seed + 100);
    let cfg = PipelineConfig {
        g_inter,
        g_data: 1,
        microbatches: MBS,
        mb_rows: ROWS,
        max_in_flight: g_inter,
        timeout,
        force_recompute: false,
    };
    ThreadedPipelineSamo::new(vec![model], masks, adam(), cfg)
}

fn pipeline_step(pp: &mut ThreadedPipelineSamo, step: usize) -> Result<bool, String> {
    pp.step(
        move |_d, mb| batch_for(step, mb).0,
        move |_d, mb, y, scale| {
            let (_, mut dy) = mse(y, &batch_for(step, mb).1);
            tensor::ops::scale(scale, dy.as_mut_slice());
            dy
        },
    )
}

/// One single-process training step over the same microbatches:
/// gradients accumulate across the M forward/backward passes, exactly
/// as each pipeline stage accumulates over its M backward microbatches.
fn trainer_step(model: &mut Sequential, tr: &mut SamoTrainer, step: usize) -> bool {
    for mb in 0..MBS {
        let (x, target) = batch_for(step, mb);
        let y = model.forward(&x);
        let (_, mut dy) = mse(&y, &target);
        tensor::ops::scale(tr.loss_scale(), dy.as_mut_slice());
        model.backward(&dy);
    }
    tr.step(model)
}

#[test]
fn pipeline_checkpoints_bitwise_equal_to_single_process_at_every_depth() {
    let mut pp2 = build_pipeline(2, 47, comms::collectives::DEFAULT_TIMEOUT);
    let mut pp3 = build_pipeline(3, 47, comms::collectives::DEFAULT_TIMEOUT);
    let mut model = build_model(47);
    let masks = masks_for(&model, 147);
    let mut tr = SamoTrainer::new(&mut model, masks, adam());

    for step in 0..3 {
        let applied = pipeline_step(&mut pp2, step).expect("depth-2 step");
        assert_eq!(applied, pipeline_step(&mut pp3, step).expect("depth-3 step"));
        assert_eq!(applied, trainer_step(&mut model, &mut tr, step));
        let single = tr.save();
        assert_eq!(
            pp2.save().as_ref(),
            single.as_ref(),
            "depth 2 diverged from single-process at step {step}"
        );
        assert_eq!(
            pp3.save().as_ref(),
            single.as_ref(),
            "depth 3 diverged from single-process at step {step}"
        );
    }
    assert_eq!(pp2.steps_taken(), tr.steps_taken());
}

#[test]
fn killed_stage_errors_then_heal_restore_resyncs_bitwise() {
    let mut pp = build_pipeline(2, 53, Duration::from_millis(300));
    let mut model = build_model(53);
    let masks = masks_for(&model, 153);
    let mut tr = SamoTrainer::new(&mut model, masks, adam());

    pipeline_step(&mut pp, 0).expect("healthy step");
    trainer_step(&mut model, &mut tr, 0);
    let checkpoint = Arc::new(pp.save());
    assert_eq!(checkpoint.as_ref().as_ref(), tr.save().as_ref());

    // Kill stage 1 on the pipe mesh: the step fails within the
    // progress deadline instead of hanging.
    pp.pipe_faults()[0].kill_rank(1, 2);
    let err = pipeline_step(&mut pp, 1).expect_err("dead stage must fail the step");
    assert!(err.contains("timed out"), "unexpected error: {err}");

    // Heal + restore, then the replay is bitwise equal to the
    // never-failed single-process trainer.
    pp.pipe_faults()[0].heal_rank(1, 2);
    pp.restore(checkpoint.as_ref()).expect("restore after heal");
    for step in 1..3 {
        let applied = pipeline_step(&mut pp, step).expect("replay step");
        assert_eq!(applied, trainer_step(&mut model, &mut tr, step), "verdict at step {step}");
        assert_eq!(
            pp.save().as_ref(),
            tr.save().as_ref(),
            "replay diverged at step {step}"
        );
    }
}
