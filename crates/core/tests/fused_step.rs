//! The fused SAMO step (`compress_grad_fused` + `optimizer_step_fused`)
//! must be **bitwise identical** to the retained three-phase reference
//! (`compress_grad` + `grads_non_finite` + `optimizer_step` +
//! `dense_f32_params`): same θ32, θ16, ∇θ16, ∇θ32, optimizer state and
//! dense fp32 compute view, same overflow verdict — for Adam and
//! SGD-momentum, across multiple steps, at any sparsity including the
//! fully dense (p = 0) and fully pruned (p = 1) extremes, and with
//! non-finite gradients injected.

use nn::mixed::{OptState, Optimizer};
use nn::optim::{AdamConfig, SgdConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use samo::SamoLayerState;
use tensor::f16::F16;

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig {
        lr: 0.02,
        weight_decay: 0.01,
        ..Default::default()
    })
}

fn sgd() -> Optimizer {
    Optimizer::Sgd(SgdConfig {
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.001,
    })
}

fn bits16(v: &[F16]) -> Vec<u16> {
    v.iter().map(|h| h.0).collect()
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_os_eq(a: &OptState, b: &OptState) -> Result<(), TestCaseError> {
    match (a, b) {
        (OptState::Adam(x), OptState::Adam(y)) => {
            prop_assert_eq!(bits32(&x.m), bits32(&y.m));
            prop_assert_eq!(bits32(&x.v), bits32(&y.v));
            prop_assert_eq!(x.step, y.step);
        }
        (OptState::Sgd(x), OptState::Sgd(y)) => {
            prop_assert_eq!(bits32(&x.velocity), bits32(&y.velocity));
        }
        _ => prop_assert!(false, "optimizer state kind mismatch"),
    }
    Ok(())
}

/// Drives both paths from identical initial state and gradients and
/// asserts bit-equality of everything after every step. Every third step
/// optionally injects a non-finite gradient to exercise the fused
/// overflow verdict and the skip path.
fn assert_fused_matches_reference(
    opt: Optimizer,
    numel: usize,
    sparsity: f64,
    steps: usize,
    seed: u64,
    inject_overflow: bool,
) -> Result<(), TestCaseError> {
    let mask = prune::random_prune(&[numel], sparsity, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF05E);
    let init: Vec<f32> = (0..numel).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

    let mut fused = SamoLayerState::from_params(&init, mask.clone(), &opt);
    let mut refr = SamoLayerState::from_params(&init, mask, &opt);
    // The fused kernel's dense output buffer: starts as the shared dense
    // view (zero at pruned positions, per its precondition) and is
    // updated in place by scatter alone afterwards.
    let mut dense_fused = fused.dense_f32_params();
    let inv_loss_scale = 1.0f32 / 8.0;

    for step in 0..steps {
        let mut grads: Vec<f32> = (0..numel).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
        if inject_overflow && step % 3 == 1 && numel > 0 {
            let at = rng.gen_range(0..numel);
            grads[at] = if step % 2 == 0 { f32::INFINITY } else { f32::NAN };
            // ... which only matters if `at` survives the mask; both
            // paths must agree either way.
        }

        let finite = fused.compress_grad_fused(&grads);
        refr.compress_grad(&grads);
        let ref_finite = !refr.grads_non_finite();
        prop_assert_eq!(finite, ref_finite, "overflow verdict diverged at step {}", step);
        prop_assert_eq!(bits16(&fused.grad16), bits16(&refr.grad16));

        if finite {
            // Mirrors SamoTrainer::step: apply only when all finite.
            fused.optimizer_step_fused(&opt, inv_loss_scale, &mut dense_fused);
            refr.optimizer_step(&opt, inv_loss_scale);
            let dense_ref = refr.dense_f32_params();
            prop_assert_eq!(bits32(&fused.theta32), bits32(&refr.theta32));
            prop_assert_eq!(bits16(&fused.theta16), bits16(&refr.theta16));
            prop_assert_eq!(bits32(&fused.grad32), bits32(&refr.grad32));
            prop_assert_eq!(bits32(&dense_fused), bits32(&dense_ref));
            assert_os_eq(&fused.os, &refr.os)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fused_step_equals_three_phase_adam(
        numel in 1usize..600,
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        assert_fused_matches_reference(adam(), numel, sparsity, 6, seed, false)?;
    }

    #[test]
    fn fused_step_equals_three_phase_sgd(
        numel in 1usize..600,
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        assert_fused_matches_reference(sgd(), numel, sparsity, 6, seed, false)?;
    }

    #[test]
    fn fused_step_equals_three_phase_with_overflows(
        numel in 1usize..400,
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        assert_fused_matches_reference(adam(), numel, sparsity, 9, seed, true)?;
        assert_fused_matches_reference(sgd(), numel, sparsity, 9, seed, true)?;
    }
}

/// The mask extremes deserve explicit coverage: p = 0 keeps every
/// parameter (compressed length == numel) and p = 1 keeps none
/// (every kernel is a no-op over an empty index set).
#[test]
fn fused_step_handles_dense_and_empty_masks() {
    for opt in [adam(), sgd()] {
        for sparsity in [0.0, 1.0] {
            assert_fused_matches_reference(opt.clone(), 193, sparsity, 5, 42, true)
                .expect("fused/reference divergence at mask extreme");
        }
    }
}
