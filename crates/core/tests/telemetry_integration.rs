//! End-to-end telemetry: training steps must produce counters, span
//! timings, and `metrics.jsonl` lines whose byte accounting matches the
//! paper's closed-form model-state size.

use nn::layer::Layer;
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use samo::trainer::{dense_formula_state_bytes, formula_state_bytes, SamoTrainer};
use tensor::Tensor;

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig {
        lr: 0.05,
        ..Default::default()
    })
}

#[test]
fn samo_steps_record_counters_spans_and_jsonl() {
    // Route the JSONL sink to a scratch directory. The sink opens
    // lazily on first emit, which only happens inside this test binary
    // while the flag below is set.
    let tmp = std::env::temp_dir().join(format!("samo-telemetry-test-{}", std::process::id()));
    std::env::set_var("SAMO_RESULTS_DIR", &tmp);

    let _guard = telemetry::registry::test_lock();
    telemetry::set_enabled(true);
    telemetry::take_spans();

    let mut model = Linear::new(8, 8, false, 1);
    let mask = prune::random_prune(&[8, 8], 0.75, 2);
    let mut trainer = SamoTrainer::new(&mut model, vec![mask], adam());
    let x = Tensor::randn(&[4, 8], 1.0, 3);
    let target = Tensor::randn(&[4, 8], 1.0, 4);
    let steps = 3;
    for _ in 0..steps {
        let y = model.forward(&x);
        let (_, mut dy) = mse(&y, &target);
        tensor::ops::scale(trainer.loss_scale(), dy.as_mut_slice());
        model.backward(&dy);
        trainer.step(&mut model);
    }
    telemetry::jsonl::flush();
    telemetry::set_enabled(false);

    // Counters: every applied/skipped step is accounted for.
    let reg = telemetry::global();
    let taken = reg.counter("samo.steps_taken").get();
    let skipped = reg.counter("samo.steps_skipped").get();
    assert_eq!(taken + skipped, steps);
    assert_eq!(taken, trainer.steps_taken());

    // Gauges: loss scale mirrors the scaler; state bytes high-water mark
    // equals the (constant) measured size.
    assert_eq!(
        reg.gauge("samo.loss_scale").get(),
        f64::from(trainer.loss_scale())
    );
    assert_eq!(
        reg.gauge("samo.model_state_bytes").get(),
        trainer.model_state_bytes(true) as f64
    );

    // Spans: the fused compress kernel ran every step; the fused
    // optimizer+expand kernel only on applied steps.
    let spans = telemetry::take_spans();
    let count_of = |n: &str| spans.iter().filter(|s| s.name == n).count() as u64;
    assert_eq!(count_of("samo.step.compress"), steps);
    assert_eq!(count_of("samo.step.optimizer"), taken);
    // And they feed the histogram of the same name.
    assert_eq!(reg.histogram("samo.step.compress").count(), steps);

    // JSONL: one line per step with the formula matching the measured
    // bytes (Adam: 2φ + 24·nnz).
    let data = std::fs::read_to_string(tmp.join("metrics.jsonl")).unwrap();
    let lines: Vec<&str> = data.lines().collect();
    assert_eq!(lines.len(), steps as usize);
    let phi = trainer.numel() as u64;
    let nnz = trainer.nnz() as u64;
    let formula = formula_state_bytes(&trainer.opt, phi, nnz);
    assert_eq!(formula, 2 * phi + 24 * nnz);
    assert_eq!(formula, trainer.model_state_bytes(true));
    for line in &lines {
        assert!(line.starts_with("{\"kind\":\"samo\""), "line: {line}");
        assert!(
            line.contains(&format!("\"model_state_bytes\":{formula}")),
            "line: {line}"
        );
        assert!(
            line.contains(&format!("\"formula_state_bytes\":{formula}")),
            "line: {line}"
        );
    }

    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn formula_helpers_cover_both_optimizers() {
    use nn::optim::SgdConfig;
    let adam = adam();
    let sgd = Optimizer::Sgd(SgdConfig::default());
    assert_eq!(formula_state_bytes(&adam, 100, 10), 200 + 240);
    assert_eq!(formula_state_bytes(&sgd, 100, 10), 200 + 200);
    assert_eq!(dense_formula_state_bytes(&adam, 100), 2000);
    assert_eq!(dense_formula_state_bytes(&sgd, 100), 1600);
}

#[test]
fn disabled_telemetry_adds_no_metrics() {
    let _guard = telemetry::registry::test_lock();
    telemetry::set_enabled(false);

    let mut model = Linear::new(6, 6, false, 9);
    let mask = prune::random_prune(&[6, 6], 0.5, 10);
    let mut trainer = SamoTrainer::new(&mut model, vec![mask], adam());
    let before = telemetry::global().counter("samo.steps_taken").get();
    let x = Tensor::randn(&[2, 6], 1.0, 11);
    let target = Tensor::randn(&[2, 6], 1.0, 12);
    let y = model.forward(&x);
    let (_, mut dy) = mse(&y, &target);
    tensor::ops::scale(trainer.loss_scale(), dy.as_mut_slice());
    model.backward(&dy);
    trainer.step(&mut model);

    assert_eq!(telemetry::global().counter("samo.steps_taken").get(), before);
    assert_eq!(telemetry::span::collected_span_count(), 0);
}
