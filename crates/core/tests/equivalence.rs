//! The reproduction's core correctness theorem:
//!
//! **SAMO training is numerically identical to dense masked
//! mixed-precision training.**
//!
//! The paper validates its implementation end-to-end (Fig. 4, matching
//! perplexity curves). Here we prove the stronger statement directly: for
//! the same pruned network, data and hyperparameters, the SAMO trainer
//! (compressed model state) and the dense masked baseline produce
//! *bit-identical* fp32 master parameters after any number of steps, for
//! both Adam and SGD. Matching Fig. 4 curves follow a fortiori.

use nn::layer::{Layer, Sequential};
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::{AdamConfig, SgdConfig};
use proptest::prelude::*;
use prune::Mask;
use samo::compressed::compress_f32;
use samo::trainer::{DenseMaskedTrainer, SamoTrainer};
use tensor::Tensor;

fn build_model(in_dim: usize, hidden: usize, out_dim: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(Linear::new(in_dim, hidden, true, seed))
        .push(nn::activations::Gelu::new())
        .push(Linear::new(hidden, out_dim, true, seed + 1))
}

fn masks_for(model: &Sequential, sparsity: f64, seed: u64) -> Vec<Mask> {
    model
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if p.value.shape().len() >= 2 {
                prune::random_prune(p.value.shape(), sparsity, seed + i as u64)
            } else {
                Mask::dense(p.value.shape()) // biases stay dense
            }
        })
        .collect()
}

/// Runs `steps` of training with both trainers on identical models/data
/// and asserts bitwise-equal master parameters throughout.
fn assert_equivalent(
    opt: Optimizer,
    sparsity: f64,
    steps: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let (in_dim, hidden, out_dim, batch) = (5, 8, 3, 6);
    let mut model_samo = build_model(in_dim, hidden, out_dim, seed);
    let mut model_dense = build_model(in_dim, hidden, out_dim, seed);
    let masks = masks_for(&model_samo, sparsity, seed + 100);

    let mut samo_tr = SamoTrainer::new(&mut model_samo, masks.clone(), opt.clone());
    let mut dense_tr = DenseMaskedTrainer::new(&mut model_dense, masks.clone(), opt);

    // After init, both models hold identical pruned fp16-rounded params.
    for (a, b) in model_samo.params().iter().zip(model_dense.params()) {
        prop_assert_eq!(a.value.as_slice(), b.value.as_slice());
    }

    for step in 0..steps {
        let x = Tensor::randn(&[batch, in_dim], 1.0, seed + 1000 + step as u64);
        let target = Tensor::randn(&[batch, out_dim], 1.0, seed + 2000 + step as u64);

        let y1 = model_samo.forward(&x);
        let (_, mut dy1) = mse(&y1, &target);
        tensor::ops::scale(samo_tr.loss_scale(), dy1.as_mut_slice());
        model_samo.backward(&dy1);
        samo_tr.step(&mut model_samo);

        let y2 = model_dense.forward(&x);
        let (_, mut dy2) = mse(&y2, &target);
        tensor::ops::scale(dense_tr.loss_scale(), dy2.as_mut_slice());
        model_dense.backward(&dy2);
        dense_tr.step(&mut model_dense);

        // Compressed θ32 must equal the compressed view of the dense θ32.
        for ((samo_layer, (dense_state, mask)), _) in samo_tr
            .layers
            .iter()
            .zip(&dense_tr.layers)
            .zip(0..)
        {
            let dense_c = compress_f32(&dense_state.theta32, mask);
            prop_assert_eq!(
                &samo_layer.theta32,
                &dense_c,
                "θ32 diverged at step {}",
                step
            );
        }
        // And the compute models see identical parameters.
        for (a, b) in model_samo.params().iter().zip(model_dense.params()) {
            prop_assert_eq!(a.value.as_slice(), b.value.as_slice());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn samo_equals_dense_masked_adam(
        sparsity in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        let opt = Optimizer::Adam(AdamConfig { lr: 0.01, weight_decay: 0.01, ..Default::default() });
        assert_equivalent(opt, sparsity, 5, seed)?;
    }

    #[test]
    fn samo_equals_dense_masked_sgd(
        sparsity in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        let opt = Optimizer::Sgd(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0 });
        assert_equivalent(opt, sparsity, 5, seed)?;
    }

    /// compress/expand identities on random data and masks.
    #[test]
    fn expand_compress_identities(
        numel in 1usize..500,
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mask = prune::random_prune(&[numel], sparsity, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFACE);
        let dense: Vec<f32> = (0..numel).map(|_| rng.gen_range(-10.0f32..10.0)).collect();

        // expand ∘ compress = mask
        let roundtrip = samo::expand_f32(&compress_f32(&dense, &mask), &mask);
        let mut masked = dense.clone();
        mask.apply(&mut masked);
        prop_assert_eq!(roundtrip, masked);

        // compress ∘ expand = identity on compressed data
        let values: Vec<f32> = (0..mask.nnz()).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let back = compress_f32(&samo::expand_f32(&values, &mask), &mask);
        prop_assert_eq!(back, values);
    }

    /// Measured bytes of a live SamoTrainer match the Sec. III-D formula
    /// exactly, for any sparsity.
    #[test]
    fn measured_memory_matches_analytic_model(
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let phi = 4096usize;
        let mut model = Linear::from_weights(Tensor::randn(&[64, 64], 1.0, seed), None);
        let mask = prune::random_prune(&[64, 64], sparsity, seed);
        let nnz = mask.nnz() as u64;
        let tr = SamoTrainer::new(&mut model, vec![mask], Optimizer::Adam(AdamConfig::default()));
        // Formula in terms of exact nnz (avoids rounding of p·φ):
        // peak = 2φ (θ16) + (4+4+2+4+8+2)·nnz (ind, θ32, ∇θ16, ∇θ32, os, temp)
        prop_assert_eq!(tr.model_state_bytes(true), 2 * phi as u64 + 24 * nnz);
        prop_assert_eq!(tr.model_state_bytes(false), 2 * phi as u64 + 22 * nnz);
    }
}

/// Deterministic long-run equivalence (more steps than the proptest).
#[test]
fn long_run_equivalence_adam() {
    let opt = Optimizer::Adam(AdamConfig {
        lr: 0.02,
        ..Default::default()
    });
    assert_equivalent(opt, 0.9, 40, 424242).unwrap();
}
