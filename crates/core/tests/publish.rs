//! The atomic-publish contract between training and serving
//! (DESIGN.md §17): a subscriber polling the `{prefix}.published`
//! marker must *never* act on a torn, partial, stale, or dangling
//! publish. The marker rides the same tmp + fsync + rename discipline
//! as checkpoint saves, carries its own CRC over the named file, and
//! retention never prunes the file it points at.

use samo::checkpoint::{publish_marker_path, CheckpointConfig, CheckpointManager, CheckpointSubscriber};
use samo::{SamoLayerState, TrainerMeta};
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use std::fs;
use std::path::PathBuf;

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("samo-publish-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn sample_bytes(seed: u64) -> bytes::Bytes {
    let mask = prune::random_prune(&[64], 0.5, seed);
    let st = SamoLayerState::from_params(&vec![0.5; 64], mask, &adam());
    samo::serialize::save_checkpoint(
        std::slice::from_ref(&st),
        &TrainerMeta { loss_scale: 1.0, good_steps: 0, steps_taken: seed, steps_skipped: 0 },
    )
}

#[test]
fn publish_subscribe_roundtrip_reports_each_step_once() {
    let dir = tmpdir("roundtrip");
    let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
    let mut sub = CheckpointSubscriber::new(&dir, "ckpt");
    assert_eq!(sub.poll(), None, "nothing published yet");

    let p10 = mgr.save_now(10, &sample_bytes(10)).unwrap();
    assert_eq!(sub.poll(), None, "a save alone is not a publish");
    assert_eq!(mgr.publish(&p10).unwrap(), 10);
    assert_eq!(sub.poll(), Some((10, p10.clone())));
    assert_eq!(sub.poll(), None, "the same publish must not re-fire");

    // save_and_publish in one call; the subscriber sees the new step.
    let p20 = mgr.save_and_publish(20, &sample_bytes(20)).unwrap();
    assert_eq!(sub.poll(), Some((20, p20.clone())));
    assert_eq!(mgr.published(), Some((20, p20)));

    // Republishing an older retained step (rollback) fires again.
    mgr.publish(&p10).unwrap();
    assert_eq!(sub.poll(), Some((10, p10)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_or_partial_publish_is_never_picked_up() {
    let dir = tmpdir("torn");
    let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
    let path = mgr.save_now(5, &sample_bytes(5)).unwrap();
    let name = path.file_name().unwrap().to_str().unwrap().to_string();
    let marker = publish_marker_path(&dir, "ckpt");
    let good_line = {
        mgr.publish(&path).unwrap();
        fs::read_to_string(&marker).unwrap()
    };

    let mut sub = CheckpointSubscriber::new(&dir, "ckpt");
    // Each corruption below models a crash mid-write by a writer
    // WITHOUT the rename discipline; all must be ignored.
    let torn_cases: Vec<Vec<u8>> = vec![
        Vec::new(),                                      // zero-length marker
        good_line.as_bytes()[..name.len() / 2].to_vec(), // truncated mid-name
        good_line.as_bytes()[..good_line.len() - 5].to_vec(), // truncated mid-crc
        good_line.replace('\n', "").into_bytes(),        // missing terminator
        format!("{name} deadbeef\n").into_bytes(),       // wrong crc
        b"ckpt-000000000099.samo 00000000\n".to_vec(),   // dangling (no such file)
        b"../../etc/passwd 00000000\n".to_vec(),         // foreign name shape
    ];
    for (i, bytes) in torn_cases.iter().enumerate() {
        fs::write(&marker, bytes).unwrap();
        assert_eq!(sub.poll(), None, "torn case {i} was picked up: {bytes:?}");
        assert_eq!(mgr.published(), None, "torn case {i} validated via manager");
    }

    // Restoring the good marker recovers cleanly.
    fs::write(&marker, good_line.as_bytes()).unwrap();
    assert_eq!(sub.poll(), Some((5, path)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retention_never_prunes_the_published_checkpoint() {
    let dir = tmpdir("retention");
    let mut cfg = CheckpointConfig::new(&dir);
    cfg.keep_last = 2;
    let mut mgr = CheckpointManager::new(cfg).unwrap();
    let p1 = mgr.save_and_publish(1, &sample_bytes(1)).unwrap();
    for step in 2..=5u64 {
        mgr.save_now(step, &sample_bytes(step)).unwrap();
    }
    // Step 1 is far outside keep_last = 2, but it is published: it must
    // survive so the marker never dangles.
    assert!(p1.exists(), "published checkpoint was pruned");
    let kept = mgr.list().unwrap();
    assert!(kept.contains(&p1), "published checkpoint missing from list: {kept:?}");
    // Moving the publish forward releases the pin; the next save prunes it.
    let p5 = mgr.latest().unwrap().unwrap();
    mgr.publish(&p5).unwrap();
    mgr.save_now(6, &sample_bytes(6)).unwrap();
    assert!(!p1.exists(), "unpinned checkpoint must be pruned normally");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn publish_rejects_foreign_or_missing_paths() {
    let dir = tmpdir("reject");
    let mut mgr = CheckpointManager::new(CheckpointConfig::new(&dir)).unwrap();
    let real = mgr.save_now(3, &sample_bytes(3)).unwrap();
    assert!(mgr.publish(&dir.join("other-000000000003.samo")).is_err(), "foreign prefix");
    assert!(mgr.publish(&dir.join("ckpt-000000000099.samo")).is_err(), "missing file");
    assert!(mgr.publish(&real).is_ok());
    let _ = fs::remove_dir_all(&dir);
}
