//! Dynamic sparsity across runtimes: a [`MaskSchedule`] driving
//! prune-and-regrow mask evolution (including a densification phase)
//! produces **bitwise-identical** checkpoints between the
//! single-process [`samo::SamoTrainer`], the thread-per-rank
//! [`ThreadedDataParallelSamo`] over the in-process mesh, the same
//! runtime over loopback-TCP endpoints, and the cross-process
//! [`DistDataParallel`] trainer (the `samo-launch` path) — replicated
//! data parallelism, so the ring-reduced grow score equals the local
//! one bit for bit and every runtime computes the same masks without a
//! broadcast.

use comms::{Communicator, FaultController, HeartbeatConfig, TcpTransport};
use nn::layer::{Layer, Sequential};
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use prune::{MaskSchedule, MomentumPruneRegrow};
use samo::threaded::ThreadedDataParallelSamo;
use samo::{DistDataParallel, SamoTrainer};
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

const IN: usize = 6;
const OUT: usize = 4;
const BATCH: usize = 5;
const STEPS: usize = 14;

fn build_model(seed: u64) -> Sequential {
    Sequential::new()
        .push(Linear::new(IN, 10, true, seed))
        .push(nn::activations::Gelu::new())
        .push(Linear::new(10, OUT, true, seed + 1))
}

/// Every parameter tensor starts at the schedule's initial sparsity —
/// the t = 0 update then only churns (swap), and later updates walk
/// the trajectory through a sparsify leg and back down a densify leg.
fn masks_for(model: &Sequential) -> Vec<prune::Mask> {
    model
        .params()
        .iter()
        .map(|p| prune::magnitude_prune(p.value.as_slice(), p.value.shape(), 0.3))
        .collect()
}

/// Update steps fire at t = 0, 3, 6, 9, 12: sparsity 0.30 → 0.525 →
/// 0.75 (knot) → 0.50 → 0.25 (knot) — at least three mask changes and
/// the final two are densifications.
fn schedule() -> MaskSchedule {
    MaskSchedule::MomentumPruneRegrow(MomentumPruneRegrow::new(
        vec![(0, 0.30), (6, 0.75), (12, 0.25)],
        3,
        0.1,
    ))
}

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

/// Replicated data parallelism: every rank sees the SAME batch.
fn batch_for(step: usize) -> (Tensor, Tensor) {
    let seed = 37_000 + step as u64;
    (
        Tensor::randn(&[BATCH, IN], 1.0, seed),
        Tensor::randn(&[BATCH, OUT], 1.0, seed + 10_000),
    )
}

fn drive_oracle(oracle: &mut SamoTrainer, model: &mut Sequential, step: usize) -> bool {
    let (x, target) = batch_for(step);
    let y = model.forward(&x);
    let (_, mut dy) = mse(&y, &target);
    tensor::ops::scale(oracle.loss_scale(), dy.as_mut_slice());
    model.backward(&dy);
    oracle.step(model)
}

fn oracle_checkpoints() -> (Vec<bytes::Bytes>, Vec<usize>) {
    let mut model = build_model(91);
    let mut oracle = SamoTrainer::new(&mut model, masks_for(&build_model(91)), adam());
    oracle.set_mask_schedule(schedule());
    let mut ckpts = Vec::with_capacity(STEPS);
    let mut nnzs = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        drive_oracle(&mut oracle, &mut model, step);
        ckpts.push(oracle.save());
        nnzs.push(oracle.nnz());
    }
    assert!(oracle.remap_events() >= 3, "schedule must actually move the masks");
    (ckpts, nnzs)
}

fn threaded_step(
    th: &mut ThreadedDataParallelSamo<Sequential>,
    step: usize,
) -> Result<bool, String> {
    th.step(move |_rank, m, scale| {
        let (x, target) = batch_for(step);
        let y = m.forward(&x);
        let (_, mut dy) = mse(&y, &target);
        tensor::ops::scale(scale, dy.as_mut_slice());
        dy
    })
}

/// The nnz trajectory itself must evolve in both directions — proof the
/// run really pruned *and* regrew (densified) rather than clamping.
fn assert_bidirectional(nnzs: &[usize]) {
    assert!(
        nnzs.windows(2).any(|w| w[1] < w[0]),
        "nnz never shrank: {nnzs:?}"
    );
    assert!(
        nnzs.windows(2).any(|w| w[1] > w[0]),
        "nnz never grew (no densification): {nnzs:?}"
    );
}

#[test]
fn threaded_mesh_matches_single_process_across_remaps() {
    let (want, nnzs) = oracle_checkpoints();
    assert_bidirectional(&nnzs);

    let world = 3;
    let replicas: Vec<Sequential> = (0..world).map(|_| build_model(91)).collect();
    let masks = masks_for(&replicas[0]);
    let mut th = ThreadedDataParallelSamo::new(replicas, masks, adam());
    th.set_mask_schedule(schedule());
    for step in 0..STEPS {
        threaded_step(&mut th, step).expect("healthy mesh");
        assert_eq!(
            th.save().as_ref(),
            want[step].as_ref(),
            "threaded (in-proc mesh) diverged from SamoTrainer at step {step}"
        );
        assert_eq!(th.nnz(), nnzs[step], "nnz mirror stale at step {step}");
    }
}

#[test]
fn threaded_tcp_matches_single_process_across_remaps() {
    let (want, nnzs) = oracle_checkpoints();

    let world = 2;
    let replicas: Vec<Sequential> = (0..world).map(|_| build_model(91)).collect();
    let masks = masks_for(&replicas[0]);
    let faults = Arc::new(FaultController::new());
    let mesh = TcpTransport::local_mesh_with(world, Arc::clone(&faults), HeartbeatConfig::default())
        .unwrap();
    let mut th = ThreadedDataParallelSamo::with_transports(
        replicas,
        masks,
        adam(),
        Duration::from_secs(10),
        mesh,
        faults,
    );
    th.set_mask_schedule(schedule());
    for step in 0..STEPS {
        threaded_step(&mut th, step).expect("healthy TCP mesh");
        assert_eq!(
            th.save().as_ref(),
            want[step].as_ref(),
            "threaded (TCP) diverged from SamoTrainer at step {step}"
        );
        assert_eq!(th.nnz(), nnzs[step], "nnz mirror stale at step {step}");
    }
}

/// The `samo-launch` trainer: one [`DistDataParallel`] per rank thread
/// over real TCP sockets, each installing the same schedule. Epoch
/// renegotiation runs in lockstep on every mask change, and each rank's
/// per-step checkpoint equals the single-process one.
#[test]
fn dist_tcp_matches_single_process_across_remaps() {
    let (want, _) = oracle_checkpoints();

    let world = 2;
    let transports = TcpTransport::local_mesh(world).unwrap();
    let saved: Vec<(Vec<bytes::Bytes>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = transports
            .into_iter()
            .map(|t| {
                s.spawn(move || {
                    let comm = Communicator::new(t).with_timeout(Duration::from_secs(10));
                    let mut model = build_model(91);
                    let masks = masks_for(&model);
                    let mut dist = DistDataParallel::new(&mut model, masks, adam(), comm);
                    dist.set_mask_schedule(schedule());
                    let mut ckpts = Vec::with_capacity(STEPS);
                    for step in 0..STEPS {
                        let (x, target) = batch_for(step);
                        let y = model.forward(&x);
                        let (_, mut dy) = mse(&y, &target);
                        tensor::ops::scale(dist.loss_scale(), dy.as_mut_slice());
                        model.backward(&dy);
                        dist.step(&mut model).expect("healthy step");
                        ckpts.push(dist.save());
                    }
                    (ckpts, dist.remap_events())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (rank, (ckpts, remaps)) in saved.iter().enumerate() {
        assert!(*remaps >= 3, "rank {rank} applied only {remaps} remaps");
        for step in 0..STEPS {
            assert_eq!(
                ckpts[step].as_ref(),
                want[step].as_ref(),
                "rank {rank} diverged from SamoTrainer at step {step}"
            );
        }
    }
}
