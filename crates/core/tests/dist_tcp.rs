//! The cross-process trainer over real TCP sockets is **bitwise
//! interchangeable** with the single-process [`samo::SamoTrainer`]:
//! replicated ranks feeding identical batches through the framed-TCP
//! ring all-reduce save byte-identical checkpoints, the thread-per-rank
//! runtime produces the same bits over TCP endpoints as over the
//! in-process mesh, and a dead peer surfaces as a bounded `Err` after
//! which a fresh rendezvous generation + `resync` replays bitwise.
//!
//! (CI's multiproc job additionally runs the same equivalence across
//! real OS processes via `samo-launch`; these tests keep the property
//! under `cargo test` with in-process rank threads.)

use comms::{
    bootstrap_tcp, BootstrapConfig, Communicator, FaultController, HeartbeatConfig, Rendezvous,
    TcpTransport, Transport,
};
use nn::layer::{Layer, Sequential};
use nn::linear::Linear;
use nn::loss::mse;
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use prune::Mask;
use samo::threaded::ThreadedDataParallelSamo;
use samo::{DistDataParallel, SamoTrainer};
use std::sync::Arc;
use std::time::Duration;
use tensor::Tensor;

const IN: usize = 6;
const OUT: usize = 4;
const BATCH: usize = 5;

fn build_model(seed: u64) -> Sequential {
    Sequential::new()
        .push(Linear::new(IN, 10, true, seed))
        .push(nn::activations::Gelu::new())
        .push(Linear::new(10, OUT, true, seed + 1))
}

fn masks_for(model: &Sequential, seed: u64) -> Vec<Mask> {
    model
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if p.value.shape().len() >= 2 {
                prune::random_prune(p.value.shape(), 0.8, seed + i as u64)
            } else {
                Mask::dense(p.value.shape())
            }
        })
        .collect()
}

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

/// Replicated data parallelism: every rank sees the SAME batch, so the
/// all-reduced mean is the local gradient bit for bit and the whole
/// trajectory must match a single-process trainer on that batch.
fn batch_for(step: usize) -> (Tensor, Tensor) {
    let seed = 7_000 + step as u64;
    (
        Tensor::randn(&[BATCH, IN], 1.0, seed),
        Tensor::randn(&[BATCH, OUT], 1.0, seed + 10_000),
    )
}

fn drive_dist<T: Transport>(
    dist: &mut DistDataParallel<T>,
    model: &mut Sequential,
    step: usize,
) -> Result<bool, comms::CommsError> {
    let (x, target) = batch_for(step);
    let y = model.forward(&x);
    let (_, mut dy) = mse(&y, &target);
    tensor::ops::scale(dist.loss_scale(), dy.as_mut_slice());
    model.backward(&dy);
    dist.step(model)
}

fn drive_oracle(oracle: &mut SamoTrainer, model: &mut Sequential, step: usize) -> bool {
    let (x, target) = batch_for(step);
    let y = model.forward(&x);
    let (_, mut dy) = mse(&y, &target);
    tensor::ops::scale(oracle.loss_scale(), dy.as_mut_slice());
    model.backward(&dy);
    oracle.step(model)
}

#[test]
fn dist_trainer_over_tcp_checkpoints_bitwise_equal_to_samo_trainer() {
    for world in [2usize, 4] {
        let steps = 4;
        let transports = TcpTransport::local_mesh(world).unwrap();
        // Per-step checkpoints from every rank.
        let saved: Vec<Vec<bytes::Bytes>> = std::thread::scope(|s| {
            let handles: Vec<_> = transports
                .into_iter()
                .map(|t| {
                    s.spawn(move || {
                        let comm = Communicator::new(t).with_timeout(Duration::from_secs(10));
                        let mut model = build_model(61);
                        let masks = masks_for(&model, 161);
                        let mut dist = DistDataParallel::new(&mut model, masks, adam(), comm);
                        let mut ckpts = Vec::with_capacity(steps);
                        for step in 0..steps {
                            drive_dist(&mut dist, &mut model, step).expect("healthy step");
                            ckpts.push(dist.save());
                        }
                        ckpts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut model = build_model(61);
        let masks = masks_for(&model, 161);
        let mut oracle = SamoTrainer::new(&mut model, masks, adam());
        for step in 0..steps {
            drive_oracle(&mut oracle, &mut model, step);
            let want = oracle.save();
            for (rank, ckpts) in saved.iter().enumerate() {
                assert_eq!(
                    ckpts[step].as_ref(),
                    want.as_ref(),
                    "world {world}, rank {rank} diverged from SamoTrainer at step {step}"
                );
            }
        }
    }
}

#[test]
fn threaded_group_over_tcp_endpoints_matches_inproc_mesh_bitwise() {
    const WORLD: usize = 2;
    // Per-rank (distinct) batches this time: the property under test is
    // transport-agnosticism of the threaded runtime, not replication.
    let rank_batch = |rank: usize, step: usize| {
        let seed = 9_000 + (step * WORLD + rank) as u64;
        (
            Tensor::randn(&[BATCH, IN], 1.0, seed),
            Tensor::randn(&[BATCH, OUT], 1.0, seed + 10_000),
        )
    };
    let step_fn = move |step: usize| {
        move |rank: usize, model: &mut Sequential, scale: f32| {
            let (x, target) = rank_batch(rank, step);
            let y = model.forward(&x);
            let (_, mut dy) = mse(&y, &target);
            tensor::ops::scale(scale, dy.as_mut_slice());
            dy
        }
    };

    let replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(67)).collect();
    let masks = masks_for(&replicas[0], 167);
    let faults = Arc::new(FaultController::new());
    let tcp_mesh =
        TcpTransport::local_mesh_with(WORLD, Arc::clone(&faults), HeartbeatConfig::default())
            .unwrap();
    let mut over_tcp = ThreadedDataParallelSamo::with_transports(
        replicas,
        masks.clone(),
        adam(),
        Duration::from_secs(10),
        tcp_mesh,
        faults,
    );
    let inproc_replicas: Vec<Sequential> = (0..WORLD).map(|_| build_model(67)).collect();
    let mut over_inproc = ThreadedDataParallelSamo::new(inproc_replicas, masks, adam());

    for step in 0..4 {
        let a = over_tcp.step(step_fn(step)).expect("tcp step");
        let b = over_inproc.step(step_fn(step)).expect("inproc step");
        assert_eq!(a, b, "verdict at step {step}");
        assert_eq!(
            over_tcp.save().as_ref(),
            over_inproc.save().as_ref(),
            "TCP and in-process runs diverged at step {step}"
        );
    }
}

#[test]
fn dead_peer_errors_then_new_generation_resync_replays_bitwise() {
    const WORLD: usize = 2;
    let steps_before = 2;
    let steps_total = 4;
    let rdv = Rendezvous::host("127.0.0.1:0", WORLD).unwrap();
    let addr = rdv.addr();
    let cfg = BootstrapConfig {
        rendezvous_timeout: Duration::from_secs(30),
        heartbeat: HeartbeatConfig { interval: Duration::from_millis(25), miss_limit: 8 },
        ..BootstrapConfig::default()
    };

    let finals: Vec<bytes::Bytes> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORLD)
            .map(|rank| {
                let addr = addr.clone();
                s.spawn(move || {
                    let faults = Arc::new(FaultController::new());
                    // Generation 0: assemble, train, checkpoint.
                    let (t, info) =
                        bootstrap_tcp(&addr, rank, WORLD, 0, &cfg, Arc::clone(&faults)).unwrap();
                    assert_eq!(info.generation, 0);
                    let mut comm = Communicator::new(t).with_timeout(Duration::from_secs(10));
                    comm.adopt_epoch(info.epoch);
                    let mut model = build_model(71);
                    let masks = masks_for(&model, 171);
                    let mut dist =
                        Some(DistDataParallel::new(&mut model, masks.clone(), adam(), comm));
                    for step in 0..steps_before {
                        drive_dist(dist.as_mut().unwrap(), &mut model, step)
                            .expect("pre-failure step");
                    }
                    let ckpt = dist.as_ref().unwrap().save();
                    let survivor_epoch = if rank == 1 {
                        // "SIGKILL": rank 1's process dies, closing its
                        // sockets mid-group.
                        dist = None;
                        0 // the relaunched process starts at epoch 0
                    } else {
                        // The survivor's next step must fail fast (EOF
                        // or heartbeat), never hang.
                        let d = dist.as_mut().unwrap();
                        let err = drive_dist(d, &mut model, steps_before)
                            .expect_err("step with a dead peer must error");
                        assert!(
                            matches!(
                                err,
                                comms::CommsError::Closed { .. }
                                    | comms::CommsError::PeerDead { .. }
                                    | comms::CommsError::Timeout { .. }
                            ),
                            "got {err:?}"
                        );
                        d.comm_mut().epoch()
                    };

                    // Generation 1: everyone (survivor + relaunched rank)
                    // rejoins the same rendezvous.
                    let (t2, info2) =
                        bootstrap_tcp(&addr, rank, WORLD, survivor_epoch, &cfg, faults).unwrap();
                    assert_eq!(info2.generation, 1);
                    let mut comm2 = Communicator::new(t2).with_timeout(Duration::from_secs(10));
                    comm2.adopt_epoch(info2.epoch);

                    // Rank 0 ships the agreed checkpoint to the fresh rank.
                    let mut bytes = if rank == 0 { ckpt.to_vec() } else { Vec::new() };
                    comm2.broadcast_bytes(0, &mut bytes).unwrap();

                    if rank == 1 {
                        // Relaunched process: fresh model + trainer, then
                        // restore the broadcast state and rejoin.
                        model = build_model(71);
                        let mut fresh = DistDataParallel::new(&mut model, masks, adam(), comm2);
                        fresh.restore(&bytes, &mut model).expect("restore on rejoin");
                        fresh.comm_mut().barrier().unwrap();
                        dist = Some(fresh);
                    } else {
                        // Survivor: install the new communicator and roll
                        // back to the agreed checkpoint in one move.
                        dist.as_mut()
                            .unwrap()
                            .resync(comm2, &bytes, &mut model)
                            .expect("survivor resync");
                    }

                    let dist = dist.as_mut().unwrap();
                    for step in steps_before..steps_total {
                        drive_dist(dist, &mut model, step).expect("post-resync step");
                    }
                    dist.save()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Oracle: a never-failed single-process run over the same batches.
    let mut model = build_model(71);
    let masks = masks_for(&model, 171);
    let mut oracle = SamoTrainer::new(&mut model, masks, adam());
    for step in 0..steps_total {
        drive_oracle(&mut oracle, &mut model, step);
    }
    let want = oracle.save();
    for (rank, got) in finals.iter().enumerate() {
        assert_eq!(
            got.as_ref(),
            want.as_ref(),
            "rank {rank}'s post-recovery checkpoint diverged from the oracle"
        );
    }
}
