//! Corruption-safety property tests for the checkpoint loader.
//!
//! The robustness contract (ISSUE: fault-tolerant training): a
//! checkpoint read back from disk is untrusted input. For *any*
//! truncation and *any* single-bit flip, `load_layers` /
//! `load_checkpoint` must return `Err` — never panic, never abort, and
//! never attempt an allocation proportional to a corrupted length
//! field. For the CRC-protected v2 format, bit flips must additionally
//! always be *detected* (an undetected flip would silently resurrect a
//! diverged run from poisoned state).

use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use proptest::prelude::*;
use samo::serialize::{load_checkpoint, load_layers, save_checkpoint, save_layers};
use samo::{SamoLayerState, TrainerMeta};

fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

/// A small two-layer checkpoint with non-trivial optimizer state.
fn sample_layers(seed: u64) -> Vec<SamoLayerState> {
    let opt = adam();
    [(24usize, 0.5f64), (40, 0.8)]
        .iter()
        .enumerate()
        .map(|(i, &(n, p))| {
            let mask = prune::random_prune(&[n], p, seed + i as u64);
            let vals: Vec<f32> = (0..n).map(|j| (j as f32 + 0.3) * 0.01).collect();
            SamoLayerState::from_params(&vals, mask, &opt)
        })
        .collect()
}

fn meta() -> TrainerMeta {
    TrainerMeta {
        loss_scale: 4096.0,
        good_steps: 17,
        steps_taken: 123,
        steps_skipped: 4,
    }
}

/// Every truncation prefix of a v2 checkpoint fails cleanly. Exhaustive,
/// not sampled: the file is small enough to try every length.
#[test]
fn every_truncation_prefix_errors_v2() {
    let layers = sample_layers(11);
    let full = save_checkpoint(&layers, &meta());
    for len in 0..full.len() {
        let res = load_checkpoint(&full[..len], &adam());
        assert!(res.is_err(), "truncation to {len} bytes must be an error");
    }
    assert!(load_checkpoint(&full, &adam()).is_ok());
}

/// Same for the legacy v1 format via `load_layers`.
#[test]
fn every_truncation_prefix_errors_v1() {
    let layers = sample_layers(13);
    let full = save_layers(&layers);
    for len in 0..full.len() {
        let res = load_layers(&full[..len], &adam());
        assert!(res.is_err(), "truncation to {len} bytes must be an error");
    }
    assert!(load_layers(&full, &adam()).is_ok());
}

proptest! {
    /// Any single-bit flip in a v2 checkpoint is *detected*: the CRCs
    /// turn silent payload rot into a load error.
    #[test]
    fn v2_single_bit_flips_always_detected(bit in 0usize..8, seed in 0u64..64) {
        let layers = sample_layers(3);
        let full = save_checkpoint(&layers, &meta());
        // One flipped byte position per case, every bit within it.
        let pos = (seed as usize * 2_654_435_761) % full.len();
        let mut corrupt = full.to_vec();
        corrupt[pos] ^= 1u8 << bit;
        let res = load_checkpoint(&corrupt, &adam());
        prop_assert!(
            res.is_err(),
            "flip of bit {bit} at byte {pos} loaded successfully"
        );
    }

    /// v1 has no checksums, so a flip may load undetected — but it must
    /// never panic or over-allocate, even when it lands in a length
    /// field.
    #[test]
    fn v1_single_bit_flips_never_panic(bit in 0usize..8, seed in 0u64..64) {
        let layers = sample_layers(5);
        let full = save_layers(&layers);
        let pos = (seed as usize * 2_654_435_761) % full.len();
        let mut corrupt = full.to_vec();
        corrupt[pos] ^= 1u8 << bit;
        // Either verdict is fine; surviving the call is the property.
        let _ = load_layers(&corrupt, &adam());
    }

    /// Arbitrary garbage bytes never panic either loader.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = load_layers(&data, &adam());
        let _ = load_checkpoint(&data, &adam());
    }
}

/// A header claiming a huge layer count / element count must fail fast
/// without attempting the corresponding allocation.
#[test]
fn huge_counts_error_without_allocating() {
    // Valid magic + version, then an absurd layer count.
    let mut buf = Vec::new();
    buf.extend_from_slice(&0x53414D4Fu32.to_le_bytes());
    buf.extend_from_slice(&1u16.to_le_bytes());
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(load_layers(&buf, &adam()).is_err());

    // A real checkpoint whose first layer's nnz field is inflated: the
    // byte-budget check must reject it before allocating nnz elements.
    let layers = sample_layers(7);
    let full = save_layers(&layers);
    let mut corrupt = full.to_vec();
    // Layout: magic(4) version(2) nlayers(4) rank(1) shape(8) nnz(8)...
    let nnz_off = 4 + 2 + 4 + 1 + 8;
    corrupt[nnz_off..nnz_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(load_layers(&corrupt, &adam()).is_err());
}
