//! Property-based tests for masks and pruning algorithms.

use proptest::prelude::*;
use prune::{magnitude_prune, random_prune, Mask};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Magnitude pruning keeps exactly the requested count, and every
    /// kept weight's magnitude dominates every pruned weight's.
    #[test]
    fn magnitude_keeps_the_largest(
        weights in proptest::collection::vec(-100.0f32..100.0, 1..300),
        sparsity in 0.0f64..1.0,
    ) {
        let n = weights.len();
        let mask = magnitude_prune(&weights, &[n], sparsity);
        let expect = ((1.0 - sparsity) * n as f64).round() as usize;
        prop_assert_eq!(mask.nnz(), expect);

        let keep = mask.to_bools();
        let min_kept = (0..n)
            .filter(|&i| keep[i])
            .map(|i| weights[i].abs())
            .fold(f32::INFINITY, f32::min);
        let max_pruned = (0..n)
            .filter(|&i| !keep[i])
            .map(|i| weights[i].abs())
            .fold(0.0f32, f32::max);
        if mask.nnz() > 0 && mask.nnz() < n {
            prop_assert!(min_kept >= max_pruned, "{min_kept} < {max_pruned}");
        }
    }

    /// Bool-vector round trip is the identity.
    #[test]
    fn bools_roundtrip(keep in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mask = Mask::from_bools(&[keep.len()], &keep);
        prop_assert_eq!(mask.to_bools(), keep.clone());
        prop_assert_eq!(mask.nnz(), keep.iter().filter(|&&k| k).count());
    }

    /// apply() zeroes exactly the pruned positions and preserves kept
    /// values bit-for-bit.
    #[test]
    fn apply_matches_semantics(
        weights in proptest::collection::vec(-10.0f32..10.0, 1..200),
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = weights.len();
        let mask = random_prune(&[n], sparsity, seed);
        let keep = mask.to_bools();
        let mut applied = weights.clone();
        mask.apply(&mut applied);
        for i in 0..n {
            if keep[i] {
                prop_assert_eq!(applied[i], weights[i]);
            } else {
                prop_assert_eq!(applied[i], 0.0);
            }
        }
    }

    /// Hamming distance is a metric: symmetric, zero iff equal, and
    /// satisfies the triangle inequality.
    #[test]
    fn hamming_is_a_metric(
        n in 1usize..100,
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        s3 in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let a = random_prune(&[n], s1, seed);
        let b = random_prune(&[n], s2, seed ^ 1);
        let c = random_prune(&[n], s3, seed ^ 2);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&a), 0);
        if a.hamming_distance(&b) == 0 {
            prop_assert_eq!(a.indices().as_slice(), b.indices().as_slice());
        }
        prop_assert!(
            a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c)
        );
    }

    /// Iterative pruning is monotone (kept sets shrink) and hits its
    /// geometric schedule regardless of the weights seen per round.
    #[test]
    fn iterative_pruning_monotone(
        n in 20usize..200,
        target in 0.3f64..0.95,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pruner = prune::IterativePruner::new(&[n], target);
        let mut prev = pruner.mask().clone();
        for _ in 0..pruner.rounds_needed() {
            let weights: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mask = pruner.prune_round(&weights);
            // Kept set is a subset of the previous round's.
            let prev_keep = prev.to_bools();
            for (i, &k) in mask.to_bools().iter().enumerate() {
                prop_assert!(!k || prev_keep[i], "resurrected {i}");
            }
            prev = mask;
        }
        prop_assert!(pruner.is_done());
        let min_keep = ((1.0 - target) * n as f64).round() as usize;
        prop_assert_eq!(pruner.mask().nnz(), min_keep.max(1).max(min_keep));
    }

    /// Block pruning always produces block-coherent masks.
    #[test]
    fn block_masks_are_coherent(
        brows in 1usize..8,
        bcols in 1usize..8,
        sparsity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let block = 4usize;
        let (rows, cols) = (brows * block, bcols * block);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mask = prune::block_prune(&w, rows, cols, block, sparsity);
        let coherence = prune::structured::block_coherence(&mask, rows, cols, block);
        prop_assert!((coherence - 1.0).abs() < 1e-12);
        prop_assert_eq!(mask.nnz() % (block * block), 0);
    }
}
