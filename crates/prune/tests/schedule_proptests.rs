//! Property tests for the pruning-schedule substrate: the round count
//! reported by `IterativePruner::rounds_needed` must always be *exact*
//! (reaching `is_done()` in that many rounds and not before), and
//! `GradualSchedule` masks must hit the requested keep count on every
//! update step — including the `t == end` boundary and densification.

use proptest::prelude::*;
use prune::{GradualSchedule, IterativePruner};

fn weights(n: usize, seed: u64) -> Vec<f32> {
    // Deterministic, collision-free magnitudes (xorshift-mixed).
    (0..n)
        .map(|i| {
            let mut x = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            (x >> 11) as f32 / (1u64 << 53) as f32 + i as f32 * 1e-9
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `rounds_needed()` iterations of `prune_round` always reach
    /// `is_done()`, for any numel, target, and rate in (0, 1] —
    /// including the degenerate `rate == 1.0` one-shot and
    /// `target == 1.0` empty-mask cases the closed form used to botch.
    #[test]
    fn rounds_needed_is_exact(
        n in 1usize..500,
        target_pct in 0u32..101,
        rate_pct in 1u32..101,
        seed in any::<u64>(),
    ) {
        let target = target_pct as f64 / 100.0;
        let rate = rate_pct as f64 / 100.0;
        let w = weights(n, seed);
        let mut p = IterativePruner::with_rate(&[n], target, rate);
        let needed = p.rounds_needed();
        prop_assert!(needed < usize::MAX);
        for round in 0..needed {
            prop_assert!(!p.is_done(), "done early: {round} < {needed} rounds");
            p.prune_round(&w);
        }
        prop_assert!(p.is_done(), "not done after {needed} rounds");
        let min_keep = ((1.0 - target) * n as f64).round() as usize;
        prop_assert_eq!(p.mask().nnz(), min_keep);
    }

    /// Every update step's mask lands exactly on the scheduled keep
    /// count, whichever direction the ramp runs (sparsify when
    /// `initial < final`, densify when `initial > final`), and the
    /// window end is always applied.
    #[test]
    fn gradual_masks_track_the_ramp_exactly(
        n in 2usize..300,
        si_pct in 0u32..91,
        sf_pct in 0u32..91,
        begin in 0u64..50,
        span in 1u64..120,
        frequency in 1u64..40,
        seed in any::<u64>(),
    ) {
        let s = GradualSchedule {
            initial: si_pct as f64 / 100.0,
            final_sparsity: sf_pct as f64 / 100.0,
            begin,
            end: begin + span,
            frequency,
        };
        let w = weights(n, seed);
        let mut mask = None;
        for t in 0..=(begin + span + 5) {
            if s.is_update_step(t) {
                let m = s.mask_at(t, &w, &[n], mask.as_ref());
                let want = ((1.0 - s.sparsity_at(t)) * n as f64).round() as usize;
                prop_assert_eq!(m.nnz(), want, "wrong keep count at t = {}", t);
                mask = Some(m);
            }
        }
        let final_keep = ((1.0 - s.final_sparsity) * n as f64).round() as usize;
        prop_assert_eq!(mask.unwrap().nnz(), final_keep, "end step not applied");
    }
}
