//! Property tests for N:M structured mask invariants: exact survivor
//! counts per group (ragged tails included), top-|w| selection, and
//! agreement with the validity checker on arbitrary shapes.

use proptest::prelude::*;
use prune::{is_nm_mask, nm_prune, nm_prune_24};

fn arb_case() -> impl Strategy<Value = (usize, usize, usize, usize, Vec<f32>)> {
    // n is derived from a free seed so the strategy needs no nesting.
    (
        1usize..6,
        1usize..24,
        1usize..6,
        0usize..6,
        proptest::collection::vec(-10.0f32..10.0, 5 * 23),
    )
        .prop_map(|(rows, cols, m, nseed, w)| {
            let n = nseed % m + 1;
            (rows, cols, n, m, w[..rows * cols].to_vec())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every complete group of m keeps exactly n survivors; a ragged
    /// tail of r columns keeps exactly min(n, r) — via the checker and
    /// by direct count.
    #[test]
    fn survivor_counts_are_exact(case in arb_case()) {
        let (rows, cols, n, m, w) = case;
        let mask = nm_prune(&w, rows, cols, n, m);
        prop_assert!(is_nm_mask(&mask, rows, cols, n, m));
        let keep = mask.to_bools();
        for r in 0..rows {
            let mut g0 = 0;
            while g0 < cols {
                let g1 = (g0 + m).min(cols);
                let cnt = (g0..g1).filter(|&c| keep[r * cols + c]).count();
                prop_assert_eq!(cnt, n.min(g1 - g0), "row {} group {}..{}", r, g0, g1);
                g0 = g1;
            }
        }
    }

    /// Top-|w| selection: within each group, every kept weight has
    /// magnitude >= every dropped weight's.
    #[test]
    fn kept_weights_dominate_dropped(case in arb_case()) {
        let (rows, cols, n, m, w) = case;
        let mask = nm_prune(&w, rows, cols, n, m);
        let keep = mask.to_bools();
        for r in 0..rows {
            let mut g0 = 0;
            while g0 < cols {
                let g1 = (g0 + m).min(cols);
                let min_kept = (g0..g1)
                    .filter(|&c| keep[r * cols + c])
                    .map(|c| w[r * cols + c].abs())
                    .fold(f32::INFINITY, f32::min);
                for c in g0..g1 {
                    if !keep[r * cols + c] {
                        prop_assert!(
                            w[r * cols + c].abs() <= min_kept,
                            "row {} col {}: dropped |{}| > min kept |{}|",
                            r, c, w[r * cols + c], min_kept
                        );
                    }
                }
                g0 = g1;
            }
        }
    }

    /// The 2:4 default is the (2, 4) instantiation, and the mask's
    /// global nnz follows from the group arithmetic exactly.
    #[test]
    fn default_24_matches_general(
        rows in 1usize..5,
        cols in 1usize..20,
        wfull in proptest::collection::vec(-5.0f32..5.0, 100),
    ) {
        let w = &wfull[..rows * cols];
        let a = nm_prune_24(w, rows, cols);
        let b = nm_prune(w, rows, cols, 2, 4);
        prop_assert_eq!(a.indices().as_slice(), b.indices().as_slice());
        let per_row = cols / 4 * 2 + 2.min(cols % 4);
        prop_assert_eq!(a.nnz(), rows * per_row);
    }

    /// Masks are deterministic: same weights, same mask.
    #[test]
    fn deterministic(case in arb_case()) {
        let (rows, cols, n, m, w) = case;
        let a = nm_prune(&w, rows, cols, n, m);
        let b = nm_prune(&w, rows, cols, n, m);
        prop_assert_eq!(a.indices().as_slice(), b.indices().as_slice());
    }
}
