//! Structured pruning variants: block-sparse masks (Gray et al.; Chen et
//! al., both discussed in the paper's Sec. II-C) and channel pruning on
//! BatchNorm scale factors (the actual signal of You et al.'s Early-Bird
//! Tickets).
//!
//! SAMO itself is structure-agnostic — any mask compresses the same way —
//! but structured masks matter for the *kernels*: block-sparse weights
//! admit much faster spMM, which is the design tension Fig. 1 exposes.

use crate::algorithms::magnitude_prune;
use crate::mask::Mask;

/// Prunes a `rows × cols` matrix in `block × block` tiles: tiles are
/// ranked by their L1 norm and the smallest are pruned entirely, giving
/// overall sparsity ≈ `sparsity` (tile-granular).
pub fn block_prune(
    weights: &[f32],
    rows: usize,
    cols: usize,
    block: usize,
    sparsity: f64,
) -> Mask {
    assert_eq!(weights.len(), rows * cols);
    assert!(rows.is_multiple_of(block) && cols.is_multiple_of(block), "dims must divide block");
    let brows = rows / block;
    let bcols = cols / block;
    let nblocks = brows * bcols;
    let keep_blocks = ((1.0 - sparsity) * nblocks as f64).round() as usize;

    // L1 norm per tile.
    let mut norms: Vec<(f32, u32)> = (0..nblocks as u32)
        .map(|b| {
            let (bi, bj) = ((b as usize) / bcols, (b as usize) % bcols);
            let mut n = 0.0f32;
            for i in 0..block {
                for j in 0..block {
                    n += weights[(bi * block + i) * cols + (bj * block + j)].abs();
                }
            }
            (n, b)
        })
        .collect();
    norms.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1)));
    let mut kept_blocks: Vec<u32> = norms[..keep_blocks.min(nblocks)].iter().map(|&(_, b)| b).collect();
    kept_blocks.sort_unstable();

    let mut indices = Vec::with_capacity(keep_blocks * block * block);
    for &b in &kept_blocks {
        let (bi, bj) = ((b as usize) / bcols, (b as usize) % bcols);
        for i in 0..block {
            for j in 0..block {
                indices.push(((bi * block + i) * cols + (bj * block + j)) as u32);
            }
        }
    }
    indices.sort_unstable();
    Mask::new(&[rows, cols], indices)
}

/// Channel pruning on BatchNorm scale factors — the Early-Bird Tickets
/// signal: channels with the smallest |γ| are pruned, removing the whole
/// output channel (a row of the following layer's weight).
///
/// Returns the indices of *kept* channels, sorted.
pub fn prune_channels_by_bn_scale(gammas: &[f32], sparsity: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&sparsity));
    let keep = ((1.0 - sparsity) * gammas.len() as f64).round() as usize;
    let mut order: Vec<usize> = (0..gammas.len()).collect();
    order.sort_by(|&a, &b| {
        gammas[b]
            .abs()
            .partial_cmp(&gammas[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut kept = order[..keep].to_vec();
    kept.sort_unstable();
    kept
}

/// Expands a kept-channel list into a weight mask for a `[out_ch, fan_in]`
/// matrix: pruned output channels lose their entire row.
pub fn channel_mask(kept_channels: &[usize], out_ch: usize, fan_in: usize) -> Mask {
    let mut indices = Vec::with_capacity(kept_channels.len() * fan_in);
    for &c in kept_channels {
        assert!(c < out_ch, "channel out of range");
        for j in 0..fan_in {
            indices.push((c * fan_in + j) as u32);
        }
    }
    indices.sort_unstable();
    Mask::new(&[out_ch, fan_in], indices)
}

/// Measures how "blocky" an unstructured mask is: the fraction of
/// `block × block` tiles that are entirely kept or entirely pruned.
/// Random unstructured masks score near zero at moderate sparsity;
/// block-pruned masks score 1.0.
pub fn block_coherence(mask: &Mask, rows: usize, cols: usize, block: usize) -> f64 {
    assert_eq!(mask.numel(), rows * cols);
    assert!(rows.is_multiple_of(block) && cols.is_multiple_of(block));
    let keep = mask.to_bools();
    let (brows, bcols) = (rows / block, cols / block);
    let mut pure = 0usize;
    for bi in 0..brows {
        for bj in 0..bcols {
            let mut count = 0usize;
            for i in 0..block {
                for j in 0..block {
                    if keep[(bi * block + i) * cols + (bj * block + j)] {
                        count += 1;
                    }
                }
            }
            if count == 0 || count == block * block {
                pure += 1;
            }
        }
    }
    pure as f64 / (brows * bcols) as f64
}

/// Convenience: unstructured magnitude mask for the same matrix, for
/// comparing structured vs unstructured (paper Sec. II-C discussion).
pub fn unstructured_prune(weights: &[f32], rows: usize, cols: usize, sparsity: f64) -> Mask {
    magnitude_prune(weights, &[rows, cols], sparsity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_prune_keeps_whole_tiles() {
        let (rows, cols, block) = (8usize, 8, 4);
        // Make the top-left tile strongest.
        let mut w = vec![0.1f32; rows * cols];
        for i in 0..4 {
            for j in 0..4 {
                w[i * cols + j] = 10.0;
            }
        }
        let mask = block_prune(&w, rows, cols, block, 0.75);
        assert_eq!(mask.nnz(), 16, "exactly one of four tiles kept");
        let keep = mask.to_bools();
        for i in 0..4 {
            for j in 0..4 {
                assert!(keep[i * cols + j], "strong tile must survive");
            }
        }
        assert!((block_coherence(&mask, rows, cols, block) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_prune_sparsity_is_tile_granular() {
        let w: Vec<f32> = (0..64 * 64).map(|i| (i % 101) as f32).collect();
        let mask = block_prune(&w, 64, 64, 8, 0.9);
        // 64 tiles, keep round(6.4) = 6 tiles = 384 weights.
        assert_eq!(mask.nnz(), 6 * 64);
        mask.indices(); // valid by construction (Mask::new validated)
    }

    #[test]
    fn unstructured_mask_is_not_blocky() {
        let mask = crate::random_prune(&[64, 64], 0.5, 3);
        let coherence = block_coherence(&mask, 64, 64, 8);
        assert!(coherence < 0.05, "random mask should have ~no pure tiles: {coherence}");
    }

    #[test]
    fn bn_channel_pruning_keeps_large_gammas() {
        let gammas = vec![0.01, 0.9, 0.02, 1.5, 0.03, 0.8];
        let kept = prune_channels_by_bn_scale(&gammas, 0.5);
        assert_eq!(kept, vec![1, 3, 5]);
    }

    #[test]
    fn channel_mask_prunes_whole_rows() {
        let mask = channel_mask(&[0, 2], 4, 3);
        assert_eq!(mask.nnz(), 6);
        let keep = mask.to_bools();
        assert_eq!(keep, vec![
            true, true, true, //
            false, false, false, //
            true, true, true, //
            false, false, false,
        ]);
        assert!((mask.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_pruning_extremes() {
        let gammas = vec![1.0, 2.0, 3.0];
        assert_eq!(prune_channels_by_bn_scale(&gammas, 0.0), vec![0, 1, 2]);
        assert!(prune_channels_by_bn_scale(&gammas, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn block_prune_rejects_ragged_dims() {
        block_prune(&[0.0; 60], 6, 10, 4, 0.5);
    }
}
