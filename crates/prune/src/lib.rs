//! Neural-network pruning for the SAMO reproduction.
//!
//! SAMO "can be applied only after a neural network has been sparsified
//! using a pruning algorithm" (paper Sec. III); the pruning algorithm's
//! output is `ind`, the per-layer linearized indices of unpruned
//! parameters. This crate provides [`mask::Mask`] (the `ind_i` data
//! structure with the shared-index and 1-D-linearization optimizations of
//! Sec. III-B) and the pruning oracles that produce it, including an
//! emulation of You et al.'s Early-Bird Tickets criterion used by the
//! paper's experiments.

pub mod algorithms;
pub mod dynamic;
pub mod nm;
pub mod iterative;
pub mod structured;
pub mod mask;
pub mod schedule;

pub use algorithms::{global_magnitude_prune, magnitude_prune, random_prune, EarlyBird};
pub use dynamic::{MaskSchedule, MomentumPruneRegrow};
pub use iterative::{one_shot_prune, IterativePruner};
pub use mask::Mask;
pub use nm::{is_nm_mask, nm_prune, nm_prune_24};
pub use schedule::GradualSchedule;
pub use structured::{block_prune, channel_mask, prune_channels_by_bn_scale};
