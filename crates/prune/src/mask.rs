//! Pruning masks with linearized indices.
//!
//! A pruning algorithm's output, in the paper's notation, is
//! `ind = ⋃_i ind_i`: for each layer `i`, the indices of the *unpruned*
//! (nonzero) parameters. Sec. III-B stores these as 32-bit integers
//! against a flattened 1-D view of the layer's weight tensor, which for an
//! N-dimensional tensor saves N× index memory versus coordinate tuples.

use std::sync::Arc;

/// The set of unpruned parameter positions for one layer.
///
/// Invariants: `indices` is sorted, strictly increasing, each element
/// `< numel`. The mask is shared (`Arc`) between all compressed model
/// state tensors of the layer — the paper's "common index tensor"
/// optimization (Sec. III-B).
///
/// ```
/// let weights = vec![0.1, -5.0, 0.2, 3.0];
/// let mask = prune::magnitude_prune(&weights, &[4], 0.5);
/// assert_eq!(mask.indices().as_slice(), &[1, 3]); // two largest |w|
/// assert_eq!(mask.sparsity(), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Mask {
    shape: Vec<usize>,
    indices: Arc<Vec<u32>>,
}

impl Mask {
    /// Builds a mask from raw linearized indices.
    ///
    /// # Panics
    /// Panics if indices are unsorted, duplicated, or out of bounds, or if
    /// the tensor is too large for `u32` linearized indexing.
    pub fn new(shape: &[usize], indices: Vec<u32>) -> Mask {
        let numel: usize = shape.iter().product();
        assert!(numel <= u32::MAX as usize, "tensor too large for u32 indices");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "mask indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!((last as usize) < numel, "mask index out of bounds");
        }
        if telemetry::enabled() {
            telemetry::global().counter("prune.masks_built").inc();
        }
        Mask {
            shape: shape.to_vec(),
            indices: Arc::new(indices),
        }
    }

    /// A mask keeping every parameter (sparsity 0).
    pub fn dense(shape: &[usize]) -> Mask {
        let numel: usize = shape.iter().product();
        Mask::new(shape, (0..numel as u32).collect())
    }

    /// Builds a mask from a boolean keep-vector over the flattened tensor.
    pub fn from_bools(shape: &[usize], keep: &[bool]) -> Mask {
        let numel: usize = shape.iter().product();
        assert_eq!(keep.len(), numel);
        let indices = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect();
        Mask::new(shape, indices)
    }

    /// Shape of the masked tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total parameter count of the (unpruned) tensor.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of *unpruned* parameters.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of parameters pruned (`p` in the paper).
    pub fn sparsity(&self) -> f64 {
        if self.numel() == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / self.numel() as f64
        }
    }

    /// The shared linearized index tensor (`ind_i`).
    pub fn indices(&self) -> &Arc<Vec<u32>> {
        &self.indices
    }

    /// Bytes occupied by the index storage itself (4 bytes per index).
    pub fn index_bytes(&self) -> usize {
        self.nnz() * std::mem::size_of::<u32>()
    }

    /// Applies the mask in place: pruned positions are zeroed.
    pub fn apply(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.numel());
        // Walk the sorted kept indices and zero the gaps between them.
        let mut next_kept = 0usize;
        for (i, v) in dense.iter_mut().enumerate() {
            if next_kept < self.indices.len() && self.indices[next_kept] as usize == i {
                next_kept += 1;
            } else {
                *v = 0.0;
            }
        }
    }

    /// Returns a boolean keep-vector (true = unpruned).
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = vec![false; self.numel()];
        for &i in self.indices.iter() {
            out[i as usize] = true;
        }
        out
    }

    /// Hamming distance between two masks over the same shape — the
    /// convergence metric of the early-bird ticket criterion (You et al.,
    /// ICLR 2020): number of positions whose kept/pruned status differs.
    pub fn hamming_distance(&self, other: &Mask) -> usize {
        assert_eq!(self.shape, other.shape, "masks must cover the same tensor");
        // Merge the two sorted index lists counting symmetric difference.
        let (a, b) = (&self.indices, &other.indices);
        let (mut i, mut j, mut diff) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    diff += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        diff + (a.len() - i) + (b.len() - j)
    }

    /// Normalized mask distance in [0, 1] (Hamming / numel).
    pub fn distance(&self, other: &Mask) -> f64 {
        if self.numel() == 0 {
            0.0
        } else {
            self.hamming_distance(other) as f64 / self.numel() as f64
        }
    }
}

/// Demonstration of the paper's linearization example (Sec. III-B): for a
/// 2×2 tensor with nonzeros at coordinates (0,0) and (1,1), the 1-D view
/// stores indices [0, 3].
pub fn linearize_coords(shape: &[usize], coords: &[Vec<usize>]) -> Vec<u32> {
    let mut out: Vec<u32> = coords
        .iter()
        .map(|c| {
            assert_eq!(c.len(), shape.len());
            let mut idx = 0usize;
            for (d, &x) in c.iter().enumerate() {
                assert!(x < shape[d], "coordinate out of bounds");
                idx = idx * shape[d] + x;
            }
            idx as u32
        })
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_linearization_example() {
        // "say the non-zero indices for a 2×2 state tensor are
        // [(0,0),(1,1)] ... the non-zero values are at indices 0 and 3"
        let ind = linearize_coords(&[2, 2], &[vec![0, 0], vec![1, 1]]);
        assert_eq!(ind, vec![0, 3]);
    }

    #[test]
    fn mask_basic_accounting() {
        let m = Mask::new(&[2, 3], vec![0, 2, 5]);
        assert_eq!(m.numel(), 6);
        assert_eq!(m.nnz(), 3);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(m.index_bytes(), 12);
    }

    #[test]
    fn dense_mask_keeps_everything() {
        let m = Mask::dense(&[3, 3]);
        assert_eq!(m.nnz(), 9);
        assert_eq!(m.sparsity(), 0.0);
        let mut data = vec![1.0f32; 9];
        m.apply(&mut data);
        assert!(data.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn apply_zeroes_pruned_positions() {
        let m = Mask::new(&[6], vec![1, 4]);
        let mut data = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        m.apply(&mut data);
        assert_eq!(data, vec![0.0, 11.0, 0.0, 0.0, 14.0, 0.0]);
    }

    #[test]
    fn bool_roundtrip() {
        let keep = vec![true, false, true, true, false];
        let m = Mask::from_bools(&[5], &keep);
        assert_eq!(m.indices().as_slice(), &[0, 2, 3]);
        assert_eq!(m.to_bools(), keep);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        Mask::new(&[4], vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        Mask::new(&[4], vec![0, 4]);
    }

    #[test]
    fn hamming_distance_symmetric_difference() {
        let a = Mask::new(&[6], vec![0, 1, 2]);
        let b = Mask::new(&[6], vec![1, 2, 3, 4]);
        // diff positions: 0 (only a), 3, 4 (only b) => 3
        assert_eq!(a.hamming_distance(&b), 3);
        assert_eq!(b.hamming_distance(&a), 3);
        assert_eq!(a.hamming_distance(&a), 0);
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_mask_edge_cases() {
        let m = Mask::new(&[4], vec![]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
        let mut data = vec![1.0f32; 4];
        m.apply(&mut data);
        assert!(data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shared_indices_are_actually_shared() {
        let m = Mask::new(&[4], vec![0, 2]);
        let i1 = Arc::clone(m.indices());
        let m2 = m.clone();
        // Three handles: mask, clone, explicit Arc.
        assert!(Arc::strong_count(&i1) >= 3);
        assert_eq!(m2.indices().as_slice(), i1.as_slice());
    }
}
