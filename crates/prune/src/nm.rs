//! N:M structured pruning: keep the `n` largest-magnitude weights in
//! every group of `m` consecutive elements along a row.
//!
//! This is the mask family behind NVIDIA sparse tensor cores (2:4) and
//! apex ASP's `m4n2_1d` mask search (SNIPPETS.md §1): unlike the
//! unstructured magnitude masks elsewhere in this crate, an N:M mask has
//! a *fixed* local density, which is what lets `sparse::nm`'s structured
//! spMM consume it with a branch-free SIMD inner loop instead of the
//! paper's "sparse kernels can't win" CSR indirection (Fig. 1).

use crate::mask::Mask;
use std::cmp::Ordering;

/// Builds an N:M structured mask over a row-major `rows × cols` weight
/// matrix: in each group of `m` consecutive columns, the `n` positions
/// with the largest `|w|` survive (ties keep the lower index, so the
/// result is deterministic). A ragged final group of `r < m` columns
/// keeps `min(n, r)` positions.
///
/// # Panics
/// Panics if `n > m`, `m == 0`, or the slice doesn't match the shape.
pub fn nm_prune(weights: &[f32], rows: usize, cols: usize, n: usize, m: usize) -> Mask {
    assert!(m >= 1, "group size m must be >= 1");
    assert!(n <= m, "cannot keep {n} of every {m}");
    assert_eq!(weights.len(), rows * cols, "weight slice/shape mismatch");
    let mut indices: Vec<u32> = Vec::with_capacity(rows * (cols / m * n + n.min(cols % m)));
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut kept: Vec<u32> = Vec::with_capacity(n);
    for r in 0..rows {
        let row = &weights[r * cols..(r + 1) * cols];
        let mut g0 = 0;
        while g0 < cols {
            let g1 = (g0 + m).min(cols);
            order.clear();
            order.extend(g0..g1);
            order.sort_by(|&a, &b| {
                row[b]
                    .abs()
                    .partial_cmp(&row[a].abs())
                    .unwrap_or(Ordering::Equal)
                    .then(a.cmp(&b))
            });
            kept.clear();
            kept.extend(order[..n.min(g1 - g0)].iter().map(|&c| (r * cols + c) as u32));
            kept.sort_unstable();
            indices.extend_from_slice(&kept);
            g0 = g1;
        }
    }
    Mask::new(&[rows, cols], indices)
}

/// Magnitude-based 2:4 mask — the default structured pattern consumed by
/// `sparse::nm::Nm24`.
pub fn nm_prune_24(weights: &[f32], rows: usize, cols: usize) -> Mask {
    nm_prune(weights, rows, cols, 2, 4)
}

/// Checks whether `mask` is a valid N:M structured mask for a
/// `rows × cols` matrix: every complete group of `m` consecutive columns
/// keeps exactly `n` positions, and a ragged final group of `r` columns
/// keeps exactly `min(n, r)`.
pub fn is_nm_mask(mask: &Mask, rows: usize, cols: usize, n: usize, m: usize) -> bool {
    if m == 0 || n > m || mask.shape() != [rows, cols] {
        return false;
    }
    let groups_per_row = cols.div_ceil(m);
    let mut counts = vec![0u32; rows * groups_per_row];
    for &ix in mask.indices().iter() {
        let (r, c) = ((ix as usize) / cols, (ix as usize) % cols);
        counts[r * groups_per_row + c / m] += 1;
    }
    for r in 0..rows {
        for g in 0..groups_per_row {
            let gsize = m.min(cols - g * m);
            if counts[r * groups_per_row + g] != n.min(gsize) as u32 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_two_of_four_by_magnitude() {
        let w = [0.1f32, -0.9, 0.5, 0.2, /* row 2 */ 3.0, -4.0, 0.0, 1.0];
        let mask = nm_prune_24(&w, 2, 4);
        assert_eq!(mask.indices().as_slice(), &[1, 2, 4, 5]);
        assert!(is_nm_mask(&mask, 2, 4, 2, 4));
    }

    #[test]
    fn ties_keep_lower_index() {
        let w = [1.0f32, 1.0, 1.0, 1.0];
        let mask = nm_prune_24(&w, 1, 4);
        assert_eq!(mask.indices().as_slice(), &[0, 1]);
    }

    #[test]
    fn ragged_tail_keeps_min_n_r() {
        // cols = 6: one full group of 4 (keep 2) + tail of 2 (keep 2);
        // cols = 5: full group + tail of 1 (keep 1).
        let w6 = [0.0f32, 1.0, 2.0, 3.0, 9.0, 8.0];
        let m6 = nm_prune_24(&w6, 1, 6);
        assert_eq!(m6.indices().as_slice(), &[2, 3, 4, 5]);
        assert!(is_nm_mask(&m6, 1, 6, 2, 4));
        let w5 = [0.0f32, 1.0, 2.0, 3.0, 9.0];
        let m5 = nm_prune_24(&w5, 1, 5);
        assert_eq!(m5.indices().as_slice(), &[2, 3, 4]);
        assert!(is_nm_mask(&m5, 1, 5, 2, 4));
    }

    #[test]
    fn general_nm_shapes() {
        let w: Vec<f32> = (0..24).map(|i| (i % 7) as f32 - 3.0).collect();
        for &(n, m) in &[(1, 2), (1, 4), (2, 4), (3, 4), (4, 4), (2, 8)] {
            let mask = nm_prune(&w, 3, 8, n, m);
            assert!(is_nm_mask(&mask, 3, 8, n, m), "invalid {n}:{m} mask");
            // A different (n, m) should not validate unless degenerate.
            if n != m {
                assert!(!is_nm_mask(&mask, 3, 8, m, m));
            }
        }
    }

    #[test]
    fn validity_checker_rejects_unstructured() {
        // 4 of 8 kept, but both in the same group of 4.
        let mask = Mask::new(&[1, 8], vec![0, 1, 2, 3]);
        assert!(!is_nm_mask(&mask, 1, 8, 2, 4));
        // Wrong shape.
        let ok = nm_prune_24(&[1.0; 8], 1, 8);
        assert!(!is_nm_mask(&ok, 2, 4, 2, 4));
    }
}
