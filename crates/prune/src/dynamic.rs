//! Dynamic sparsity: mask schedules that evolve during training.
//!
//! SAMO (PAPER.md) freezes a lottery-ticket mask before compressing any
//! state against it, but the related work moves the mask while training
//! runs: Dettmers & Zettlemoyer's "Sparse Networks from Scratch"
//! (PAPERS.md) prunes the smallest-magnitude survivors and regrows the
//! same number of pruned positions by gradient momentum every few
//! hundred steps, and SNIPER (SNIPPETS.md §2) starts at high sparsity
//! and *densifies* toward the target. [`MaskSchedule`] unifies both
//! regimes behind one deterministic policy interface so the trainer can
//! remap its compressed state whenever the schedule fires.
//!
//! Policies are deliberately **stateless**: the next mask is a pure
//! function of the step index, the dense weights, a grow score, and the
//! previous mask. That is what makes checkpointing trivial (the mask
//! bytes plus the step counters already in `TrainerMeta` are the entire
//! schedule state — the config is caller-provided on resume, exactly
//! like the optimizer) and what makes every data-parallel rank compute
//! bitwise-identical masks from the reduced gradient.

use crate::mask::Mask;
use crate::schedule::GradualSchedule;

/// Deterministic ordering on (|score|, index): descending magnitude,
/// ties broken by ascending index. NaN scores sort last.
fn by_score_desc(score: &[f32]) -> impl Fn(&u32, &u32) -> std::cmp::Ordering + '_ {
    move |&a, &b| {
        score[b as usize]
            .abs()
            .partial_cmp(&score[a as usize].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    }
}

/// Grows `prev` to `keep_target` kept positions: every old survivor is
/// retained and the highest-|score| currently-pruned positions are
/// admitted to fill the deficit. Deterministic (score ties break by
/// index). Used for densification by both [`MaskSchedule`] policies and
/// by `GradualSchedule::mask_at`.
pub(crate) fn grow_to(prev: &Mask, keep_target: usize, score: &[f32]) -> Mask {
    let numel = prev.numel();
    assert_eq!(score.len(), numel);
    let keep_target = keep_target.min(numel);
    assert!(
        keep_target >= prev.nnz(),
        "grow_to cannot shrink: target {keep_target} < nnz {}",
        prev.nnz()
    );
    let kept_bools = prev.to_bools();
    let mut candidates: Vec<u32> = (0..numel as u32)
        .filter(|&i| !kept_bools[i as usize])
        .collect();
    candidates.sort_by(by_score_desc(score));
    let mut kept: Vec<u32> = prev.indices().as_slice().to_vec();
    kept.extend_from_slice(&candidates[..keep_target - kept.len()]);
    kept.sort_unstable();
    Mask::new(prev.shape(), kept)
}

/// Momentum-style prune-and-regrow with a piecewise-linear sparsity
/// trajectory (Dettmers & Zettlemoyer, PAPERS.md).
///
/// Every `frequency` steps (and at every trajectory knot), the policy
/// prunes the smallest-|θ| survivors down to the trajectory's current
/// keep count and regrows the highest-|grow score| pruned positions —
/// the score is the dense gradient in the trainer, i.e. momentum-like
/// information about which dead weights want to move. `swap_fraction`
/// of the kept budget is additionally churned (worst survivors swapped
/// for best candidates) even when the target is flat, which is what
/// makes the mask *move* rather than merely ratchet. Because the
/// trajectory is piecewise linear between arbitrary knots, it can
/// sparsify, densify (SNIPER-style), or plateau in any order.
#[derive(Debug, Clone)]
pub struct MomentumPruneRegrow {
    /// `(step, sparsity)` knots, strictly increasing in step, each
    /// sparsity in [0, 1]. The schedule is clamped outside
    /// `[first.0, last.0]` and linearly interpolated between knots.
    pub trajectory: Vec<(u64, f64)>,
    /// Steps between mask updates inside the active window.
    pub frequency: u64,
    /// Fraction of the kept budget churned (pruned + regrown) per
    /// update, in [0, 1).
    pub swap_fraction: f64,
}

impl MomentumPruneRegrow {
    pub fn new(trajectory: Vec<(u64, f64)>, frequency: u64, swap_fraction: f64) -> Self {
        assert!(!trajectory.is_empty(), "trajectory needs at least one knot");
        assert!(frequency >= 1, "frequency must be >= 1");
        assert!(
            (0.0..1.0).contains(&swap_fraction),
            "swap_fraction must be in [0, 1)"
        );
        for pair in trajectory.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "trajectory knots must be strictly increasing in step"
            );
        }
        for &(_, s) in &trajectory {
            assert!((0.0..=1.0).contains(&s), "sparsity must be in [0, 1]");
        }
        MomentumPruneRegrow {
            trajectory,
            frequency,
            swap_fraction,
        }
    }

    fn begin(&self) -> u64 {
        self.trajectory.first().unwrap().0
    }

    fn end(&self) -> u64 {
        self.trajectory.last().unwrap().0
    }

    /// Piecewise-linear sparsity at step `t`, clamped outside the window.
    pub fn sparsity_at(&self, t: u64) -> f64 {
        if t <= self.begin() {
            return self.trajectory.first().unwrap().1;
        }
        if t >= self.end() {
            return self.trajectory.last().unwrap().1;
        }
        for pair in self.trajectory.windows(2) {
            let ((t0, s0), (t1, s1)) = (pair[0], pair[1]);
            if t >= t0 && t <= t1 {
                let f = (t - t0) as f64 / (t1 - t0) as f64;
                return s0 + (s1 - s0) * f;
            }
        }
        unreachable!("t inside window but between no knots")
    }

    /// Mask updates fire on the frequency grid inside the window, at
    /// every knot (phase boundaries must be applied), and always at the
    /// window end.
    pub fn is_update_step(&self, t: u64) -> bool {
        let (b, e) = (self.begin(), self.end());
        t >= b
            && t <= e
            && ((t - b).is_multiple_of(self.frequency)
                || t == e
                || self.trajectory.iter().any(|&(k, _)| k == t))
    }

    /// Computes the next mask: prune smallest-|weights| survivors to the
    /// trajectory's keep count minus the churn budget, then regrow the
    /// highest-|grow_score| pruned positions to fill the target.
    pub fn next_mask(&self, t: u64, weights: &[f32], grow_score: &[f32], prev: &Mask) -> Mask {
        let numel = prev.numel();
        assert_eq!(weights.len(), numel);
        assert_eq!(grow_score.len(), numel);
        let keep_target =
            (((1.0 - self.sparsity_at(t)) * numel as f64).round() as usize).min(numel);

        let mut survivors: Vec<u32> = prev.indices().as_slice().to_vec();
        survivors.sort_by(by_score_desc(weights));
        let base_keep = keep_target.min(survivors.len());
        let n_swap = ((self.swap_fraction * base_keep as f64).floor() as usize).min(base_keep);

        let kept_bools = prev.to_bools();
        let mut candidates: Vec<u32> = (0..numel as u32)
            .filter(|&i| !kept_bools[i as usize])
            .collect();
        candidates.sort_by(by_score_desc(grow_score));

        let mut kept: Vec<u32> = survivors[..base_keep - n_swap].to_vec();
        let from_candidates = (keep_target - kept.len()).min(candidates.len());
        kept.extend_from_slice(&candidates[..from_candidates]);
        // Candidate pool exhausted (tiny layers / near-dense targets):
        // re-admit the best of the just-dropped survivors.
        let mut refill = base_keep - n_swap;
        while kept.len() < keep_target {
            kept.push(survivors[refill]);
            refill += 1;
        }
        kept.sort_unstable();
        Mask::new(prev.shape(), kept)
    }
}

/// A mask-evolution policy driving dynamic sparsity in the trainer.
///
/// Wraps the monotone [`GradualSchedule`] cubic ramp and the
/// [`MomentumPruneRegrow`] prune-and-regrow policy behind one interface:
/// `is_update_step` says *when* the mask moves, `next_mask` says *what*
/// it moves to. `next_mask` is a pure function of its arguments, so any
/// process holding the same weights/scores computes the same mask —
/// the property the data-parallel runtimes rely on for bitwise
/// equivalence after a remap.
#[derive(Debug, Clone)]
pub enum MaskSchedule {
    /// Zhu–Gupta cubic ramp (monotone when `initial <= final_sparsity`;
    /// densifies by grow score when the ramp runs downward).
    Gradual(GradualSchedule),
    /// Momentum prune-and-regrow over a piecewise-linear trajectory.
    MomentumPruneRegrow(MomentumPruneRegrow),
}

impl MaskSchedule {
    /// True on steps where the mask should be recomputed (and the
    /// trainer should remap its compressed state).
    pub fn is_update_step(&self, t: u64) -> bool {
        match self {
            MaskSchedule::Gradual(g) => g.is_update_step(t),
            MaskSchedule::MomentumPruneRegrow(m) => m.is_update_step(t),
        }
    }

    /// Target sparsity `p(t)` at step `t` (clamped outside the window).
    pub fn sparsity_at(&self, t: u64) -> f64 {
        match self {
            MaskSchedule::Gradual(g) => g.sparsity_at(t),
            MaskSchedule::MomentumPruneRegrow(m) => m.sparsity_at(t),
        }
    }

    /// Last step on which the schedule can fire.
    pub fn end(&self) -> u64 {
        match self {
            MaskSchedule::Gradual(g) => g.end,
            MaskSchedule::MomentumPruneRegrow(m) => m.end(),
        }
    }

    /// The mask the schedule wants at step `t`. `weights` is the dense
    /// parameter view (zeros at pruned positions), `grow_score` ranks
    /// pruned positions for regrowth — the trainer passes the
    /// f16-canonicalized dense gradient so every rank of a data-parallel
    /// group agrees bitwise. Both slices are `numel` long.
    pub fn next_mask(&self, t: u64, weights: &[f32], grow_score: &[f32], prev: &Mask) -> Mask {
        match self {
            MaskSchedule::Gradual(g) => {
                let keep =
                    ((1.0 - g.sparsity_at(t)) * prev.numel() as f64).round() as usize;
                if keep > prev.nnz() {
                    // Densify by grow score (the dense weights are zero
                    // at pruned positions, so |w| cannot rank them).
                    grow_to(prev, keep, grow_score)
                } else {
                    g.mask_at(t, weights, prev.shape(), Some(prev))
                }
            }
            MaskSchedule::MomentumPruneRegrow(m) => m.next_mask(t, weights, grow_score, prev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::magnitude_prune;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i + 1) as f32).collect()
    }

    #[test]
    fn grow_to_admits_by_score() {
        let w = ramp(10);
        let prev = magnitude_prune(&w, &[10], 0.8); // keeps 8, 9
        assert_eq!(prev.indices().as_slice(), &[8, 9]);
        // Score favors indices 1 and 4 among the pruned.
        let score = vec![0.0, 9.0, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.0, 0.0];
        let grown = grow_to(&prev, 4, &score);
        assert_eq!(grown.indices().as_slice(), &[1, 4, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_to_rejects_shrinking() {
        let prev = Mask::new(&[4], vec![0, 1, 2]);
        grow_to(&prev, 2, &[0.0; 4]);
    }

    #[test]
    fn momentum_trajectory_interpolates_and_clamps() {
        let m = MomentumPruneRegrow::new(vec![(100, 0.5), (200, 0.9), (300, 0.7)], 25, 0.0);
        assert_eq!(m.sparsity_at(0), 0.5);
        assert_eq!(m.sparsity_at(100), 0.5);
        assert!((m.sparsity_at(150) - 0.7).abs() < 1e-12);
        assert_eq!(m.sparsity_at(200), 0.9);
        assert!((m.sparsity_at(250) - 0.8).abs() < 1e-12);
        assert_eq!(m.sparsity_at(300), 0.7);
        assert_eq!(m.sparsity_at(1000), 0.7);
    }

    #[test]
    fn momentum_updates_fire_on_grid_knots_and_end() {
        let m = MomentumPruneRegrow::new(vec![(10, 0.5), (33, 0.9), (45, 0.7)], 10, 0.0);
        let fired: Vec<u64> = (0..60).filter(|&t| m.is_update_step(t)).collect();
        // Grid from begin: 10, 20, 30, 40; knot 33; end 45.
        assert_eq!(fired, vec![10, 20, 30, 33, 40, 45]);
    }

    #[test]
    fn momentum_tracks_keep_count_both_directions() {
        let n = 100usize;
        let w: Vec<f32> = (0..n).map(|i| ((i * 61) % 199) as f32 * 0.01 + 0.01).collect();
        let score: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
        let m = MomentumPruneRegrow::new(vec![(0, 0.5), (100, 0.9), (200, 0.4)], 50, 0.1);
        let mut mask = magnitude_prune(&w, &[n], 0.5);
        for t in 0..=200u64 {
            if m.is_update_step(t) {
                mask = m.next_mask(t, &w, &score, &mask);
                let want = ((1.0 - m.sparsity_at(t)) * n as f64).round() as usize;
                assert_eq!(mask.nnz(), want, "wrong keep count at t = {t}");
            }
        }
        assert_eq!(mask.nnz(), 60, "densified back to 0.4");
    }

    #[test]
    fn momentum_swap_churns_the_mask_at_flat_target() {
        let n = 50usize;
        let w = ramp(n);
        // Grow score strongly favors low indices (which |w| pruned).
        let score: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let m = MomentumPruneRegrow::new(vec![(0, 0.5), (100, 0.5)], 50, 0.2);
        let first = m.next_mask(0, &w, &score, &magnitude_prune(&w, &[n], 0.5));
        let prev = magnitude_prune(&w, &[n], 0.5);
        assert_eq!(first.nnz(), prev.nnz(), "flat target keeps the count");
        assert!(
            first.hamming_distance(&prev) > 0,
            "swap_fraction must move the mask even at a flat target"
        );
    }

    #[test]
    fn momentum_refills_when_candidate_pool_is_exhausted() {
        // 4 weights, 3 survivors, target dense: only 1 candidate exists
        // but the churn wants to swap too — dropped survivors refill.
        let m = MomentumPruneRegrow::new(vec![(0, 0.0)], 1, 0.5);
        let prev = Mask::new(&[4], vec![0, 1, 3]);
        let mask = m.next_mask(0, &[4.0, 3.0, 2.0, 1.0], &[1.0; 4], &prev);
        assert_eq!(mask.nnz(), 4, "target was dense");
    }

    #[test]
    fn schedule_enum_delegates_and_densifies_gradual() {
        let n = 40usize;
        let w: Vec<f32> = (0..n).map(|i| ((i * 61) % 199) as f32 * 0.01 + 0.01).collect();
        let score: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32 * 0.01).collect();
        let g = MaskSchedule::Gradual(GradualSchedule {
            initial: 0.9,
            final_sparsity: 0.5,
            begin: 0,
            end: 100,
            frequency: 50,
        });
        assert!(g.is_update_step(0) && g.is_update_step(100) && !g.is_update_step(7));
        assert_eq!(g.end(), 100);
        let start = magnitude_prune(&w, &[n], 0.9);
        let mid = g.next_mask(50, &w, &score, &start);
        assert!(mid.nnz() > start.nnz(), "downward ramp must densify");
        let fin = g.next_mask(100, &w, &score, &mid);
        assert_eq!(fin.nnz(), 20);
        // Densification preserved every old survivor.
        let old = start.to_bools();
        for (i, &k) in fin.to_bools().iter().enumerate() {
            if old[i] {
                assert!(k, "survivor {i} dropped during densification");
            }
        }
    }

    #[test]
    fn next_mask_is_deterministic() {
        let n = 64usize;
        let w: Vec<f32> = (0..n).map(|i| ((i * 23) % 67) as f32 * 0.1).collect();
        let score: Vec<f32> = (0..n).map(|i| ((i * 41) % 71) as f32 * 0.1).collect();
        let m = MaskSchedule::MomentumPruneRegrow(MomentumPruneRegrow::new(
            vec![(0, 0.3), (60, 0.8)],
            20,
            0.15,
        ));
        let prev = magnitude_prune(&w, &[n], 0.3);
        let a = m.next_mask(20, &w, &score, &prev);
        let b = m.next_mask(20, &w, &score, &prev);
        assert_eq!(a, b);
    }
}
