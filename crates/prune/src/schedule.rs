//! Gradual pruning schedules.
//!
//! Zhu & Gupta's cubic sparsity schedule ("To prune, or not to prune"),
//! popularized by the sparsity survey of Gale et al. (the paper's
//! Ref. 20): sparsity ramps from `s_i` to `s_f` over a pruning window as
//! `s(t) = s_f + (s_i − s_f)·(1 − (t − t0)/Δ)³`, re-pruning every few
//! steps. SAMO can be applied once the final mask is frozen.

use crate::algorithms::magnitude_prune;
use crate::mask::Mask;

/// Cubic sparsity ramp from `initial` to `final_sparsity` between steps
/// `begin` and `end`, updating every `frequency` steps.
#[derive(Debug, Clone, Copy)]
pub struct GradualSchedule {
    pub initial: f64,
    pub final_sparsity: f64,
    pub begin: u64,
    pub end: u64,
    pub frequency: u64,
}

impl GradualSchedule {
    /// Standard ramp: 0 → `final_sparsity` over `[begin, end]`, pruning
    /// every 100 steps.
    pub fn new(final_sparsity: f64, begin: u64, end: u64) -> GradualSchedule {
        assert!(begin < end, "pruning window must be non-empty");
        assert!((0.0..=1.0).contains(&final_sparsity));
        GradualSchedule {
            initial: 0.0,
            final_sparsity,
            begin,
            end,
            frequency: 100,
        }
    }

    /// Target sparsity at step `t` (clamped outside the window).
    pub fn sparsity_at(&self, t: u64) -> f64 {
        if t <= self.begin {
            return self.initial;
        }
        if t >= self.end {
            return self.final_sparsity;
        }
        let progress = (t - self.begin) as f64 / (self.end - self.begin) as f64;
        let remaining = (1.0 - progress).powi(3);
        self.final_sparsity + (self.initial - self.final_sparsity) * remaining
    }

    /// True on steps where the mask should be recomputed. Step `end` is
    /// always an update step even when `(end − begin)` is not a multiple
    /// of `frequency` — otherwise the applied mask never reaches
    /// `final_sparsity` on non-divisible windows.
    pub fn is_update_step(&self, t: u64) -> bool {
        t >= self.begin
            && t <= self.end
            && ((t - self.begin).is_multiple_of(self.frequency) || t == self.end)
    }

    /// Recomputes the mask at step `t` from the current weights. When
    /// the target sparsity rises, the new mask prunes survivors of
    /// `previous` only (monotone, as in iterative pruning). When the
    /// target *falls* (densification — possible once the window starts
    /// above `final_sparsity`), the deficit is honored by admitting the
    /// largest-|w| currently-pruned positions rather than silently
    /// clamping to the old survivor set. Pass `None` for the first
    /// update.
    pub fn mask_at(
        &self,
        t: u64,
        weights: &[f32],
        shape: &[usize],
        previous: Option<&Mask>,
    ) -> Mask {
        let target = self.sparsity_at(t);
        match previous {
            None => magnitude_prune(weights, shape, target),
            Some(prev) => {
                let numel: usize = shape.iter().product();
                assert_eq!(weights.len(), numel);
                let keep = ((1.0 - target) * numel as f64).round() as usize;
                if keep > prev.nnz() {
                    return crate::dynamic::grow_to(prev, keep, weights);
                }
                // Rank only the survivors; prune down to the new target.
                let mut surviving: Vec<u32> = prev.indices().as_slice().to_vec();
                surviving.sort_by(|&a, &b| {
                    weights[b as usize]
                        .abs()
                        .partial_cmp(&weights[a as usize].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                surviving.truncate(keep);
                surviving.sort_unstable();
                Mask::new(shape, surviving)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints_and_clamping() {
        let s = GradualSchedule::new(0.9, 100, 1100);
        assert_eq!(s.sparsity_at(0), 0.0);
        assert_eq!(s.sparsity_at(100), 0.0);
        assert_eq!(s.sparsity_at(1100), 0.9);
        assert_eq!(s.sparsity_at(99999), 0.9);
    }

    #[test]
    fn ramp_is_monotone_and_cubic_shaped() {
        let s = GradualSchedule::new(0.9, 0, 1000);
        let mut prev = -1.0f64;
        for t in (0..=1000).step_by(50) {
            let v = s.sparsity_at(t);
            assert!(v >= prev, "not monotone at {t}");
            prev = v;
        }
        // Cubic: fast early, slow late — halfway point is well past
        // half the final sparsity.
        assert!(s.sparsity_at(500) > 0.9 * 0.7, "{}", s.sparsity_at(500));
    }

    #[test]
    fn update_steps_follow_frequency() {
        let s = GradualSchedule {
            initial: 0.0,
            final_sparsity: 0.5,
            begin: 10,
            end: 50,
            frequency: 10,
        };
        let updates: Vec<u64> = (0..60).filter(|&t| s.is_update_step(t)).collect();
        assert_eq!(updates, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn masks_are_monotone_through_the_ramp() {
        let s = GradualSchedule {
            initial: 0.0,
            final_sparsity: 0.8,
            begin: 0,
            end: 400,
            frequency: 100,
        };
        let n = 200usize;
        let weights: Vec<f32> = (0..n).map(|i| ((i * 61) % 199) as f32 * 0.01).collect();
        let mut mask: Option<Mask> = None;
        let mut prev_nnz = usize::MAX;
        for t in (0..=400).step_by(100) {
            let new = s.mask_at(t, &weights, &[n], mask.as_ref());
            assert!(new.nnz() <= prev_nnz, "mask grew at {t}");
            if let Some(prev) = &mask {
                let pk = prev.to_bools();
                for (i, &k) in new.to_bools().iter().enumerate() {
                    assert!(!k || pk[i], "resurrected weight {i} at step {t}");
                }
            }
            prev_nnz = new.nnz();
            mask = Some(new);
        }
        let final_mask = mask.unwrap();
        assert_eq!(final_mask.nnz(), 40, "80% of 200 pruned");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_empty_window() {
        GradualSchedule::new(0.5, 100, 100);
    }

    /// Regression: `(end − begin) % frequency != 0` used to skip the
    /// final update, so the applied mask never reached `final_sparsity`.
    #[test]
    fn end_is_always_an_update_step_on_non_divisible_windows() {
        let s = GradualSchedule {
            initial: 0.0,
            final_sparsity: 0.5,
            begin: 10,
            end: 55,
            frequency: 10,
        };
        let updates: Vec<u64> = (0..70).filter(|&t| s.is_update_step(t)).collect();
        assert_eq!(updates, vec![10, 20, 30, 40, 50, 55]);

        // Applying the mask only on update steps must reach the target.
        let n = 100usize;
        let weights: Vec<f32> = (0..n).map(|i| ((i * 37) % 97) as f32 * 0.01).collect();
        let mut mask: Option<Mask> = None;
        for t in 0..70 {
            if s.is_update_step(t) {
                mask = Some(s.mask_at(t, &weights, &[n], mask.as_ref()));
            }
        }
        assert_eq!(mask.unwrap().nnz(), 50, "final update must hit s_f = 0.5");
    }

    /// A decreasing sparsity target (densification) is honored: the new
    /// mask grows to the requested keep count by admitting the
    /// largest-|w| previously-pruned positions, instead of silently
    /// returning the old survivors.
    #[test]
    fn densification_targets_are_honored() {
        let s = GradualSchedule {
            initial: 0.9,
            final_sparsity: 0.5,
            begin: 0,
            end: 100,
            frequency: 50,
        };
        let n = 100usize;
        // 61 is coprime to 199 and n < 199, so all magnitudes are distinct.
        let weights: Vec<f32> = (0..n).map(|i| ((i * 61) % 199) as f32 * 0.01 + 0.01).collect();
        let start = s.mask_at(0, &weights, &[n], None);
        assert_eq!(start.nnz(), 10);
        let end = s.mask_at(100, &weights, &[n], Some(&start));
        assert_eq!(end.nnz(), 50, "densification must reach the target keep count");
        // Growth keeps every old survivor and admits by magnitude.
        let old = start.to_bools();
        let new = end.to_bools();
        for (i, &was) in old.iter().enumerate() {
            assert!(!was || new[i], "densification dropped survivor {i}");
        }
        let one_shot = magnitude_prune(&weights, &[n], 0.5);
        assert_eq!(end, one_shot, "static weights: grown mask == one-shot mask");
    }
}
