//! Pruning algorithms producing [`Mask`]s.
//!
//! The paper uses You et al.'s "Early-Bird Tickets" (ICLR 2020) to prune
//! networks to 90% sparsity before applying SAMO, and cites the lottery
//! ticket hypothesis literature (Frankle & Carbin) for why such masks
//! preserve accuracy. SAMO itself treats the pruning algorithm as an
//! oracle producing `ind`; this module provides three interchangeable
//! oracles:
//!
//! * [`magnitude_prune`] — keep the largest-|w| fraction per layer (the
//!   standard LTH criterion),
//! * [`global_magnitude_prune`] — one threshold across all layers,
//! * [`random_prune`] — uniformly random mask (control/baseline),
//! * [`EarlyBird`] — the early-bird stopping criterion: track the mask
//!   across training epochs and report a ticket as "drawn" once the mask
//!   distance over a sliding window falls below a tolerance.

use crate::mask::Mask;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Keeps the `(1 - sparsity)` fraction of weights with the largest
/// magnitude in this layer. Ties are broken by index (deterministic).
pub fn magnitude_prune(weights: &[f32], shape: &[usize], sparsity: f64) -> Mask {
    let numel: usize = shape.iter().product();
    assert_eq!(weights.len(), numel);
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let keep = ((1.0 - sparsity) * numel as f64).round() as usize;
    if keep == 0 {
        return Mask::new(shape, vec![]);
    }
    if keep >= numel {
        return Mask::dense(shape);
    }
    // Select the keep-th largest magnitude without a full sort.
    let mut order: Vec<u32> = (0..numel as u32).collect();
    order.select_nth_unstable_by(keep - 1, |&a, &b| {
        let ma = weights[a as usize].abs();
        let mb = weights[b as usize].abs();
        mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut kept: Vec<u32> = order[..keep].to_vec();
    kept.sort_unstable();
    Mask::new(shape, kept)
}

/// Global magnitude pruning: one threshold across several layers, so
/// layers with small weights get pruned harder. Returns one mask per
/// layer, with overall sparsity equal to `sparsity`.
pub fn global_magnitude_prune(layers: &[(&[f32], &[usize])], sparsity: f64) -> Vec<Mask> {
    assert!((0.0..=1.0).contains(&sparsity));
    let total: usize = layers.iter().map(|(w, _)| w.len()).sum();
    let keep = ((1.0 - sparsity) * total as f64).round() as usize;
    // Gather (|w|, layer, idx), select top-keep globally.
    let mut entries: Vec<(f32, u32, u32)> = Vec::with_capacity(total);
    for (li, (w, shape)) in layers.iter().enumerate() {
        let numel: usize = shape.iter().product();
        assert_eq!(w.len(), numel);
        for (i, &v) in w.iter().enumerate() {
            entries.push((v.abs(), li as u32, i as u32));
        }
    }
    if keep < entries.len() && keep > 0 {
        entries.select_nth_unstable_by(keep - 1, |a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
    }
    let kept = if keep >= entries.len() { &entries[..] } else { &entries[..keep] };
    let mut per_layer: Vec<Vec<u32>> = vec![Vec::new(); layers.len()];
    for &(_, li, i) in kept {
        per_layer[li as usize].push(i);
    }
    per_layer
        .into_iter()
        .zip(layers)
        .map(|(mut idx, (_, shape))| {
            idx.sort_unstable();
            Mask::new(shape, idx)
        })
        .collect()
}

/// Uniformly random mask at the requested sparsity (exact count).
pub fn random_prune(shape: &[usize], sparsity: f64, seed: u64) -> Mask {
    let numel: usize = shape.iter().product();
    assert!((0.0..=1.0).contains(&sparsity));
    let keep = ((1.0 - sparsity) * numel as f64).round() as usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<u32> = (0..numel as u32).collect();
    all.shuffle(&mut rng);
    let mut kept: Vec<u32> = all[..keep].to_vec();
    kept.sort_unstable();
    Mask::new(shape, kept)
}

/// Early-Bird ticket detector (You et al., ICLR 2020).
///
/// The original algorithm prunes based on BatchNorm scale factors at each
/// epoch and declares an "early-bird ticket" once the maximum pairwise
/// mask distance within a sliding FIFO window falls below a tolerance
/// (0.1 in the paper), at which point training can switch to the pruned
/// network. We reproduce the criterion over arbitrary magnitude-pruned
/// masks.
pub struct EarlyBird {
    sparsity: f64,
    tolerance: f64,
    window: usize,
    history: VecDeque<Mask>,
}

impl EarlyBird {
    /// `window` is the FIFO length (the paper uses 5), `tolerance` the
    /// mask-distance threshold (the paper uses 0.1).
    pub fn new(sparsity: f64, tolerance: f64, window: usize) -> EarlyBird {
        assert!(window >= 2, "need at least two masks to compare");
        EarlyBird {
            sparsity,
            tolerance,
            window,
            history: VecDeque::new(),
        }
    }

    /// Target sparsity of the ticket being searched for.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Records this epoch's weights; returns `Some(mask)` once the mask
    /// has converged (the "early-bird ticket" is drawn), `None` while the
    /// mask is still moving.
    pub fn observe(&mut self, weights: &[f32], shape: &[usize]) -> Option<Mask> {
        let mask = magnitude_prune(weights, shape, self.sparsity);
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(mask);
        if self.is_converged() {
            self.history.back().cloned()
        } else {
            None
        }
    }

    /// Maximum pairwise distance across the current window, if full.
    pub fn max_distance(&self) -> Option<f64> {
        if self.history.len() < self.window {
            return None;
        }
        let mut max = 0.0f64;
        for i in 0..self.history.len() {
            for j in (i + 1)..self.history.len() {
                max = max.max(self.history[i].distance(&self.history[j]));
            }
        }
        Some(max)
    }

    fn is_converged(&self) -> bool {
        self.max_distance().map(|d| d < self.tolerance).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_keeps_largest() {
        let w = vec![0.1f32, -5.0, 0.2, 3.0, -0.05, 1.0];
        let m = magnitude_prune(&w, &[6], 0.5);
        // Largest three magnitudes: -5.0 (1), 3.0 (3), 1.0 (5).
        assert_eq!(m.indices().as_slice(), &[1, 3, 5]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn magnitude_exact_sparsity() {
        let w: Vec<f32> = (0..1000).map(|i| (i as f32) * 0.001).collect();
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let m = magnitude_prune(&w, &[1000], p);
            let expect = ((1.0 - p) * 1000.0).round() as usize;
            assert_eq!(m.nnz(), expect, "sparsity {p}");
        }
    }

    #[test]
    fn magnitude_extremes() {
        let w = vec![1.0f32; 8];
        assert_eq!(magnitude_prune(&w, &[8], 1.0).nnz(), 0);
        assert_eq!(magnitude_prune(&w, &[8], 0.0).nnz(), 8);
    }

    #[test]
    fn magnitude_deterministic_with_ties() {
        let w = vec![1.0f32; 10];
        let a = magnitude_prune(&w, &[10], 0.5);
        let b = magnitude_prune(&w, &[10], 0.5);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn global_prunes_small_layers_harder() {
        let big = vec![10.0f32; 100];
        let small = vec![0.01f32; 100];
        let masks = global_magnitude_prune(&[(&big, &[100]), (&small, &[100])], 0.5);
        assert_eq!(masks[0].nnz(), 100, "all big weights kept");
        assert_eq!(masks[1].nnz(), 0, "all small weights pruned");
    }

    #[test]
    fn global_total_sparsity_exact() {
        let a: Vec<f32> = (0..300).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..700).map(|i| (i as f32) * 0.5).collect();
        let masks = global_magnitude_prune(&[(&a, &[300]), (&b, &[700])], 0.9);
        let kept: usize = masks.iter().map(|m| m.nnz()).sum();
        assert_eq!(kept, 100);
    }

    #[test]
    fn random_prune_deterministic_and_exact() {
        let m1 = random_prune(&[20, 50], 0.9, 7);
        let m2 = random_prune(&[20, 50], 0.9, 7);
        assert_eq!(m1, m2);
        assert_eq!(m1.nnz(), 100);
        let m3 = random_prune(&[20, 50], 0.9, 8);
        assert_ne!(m1, m3, "different seeds give different masks");
    }

    #[test]
    fn early_bird_detects_stable_mask() {
        let mut eb = EarlyBird::new(0.5, 0.1, 3);
        let stable: Vec<f32> = (0..100).map(|i| if i < 50 { 1.0 } else { 0.01 }).collect();
        assert!(eb.observe(&stable, &[100]).is_none()); // window not full
        assert!(eb.observe(&stable, &[100]).is_none());
        let ticket = eb.observe(&stable, &[100]);
        assert!(ticket.is_some(), "stable mask must converge once window fills");
        let t = ticket.unwrap();
        assert_eq!(t.nnz(), 50);
        assert!(t.indices().iter().all(|&i| i < 50));
    }

    #[test]
    fn early_bird_rejects_moving_mask() {
        let mut eb = EarlyBird::new(0.5, 0.05, 3);
        // Rotate which half is large: masks keep changing.
        for epoch in 0..6 {
            let w: Vec<f32> = (0..100)
                .map(|i| if (i + epoch * 17) % 100 < 50 { 1.0 } else { 0.01 })
                .collect();
            assert!(eb.observe(&w, &[100]).is_none(), "epoch {epoch} converged too early");
        }
        // Then stabilize: converges after `window` stable epochs.
        let stable: Vec<f32> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let mut drawn = None;
        for _ in 0..3 {
            drawn = eb.observe(&stable, &[100]);
        }
        assert!(drawn.is_some());
    }

    #[test]
    fn early_bird_distance_tracks_window() {
        let mut eb = EarlyBird::new(0.5, 0.1, 2);
        assert!(eb.max_distance().is_none());
        let w1: Vec<f32> = (0..10).map(|i| if i < 5 { 1.0 } else { 0.0 }).collect();
        let w2: Vec<f32> = (0..10).map(|i| if i >= 5 { 1.0 } else { 0.0 }).collect();
        eb.observe(&w1, &[10]);
        eb.observe(&w2, &[10]);
        // Masks are complementary: distance = 1.0.
        assert!((eb.max_distance().unwrap() - 1.0).abs() < 1e-12);
    }
}
