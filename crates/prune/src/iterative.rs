//! Iterative magnitude pruning — the original lottery-ticket procedure
//! (Frankle & Carbin, ICLR 2019): repeatedly train, prune a fraction of
//! the *remaining* weights by magnitude, and rewind.
//!
//! SAMO consumes whatever mask the pruning oracle emits; this module
//! provides the IMP schedule so the reproduction covers the LTH
//! literature the paper builds on (its references 3 and 8).

use crate::algorithms::magnitude_prune;
use crate::mask::Mask;

/// State of an iterative magnitude pruning run.
///
/// At each round, [`IterativePruner::prune_round`] removes
/// `per_round_fraction` of the *currently surviving* weights, converging
/// geometrically towards `target_sparsity`.
pub struct IterativePruner {
    shape: Vec<usize>,
    target_sparsity: f64,
    per_round_fraction: f64,
    current: Mask,
    rounds_done: usize,
}

impl IterativePruner {
    /// Standard LTH schedule: prune 20% of survivors per round.
    pub fn new(shape: &[usize], target_sparsity: f64) -> IterativePruner {
        IterativePruner::with_rate(shape, target_sparsity, 0.2)
    }

    /// Custom per-round pruning rate in (0, 1]. `rate == 1.0` is the
    /// degenerate one-shot schedule: a single round prunes straight to
    /// the target (`min_keep` clamping stops it from emptying the mask).
    pub fn with_rate(shape: &[usize], target_sparsity: f64, rate: f64) -> IterativePruner {
        assert!((0.0..=1.0).contains(&target_sparsity));
        assert!(rate > 0.0 && rate <= 1.0, "per-round rate must be in (0, 1]");
        IterativePruner {
            shape: shape.to_vec(),
            target_sparsity,
            per_round_fraction: rate,
            current: Mask::dense(shape),
            rounds_done: 0,
        }
    }

    /// The mask after the rounds performed so far.
    pub fn mask(&self) -> &Mask {
        &self.current
    }

    /// Rounds performed.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// True once the target has been reached: the kept count is down to
    /// `round((1 − target) · numel)` (count-based, so float rounding of
    /// the target cannot strand the schedule one weight short).
    pub fn is_done(&self) -> bool {
        let min_keep =
            ((1.0 - self.target_sparsity) * self.current.numel() as f64).round() as usize;
        self.current.nnz() <= min_keep
    }

    /// Number of rounds the geometric schedule needs from scratch.
    ///
    /// Simulates the exact floor-and-clamp decay `prune_round` performs
    /// instead of the closed-form `⌈ln(1−target)/ln(1−rate)⌉`: the log
    /// quotient explodes on the degenerate rates (`rate == 1.0` makes
    /// `ln(0) = −∞` and the ceil'd quotient returned 0 rounds) and can
    /// disagree with integer flooring near the boundary. The counting
    /// loop terminates because `floor(k·(1−rate)) < k` for every `k ≥ 1`
    /// and `rate > 0`.
    pub fn rounds_needed(&self) -> usize {
        let numel: usize = self.shape.iter().product();
        let min_keep = ((1.0 - self.target_sparsity) * numel as f64).round() as usize;
        let mut keep = numel;
        let mut rounds = 0usize;
        while keep > min_keep {
            keep = (((keep as f64) * (1.0 - self.per_round_fraction)).floor() as usize)
                .max(min_keep);
            rounds += 1;
        }
        rounds
    }

    /// Performs one pruning round given the current (trained) weights:
    /// among the *surviving* positions, the smallest-magnitude
    /// `per_round_fraction` are additionally pruned (never resurrecting
    /// pruned weights). Returns the new mask.
    pub fn prune_round(&mut self, weights: &[f32]) -> Mask {
        let numel: usize = self.shape.iter().product();
        assert_eq!(weights.len(), numel);
        if self.is_done() {
            return self.current.clone();
        }
        let survivors = self.current.nnz();
        // Kill per_round_fraction of survivors, but never past target.
        // `floor` (not `round`): rounding up every round can make the
        // geometric decay fall short of `rounds_needed`; flooring keeps
        // the kept count ≤ numel·(1−rate)^k, which guarantees arrival.
        let min_keep = ((1.0 - self.target_sparsity) * numel as f64).round() as usize;
        let keep = ((survivors as f64) * (1.0 - self.per_round_fraction)).floor() as usize;
        let keep = keep.max(min_keep);

        // Rank only surviving positions by |w|.
        let mut surviving: Vec<u32> = self.current.indices().as_slice().to_vec();
        surviving.sort_by(|&a, &b| {
            weights[b as usize]
                .abs()
                .partial_cmp(&weights[a as usize].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        surviving.truncate(keep);
        surviving.sort_unstable();
        self.current = Mask::new(&self.shape, surviving);
        self.rounds_done += 1;
        self.current.clone()
    }
}

/// One-shot pruning at the same final sparsity, for comparison with the
/// iterative schedule (the LTH paper's ablation).
pub fn one_shot_prune(weights: &[f32], shape: &[usize], sparsity: f64) -> Mask {
    magnitude_prune(weights, shape, sparsity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i + 1) as f32).collect()
    }

    #[test]
    fn geometric_schedule_reaches_target() {
        let w = ramp(1000);
        let mut p = IterativePruner::new(&[1000], 0.9);
        let needed = p.rounds_needed();
        assert_eq!(needed, 11, "log(0.1)/log(0.8) ≈ 10.3 → 11 rounds");
        for _ in 0..needed {
            p.prune_round(&w);
        }
        assert!(p.is_done());
        assert_eq!(p.mask().nnz(), 100);
    }

    #[test]
    fn each_round_prunes_twenty_percent_of_survivors() {
        let w = ramp(1000);
        let mut p = IterativePruner::new(&[1000], 0.99);
        p.prune_round(&w);
        assert_eq!(p.mask().nnz(), 800);
        p.prune_round(&w);
        assert_eq!(p.mask().nnz(), 640);
        p.prune_round(&w);
        assert_eq!(p.mask().nnz(), 512);
    }

    #[test]
    fn never_resurrects_pruned_weights() {
        // Weight values change between rounds (training), but pruned
        // positions stay pruned even if their (stale) magnitude is large.
        let mut p = IterativePruner::with_rate(&[100], 0.9, 0.5);
        let w1 = ramp(100); // prunes indices 0..49
        p.prune_round(&w1);
        let first = p.mask().clone();
        assert_eq!(first.nnz(), 50);
        // New weights where formerly-pruned index 0 is now huge.
        let mut w2 = ramp(100);
        w2[0] = 1e9;
        p.prune_round(&w2);
        let second = p.mask();
        assert!(second.nnz() < first.nnz());
        // Index 0 must remain pruned.
        assert!(!second.to_bools()[0], "pruned weight resurrected");
        // Monotone: second mask's kept set ⊆ first's.
        let f = first.to_bools();
        for (i, &kept) in second.to_bools().iter().enumerate() {
            if kept {
                assert!(f[i], "position {i} appeared from nowhere");
            }
        }
    }

    #[test]
    fn stops_exactly_at_target() {
        let w = ramp(64);
        let mut p = IterativePruner::with_rate(&[64], 0.5, 0.4);
        p.prune_round(&w); // 64 -> 38 (40% off), min_keep 32
        p.prune_round(&w); // would be 23, clamped to 32
        assert!(p.is_done());
        assert_eq!(p.mask().nnz(), 32);
        // Further rounds are no-ops.
        let before = p.mask().clone();
        p.prune_round(&w);
        assert_eq!(p.mask(), &before);
    }

    /// Regression: `rate == 1.0` made the closed-form round count hit
    /// `ln(0) = −∞` and report 0 rounds; it is really one-shot pruning.
    #[test]
    fn rate_one_is_one_shot() {
        let w = ramp(100);
        let mut p = IterativePruner::with_rate(&[100], 0.9, 1.0);
        assert_eq!(p.rounds_needed(), 1);
        p.prune_round(&w);
        assert!(p.is_done());
        assert_eq!(p.mask().nnz(), 10);
    }

    /// `target == 1.0` no longer reports `usize::MAX`: the floor decay
    /// genuinely reaches an empty mask in finitely many rounds.
    #[test]
    fn full_sparsity_target_terminates() {
        let w = ramp(64);
        let mut p = IterativePruner::with_rate(&[64], 1.0, 0.5);
        let needed = p.rounds_needed();
        assert!(needed < usize::MAX && needed > 0, "needed = {needed}");
        for _ in 0..needed {
            p.prune_round(&w);
        }
        assert!(p.is_done());
        assert_eq!(p.mask().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_zero_rate() {
        IterativePruner::with_rate(&[10], 0.5, 0.0);
    }

    #[test]
    fn iterative_equals_one_shot_on_static_weights() {
        // When weights never change, IMP and one-shot pick the same set
        // (both are pure magnitude ranking).
        let w = ramp(200);
        let mut p = IterativePruner::new(&[200], 0.9);
        for _ in 0..p.rounds_needed() {
            p.prune_round(&w);
        }
        let one_shot = one_shot_prune(&w, &[200], 0.9);
        assert_eq!(p.mask(), &one_shot);
    }
}
