//! End-to-end serving over a real loopback socket: the serving
//! invariant (replies bitwise equal to a fresh checkpoint load on
//! every backend), request coalescing, protocol error handling, and
//! the clean-shutdown handshake.

use serve::{
    Backend, BatchPolicy, LoadGenConfig, ServeClient, ServeConfig, ServeError, Server,
    TrainPublisher,
};
use std::path::PathBuf;
use std::time::Duration;

const DIMS: [usize; 3] = [16, 32, 8];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("samo-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn probe(seed: u64) -> Vec<f32> {
    (0..DIMS[0])
        .map(|i| ((i as u64 + 1).wrapping_mul(seed.wrapping_mul(2) + 1) % 997) as f32 / 997.0 - 0.5)
        .collect()
}

#[test]
fn replies_match_a_fresh_load_oracle_bitwise_on_every_backend() {
    let dir = tmpdir("oracle");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 7).unwrap();
    let (step, path) = publisher.publish_after(3).unwrap();
    for backend in Backend::ALL {
        let mut cfg = ServeConfig::new(&dir);
        cfg.backend = backend;
        let server = Server::start(cfg).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        for seed in 0..4u64 {
            let x = probe(seed);
            let want = publisher.oracle_outputs(&path, step, backend, &x).unwrap();
            let reply = client.infer(&x).unwrap();
            assert_eq!(reply.step, step, "{backend}: reply carries the serving step");
            let got: Vec<u32> = reply.output.iter().map(|v| v.to_bits()).collect();
            let oracle: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, oracle, "{backend}: served output must be bitwise the oracle");
        }
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_coalesce_into_batches() {
    let dir = tmpdir("batching");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 11).unwrap();
    publisher.publish_after(1).unwrap();
    let mut cfg = ServeConfig::new(&dir);
    cfg.replicas = 1;
    cfg.policy = BatchPolicy { max_batch: 16, max_wait: Duration::from_millis(2) };
    let server = Server::start(cfg).unwrap();
    let mut lg = LoadGenConfig::new(server.addr().to_string(), DIMS[0]);
    lg.clients = 12;
    lg.duration = Duration::from_millis(400);
    let report = serve::loadgen::run(&lg).unwrap();
    let stats = server.stop();
    assert_eq!(report.failed(), 0, "no request may fail: {report:?}");
    assert!(report.ok > 50, "closed loop must complete real work: {report:?}");
    assert_eq!(stats.requests, report.ok, "server and clients agree on the count");
    assert!(
        stats.batches < stats.requests,
        "12 closed-loop clients must coalesce: {} batches for {} requests",
        stats.batches,
        stats.requests
    );
    assert!(
        stats.mean_batch_fill > 1.5,
        "mean fill {:.2} shows no coalescing",
        stats.mean_batch_fill
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_feature_count_gets_an_error_reply_and_the_connection_survives() {
    let dir = tmpdir("shape");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 13).unwrap();
    publisher.publish_after(1).unwrap();
    let server = Server::start(ServeConfig::new(&dir)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    match client.infer(&vec![1.0; DIMS[0] + 3]) {
        Err(ServeError::Server(text)) => {
            assert!(text.contains("features"), "error names the defect: {text}")
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    // The same connection still serves well-formed requests.
    let reply = client.infer(&probe(1)).unwrap();
    assert_eq!(reply.output.len(), DIMS[2]);
    let stats = server.stop();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.responses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ping_and_clean_shutdown_handshake() {
    let dir = tmpdir("shutdown");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 17).unwrap();
    publisher.publish_after(1).unwrap();
    let server = Server::start(ServeConfig::new(&dir)).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.ping(Duration::from_secs(5)).unwrap();
    assert!(!server.shutdown_requested());
    client.shutdown_server(Duration::from_secs(5)).unwrap();
    assert!(server.wait_shutdown(Duration::from_secs(5)), "shutdown flag must flip");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn starting_without_a_published_checkpoint_is_an_error() {
    let dir = tmpdir("nopublish");
    std::fs::create_dir_all(&dir).unwrap();
    let err = match Server::start(ServeConfig::new(&dir)) {
        Err(e) => e,
        Ok(server) => {
            server.stop();
            panic!("start must fail without a published checkpoint");
        }
    };
    assert!(err.contains("no published checkpoint"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
