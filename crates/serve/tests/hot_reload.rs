//! Hot reload under live load, and the kill-replica fault drill.
//!
//! The load-bearing assertion: while checkpoints are republished under
//! sustained traffic, EVERY reply must be bitwise identical to the
//! oracle of the published checkpoint its step stamp names — reloads
//! may change *when* the served function advances, never let a torn or
//! blended model answer. And none of it may fail a request: reloads
//! swap between batches, crashes respawn and re-send the batch in
//! hand.

use serve::{Backend, ServeClient, ServeConfig, Server, TrainPublisher};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIMS: [usize; 3] = [16, 32, 8];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("samo-serve-reload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn probe() -> Vec<f32> {
    (0..DIMS[0]).map(|i| (i as f32 * 0.37).sin()).collect()
}

#[test]
fn every_reply_under_reload_matches_the_published_oracle_for_its_step() {
    let dir = tmpdir("oracle");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 23).unwrap();
    let x = probe();
    // Oracle per published step, computed at publish time — before
    // retention prunes a superseded generation's file.
    let mut oracles: HashMap<u64, Vec<u32>> = HashMap::new();
    let publish = |publisher: &mut TrainPublisher, oracles: &mut HashMap<u64, Vec<u32>>| {
        let (step, path) = publisher.publish_after(2).unwrap();
        let out = publisher.oracle_outputs(&path, step, Backend::Dense, &x).unwrap();
        oracles.insert(step, out.iter().map(|v| v.to_bits()).collect());
        step
    };
    publish(&mut publisher, &mut oracles);
    let mut cfg = ServeConfig::new(&dir);
    cfg.reload_poll = Duration::from_millis(5);
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // Sustained load: 3 client threads hammer one fixed probe input
    // and record every (step, output) they see.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let x = probe();
                let mut seen: Vec<(u64, Vec<f32>)> = Vec::new();
                let mut failures = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match client.infer_deadline(&x, Duration::from_secs(10)) {
                        Ok(r) => seen.push((r.step, r.output)),
                        Err(_) => failures += 1,
                    }
                }
                (seen, failures)
            })
        })
        .collect();

    // Publish 3 more generations while the load runs, leaving time
    // under load on each generation.
    let mut last_step = 0;
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(120));
        last_step = publish(&mut publisher, &mut oracles);
    }
    // Give the last generation time to land before stopping.
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.stats().serving_step < last_step && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let mut results = Vec::new();
    for w in workers {
        results.push(w.join().unwrap());
    }
    let stats = server.stop();

    let mut total = 0usize;
    let mut steps_served = std::collections::BTreeSet::new();
    for (seen, failures) in &results {
        assert_eq!(*failures, 0, "hot reload must not fail a single request");
        for (step, output) in seen {
            total += 1;
            steps_served.insert(*step);
            let oracle = oracles.get(step).unwrap_or_else(|| {
                panic!("reply stamped step {step}, which was never published")
            });
            let got: Vec<u32> = output.iter().map(|v| v.to_bits()).collect();
            assert_eq!(&got, oracle, "reply at step {step} is not the published model");
        }
    }
    assert!(total > 50, "load must actually run: {total} replies");
    assert!(steps_served.len() >= 2, "must observe the model advancing: {steps_served:?}");
    assert!(steps_served.contains(&last_step), "the final generation must be served");
    assert!(stats.reloads >= 3, "3 publishes must all reload: {}", stats.reloads);
    assert!(stats.last_blackout_ms > 0.0, "blackout must be measured");
    assert_eq!(stats.serving_step, last_step);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_replica_respawns_and_serving_continues() {
    let dir = tmpdir("crash");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 29).unwrap();
    let (step, path) = publisher.publish_after(2).unwrap();
    let mut cfg = ServeConfig::new(&dir);
    cfg.replicas = 2;
    let server = Server::start(cfg).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let x = probe();
    let oracle: Vec<u32> = publisher
        .oracle_outputs(&path, step, Backend::Dense, &x)
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();

    for _ in 0..4 {
        client.infer(&x).unwrap();
    }
    // Kill both replicas through the client-side drill frame.
    client.crash_replica(0).unwrap();
    client.crash_replica(1).unwrap();
    // Every subsequent request must still be answered correctly: the
    // dispatcher respawns dead replicas and re-sends the bounced batch.
    for _ in 0..20 {
        let reply = client.infer(&x).unwrap();
        let got: Vec<u32> = reply.output.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, oracle, "post-crash replies still match the oracle");
    }
    let stats = server.stop();
    assert!(stats.respawns >= 1, "the drill must actually respawn: {stats:?}");
    assert_eq!(stats.errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_after_crash_lands_on_the_respawned_replica_too() {
    let dir = tmpdir("crash-reload");
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 31).unwrap();
    publisher.publish_after(1).unwrap();
    let mut cfg = ServeConfig::new(&dir);
    cfg.replicas = 2;
    cfg.reload_poll = Duration::from_millis(5);
    let server = Server::start(cfg).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let x = probe();
    client.infer(&x).unwrap();
    server.inject_replica_crash(0);
    // Publish a new generation; the swap may hit the dead replica and
    // must respawn it onto the NEW model rather than losing the swap.
    let (step2, path2) = publisher.publish_after(2).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = client.infer(&x).unwrap();
        if reply.step == step2 {
            let oracle: Vec<u32> = publisher
                .oracle_outputs(&path2, step2, Backend::Dense, &x)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u32> = reply.output.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, oracle);
            break;
        }
        assert!(Instant::now() < deadline, "new step never served after crash+reload");
    }
    // Drive enough requests that round-robin provably hits both
    // replicas (batches alternate), all at the new step.
    for _ in 0..10 {
        let reply = client.infer(&x).unwrap();
        assert_eq!(reply.step, step2, "no replica may keep serving the old step");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
