//! The replica pool: one OS thread per model copy, fed batches over a
//! plain mpsc channel — no async runtime, the repo's threads-and-
//! channels discipline throughout.
//!
//! Each replica owns a full [`BuiltModel`] and two reusable buffers;
//! after warmup a batch runs through `Sequential::infer_batch` with
//! **zero heap allocation in the kernels** (`tests/zero_alloc.rs` at
//! the workspace root proves this for all three backends). Commands
//! arrive strictly ordered, which is what makes hot reload atomic
//! *per replica*: a [`ReplicaCmd::Swap`] enqueued between two batches
//! is applied between those batches — a batch is never computed half
//! on the old model and half on the new.
//!
//! [`ReplicaCmd::Crash`] makes the thread return on the spot (the
//! kill-replica fault drill). The dispatcher detects the death on its
//! next send — a closed channel — respawns a fresh replica from the
//! current checkpoint snapshot, and re-sends the batch that bounced,
//! so a crash costs queued work at most, never the batch in hand.

use crate::model::BuiltModel;
use crate::protocol;
use crate::stats::Shared;
use crate::trace;
use comms::tcp::framing;
use comms::Message;
use nn::Layer;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::json::Json;

/// The write half of one client connection, shared by every replica
/// that answers that client. A failed write marks the connection dead
/// (client hung up); the response is counted dropped, not failed —
/// the server did its work.
pub(crate) struct ConnWriter {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl ConnWriter {
    pub fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter { stream: Mutex::new(stream), alive: AtomicBool::new(true) }
    }

    /// Serialized frame write; frames from concurrent replicas must
    /// not interleave on the socket.
    pub fn send(&self, msg: &Message) -> bool {
        if !self.alive.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        match framing::write_message(&mut stream, msg) {
            Ok(()) => true,
            Err(_) => {
                self.alive.store(false, Ordering::Relaxed);
                false
            }
        }
    }
}

/// One queued inference request, carrying everything needed to answer
/// it: the reply route and the enqueue timestamps for latency and the
/// queue-wait trace slice.
pub(crate) struct Pending {
    pub id: u64,
    pub features: Vec<f32>,
    pub enqueued: Instant,
    pub enqueued_us: f64,
    pub conn: Arc<ConnWriter>,
}

/// Commands a replica consumes in order.
pub(crate) enum ReplicaCmd {
    Batch(Vec<Pending>),
    /// Swap in a new model (checkpoint `step`); ack with the replica
    /// index once applied, for the reload-blackout measurement.
    Swap(Box<BuiltModel>, u64, Sender<usize>),
    /// Fault drill: die immediately, abandoning anything still queued.
    Crash,
    Stop,
}

pub(crate) struct ReplicaHandle {
    pub tx: Sender<ReplicaCmd>,
    pub join: JoinHandle<()>,
}

pub(crate) fn spawn_replica(
    idx: usize,
    model: BuiltModel,
    step: u64,
    shared: Arc<Shared>,
) -> ReplicaHandle {
    let (tx, rx) = channel::<ReplicaCmd>();
    let join = std::thread::Builder::new()
        .name(format!("samo-serve-replica-{idx}"))
        .spawn(move || {
            let mut model = model;
            let mut step = step;
            let mut input: Vec<f32> = Vec::new();
            let mut output: Vec<f32> = Vec::new();
            for cmd in rx {
                match cmd {
                    ReplicaCmd::Batch(batch) => {
                        run_batch(idx, &mut model, step, batch, &shared, &mut input, &mut output);
                    }
                    ReplicaCmd::Swap(m, s, ack) => {
                        model = *m;
                        step = s;
                        let _ = ack.send(idx);
                    }
                    ReplicaCmd::Crash => return,
                    ReplicaCmd::Stop => break,
                }
            }
        })
        .expect("spawn replica thread");
    ReplicaHandle { tx, join }
}

fn run_batch(
    idx: usize,
    model: &mut BuiltModel,
    step: u64,
    batch: Vec<Pending>,
    shared: &Shared,
    input: &mut Vec<f32>,
    output: &mut Vec<f32>,
) {
    let lane = idx as u64;
    let t_batch = Instant::now();
    let batch_ts = trace::now_us();
    // Shape-check first: misfits get an error reply, the rest batch.
    let mut good: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        if p.features.len() == model.in_features {
            good.push(p);
        } else {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            let text = format!(
                "request {} has {} features, model takes {}",
                p.id,
                p.features.len(),
                model.in_features
            );
            p.conn.send(&protocol::error_reply(p.id, &text));
        }
    }
    let n = good.len();
    if n == 0 {
        return;
    }
    input.clear();
    for p in &good {
        input.extend_from_slice(&p.features);
        trace::record_slice(
            lane,
            "queue",
            format!("queue req {}", p.id),
            p.enqueued_us,
            batch_ts - p.enqueued_us,
            vec![("id".to_string(), Json::UInt(p.id))],
        );
    }
    let compute_ts = trace::now_us();
    let out_cols = model.seq.infer_batch(input, n, model.in_features, output);
    trace::record_slice(
        lane,
        "compute",
        format!("infer n={n}"),
        compute_ts,
        trace::now_us() - compute_ts,
        vec![("rows".to_string(), Json::UInt(n as u64))],
    );
    for (j, p) in good.iter().enumerate() {
        let out = output[j * out_cols..(j + 1) * out_cols].to_vec();
        if p.conn.send(&protocol::reply(p.id, step, out)) {
            shared.responses.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shared.latency_us.record(p.enqueued.elapsed().as_secs_f64() * 1e6);
    }
    shared.requests.fetch_add(n as u64, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared.batch_fill.record(n as f64);
    trace::record_slice(
        lane,
        "batch",
        format!("batch n={n} step={step}"),
        batch_ts,
        t_batch.elapsed().as_secs_f64() * 1e6,
        vec![
            ("rows".to_string(), Json::UInt(n as u64)),
            ("step".to_string(), Json::UInt(step)),
        ],
    );
}
