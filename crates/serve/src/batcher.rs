//! Fill-or-deadline batching: coalesce queued requests into
//! GEMM-friendly batches without ever stalling a lone request.
//!
//! The continuous batcher's contract is the classic serving trade: a
//! batch dispatches as soon as it holds `max_batch` requests (fill) or
//! `max_wait` has elapsed since its *first* request arrived (deadline),
//! whichever comes first. The deadline is anchored to the first
//! arrival, not refreshed per request, so a steady trickle cannot
//! starve the batch open forever; `max_wait` is therefore a hard bound
//! on the queueing latency any request pays to batching.
//!
//! The collector is generic over the channel's message type: the
//! dispatcher's channel interleaves requests with control traffic
//! (checkpoint swaps, fault drills, shutdown), and a control message
//! arriving mid-fill must neither be dropped nor delay the batch — it
//! is set aside, in order, and handed back to the caller alongside the
//! batch.

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// When a batch dispatches: at `max_batch` requests, or `max_wait`
/// after its first request arrived, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch to coalesce (rows of the batched GEMM). Must be
    /// at least 1; 1 disables coalescing entirely.
    pub max_batch: usize,
    /// Longest a request may wait for company.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy { max_batch: 32, max_wait: Duration::from_millis(1) }
    }
}

/// Collects one batch from `rx`, seeded with the already-received
/// `first` item. `classify` splits each further message into a
/// batchable item (`Ok`) or a control message (`Err`), which is set
/// aside without ending the fill. Returns the batch and the deferred
/// control messages, both in arrival order. Never blocks past
/// `first`'s deadline; a disconnected channel just ends the fill.
pub fn fill_or_deadline<M, T>(
    rx: &Receiver<M>,
    first: T,
    policy: &BatchPolicy,
    mut classify: impl FnMut(M) -> Result<T, M>,
) -> (Vec<T>, Vec<M>) {
    debug_assert!(policy.max_batch >= 1);
    let deadline = Instant::now() + policy.max_wait;
    let mut batch = vec![first];
    let mut control = Vec::new();
    while batch.len() < policy.max_batch {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        match rx.recv_timeout(remaining) {
            Ok(msg) => match classify(msg) {
                Ok(item) => batch.push(item),
                Err(ctl) => control.push(ctl),
            },
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (batch, control)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    /// Messages: even = batchable, odd = control.
    fn classify(m: u32) -> Result<u32, u32> {
        if m.is_multiple_of(2) {
            Ok(m)
        } else {
            Err(m)
        }
    }

    #[test]
    fn fills_to_max_batch_without_waiting_out_the_deadline() {
        let (tx, rx) = channel();
        for m in [2u32, 4, 6, 8, 10] {
            tx.send(m).unwrap();
        }
        let policy = BatchPolicy { max_batch: 4, max_wait: Duration::from_secs(60) };
        let t0 = Instant::now();
        let (batch, control) = fill_or_deadline(&rx, 0, &policy, classify);
        assert!(t0.elapsed() < Duration::from_secs(1), "a full batch must not wait");
        assert_eq!(batch, vec![0, 2, 4, 6], "fills to max_batch in arrival order");
        assert!(control.is_empty());
        assert_eq!(rx.try_recv().unwrap(), 8, "excess stays queued for the next batch");
    }

    #[test]
    fn deadline_cuts_a_short_batch() {
        let (tx, rx) = channel::<u32>();
        tx.send(2).unwrap();
        let policy = BatchPolicy { max_batch: 64, max_wait: Duration::from_millis(20) };
        let t0 = Instant::now();
        let (batch, _) = fill_or_deadline(&rx, 0, &policy, classify);
        let waited = t0.elapsed();
        assert_eq!(batch, vec![0, 2]);
        assert!(waited >= Duration::from_millis(20), "must wait out the deadline: {waited:?}");
        assert!(waited < Duration::from_secs(5), "must not block past it: {waited:?}");
    }

    #[test]
    fn control_messages_are_deferred_in_order_not_dropped() {
        let (tx, rx) = channel();
        for m in [1u32, 2, 3, 4, 5] {
            tx.send(m).unwrap();
        }
        let policy = BatchPolicy { max_batch: 3, max_wait: Duration::from_secs(60) };
        let (batch, control) = fill_or_deadline(&rx, 0, &policy, classify);
        assert_eq!(batch, vec![0, 2, 4]);
        assert_eq!(control, vec![1, 3], "control set aside in arrival order");
        assert_eq!(rx.try_recv().unwrap(), 5, "unread messages stay queued");
    }

    #[test]
    fn max_batch_one_returns_immediately() {
        let (_tx, rx) = channel::<u32>();
        let policy = BatchPolicy { max_batch: 1, max_wait: Duration::from_secs(60) };
        let t0 = Instant::now();
        let (batch, _) = fill_or_deadline(&rx, 8, &policy, classify);
        assert_eq!(batch, vec![8]);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn disconnected_sender_ends_the_fill() {
        let (tx, rx) = channel();
        tx.send(2u32).unwrap();
        drop(tx);
        let policy = BatchPolicy { max_batch: 8, max_wait: Duration::from_secs(60) };
        let (batch, _) = fill_or_deadline(&rx, 0, &policy, classify);
        assert_eq!(batch, vec![0, 2]);
    }
}
