//! Closed-loop SLA load generation: `clients` threads, each holding
//! one connection and issuing the next request the moment the
//! previous reply lands (or its deadline passes). Closed-loop offered
//! load self-regulates — a saturated server slows the clients instead
//! of building an unbounded queue — so throughput and latency are
//! measured at a sustainable operating point, the honest way to read
//! a batching trade-off.
//!
//! Latencies are exact (client-side, merged and sorted across
//! threads, not bucketed), and every reply's checkpoint-step stamp is
//! collected so reload drills can assert which models actually
//! answered.

use crate::client::{ServeClient, ServeError};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    pub addr: String,
    /// Concurrent closed-loop client connections.
    pub clients: usize,
    /// How long to keep offering load.
    pub duration: Duration,
    /// Feature-vector width of each request.
    pub features: usize,
    /// Per-request reply deadline (the SLA).
    pub deadline: Duration,
    pub seed: u64,
}

impl LoadGenConfig {
    pub fn new(addr: impl Into<String>, features: usize) -> LoadGenConfig {
        LoadGenConfig {
            addr: addr.into(),
            clients: 8,
            duration: Duration::from_millis(500),
            features,
            deadline: Duration::from_secs(5),
            seed: 1,
        }
    }
}

#[derive(Debug, Clone)]
pub struct LoadGenReport {
    pub sent: u64,
    pub ok: u64,
    pub timeouts: u64,
    pub errors: u64,
    /// Exact client-side quantiles over completed requests.
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Completed requests per second over the measured window.
    pub throughput_rps: f64,
    /// Distinct checkpoint steps stamped on replies, ascending.
    pub steps_seen: Vec<u64>,
}

impl LoadGenReport {
    /// Requests that got no valid reply: SLA misses plus hard errors.
    pub fn failed(&self) -> u64 {
        self.timeouts + self.errors
    }
}

/// Deterministic pseudo-random f32 in roughly [-1, 1) (SplitMix64).
fn feature(seed: u64, i: u64) -> f32 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 40) as f32) / (1u64 << 23) as f32 - 1.0
}

struct ThreadReport {
    sent: u64,
    ok: u64,
    timeouts: u64,
    errors: u64,
    latencies_us: Vec<f64>,
    steps: BTreeSet<u64>,
}

pub fn run(cfg: &LoadGenConfig) -> Result<LoadGenReport, String> {
    let t0 = Instant::now();
    let stop_at = t0 + cfg.duration;
    let mut joins = Vec::with_capacity(cfg.clients);
    for t in 0..cfg.clients {
        let addr = cfg.addr.clone();
        let (features, deadline) = (cfg.features, cfg.deadline);
        let seed = cfg.seed.wrapping_add(1 + t as u64);
        joins.push(
            std::thread::Builder::new()
                .name(format!("samo-loadgen-{t}"))
                .spawn(move || client_loop(&addr, features, deadline, seed, stop_at))
                .map_err(|e| format!("spawn loadgen client: {e}"))?,
        );
    }
    let mut all = ThreadReport {
        sent: 0,
        ok: 0,
        timeouts: 0,
        errors: 0,
        latencies_us: Vec::new(),
        steps: BTreeSet::new(),
    };
    for j in joins {
        let r = j.join().map_err(|_| "loadgen client panicked".to_string())??;
        all.sent += r.sent;
        all.ok += r.ok;
        all.timeouts += r.timeouts;
        all.errors += r.errors;
        all.latencies_us.extend(r.latencies_us);
        all.steps.extend(r.steps);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    all.latencies_us.sort_by(|a, b| a.total_cmp(b));
    let q = |q: f64| -> f64 {
        if all.latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((q * all.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, all.latencies_us.len());
        all.latencies_us[idx - 1] / 1e3
    };
    Ok(LoadGenReport {
        sent: all.sent,
        ok: all.ok,
        timeouts: all.timeouts,
        errors: all.errors,
        p50_ms: q(0.5),
        p99_ms: q(0.99),
        throughput_rps: all.ok as f64 / elapsed.max(1e-9),
        steps_seen: all.steps.into_iter().collect(),
    })
}

fn client_loop(
    addr: &str,
    features: usize,
    deadline: Duration,
    seed: u64,
    stop_at: Instant,
) -> Result<ThreadReport, String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut r = ThreadReport {
        sent: 0,
        ok: 0,
        timeouts: 0,
        errors: 0,
        latencies_us: Vec::new(),
        steps: BTreeSet::new(),
    };
    let mut x = vec![0.0f32; features];
    while Instant::now() < stop_at {
        for (i, v) in x.iter_mut().enumerate() {
            *v = feature(seed.wrapping_add(r.sent), i as u64);
        }
        r.sent += 1;
        let t0 = Instant::now();
        match client.infer_deadline(&x, deadline) {
            Ok(reply) => {
                r.ok += 1;
                r.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                r.steps.insert(reply.step);
            }
            Err(ServeError::Timeout) => r.timeouts += 1,
            Err(ServeError::Closed) => {
                r.errors += 1;
                break;
            }
            Err(_) => r.errors += 1,
        }
    }
    Ok(r)
}
