//! Perfetto trace of the serving runtime on **pid 4** (pid 0 is the
//! simulated pipeline schedule, pid 1 span timers, pid 2 comms, pid 3
//! the pipeline runtime). One `tid` lane per replica, plus one extra
//! lane (index = replica count) for the reload watcher, so a combined
//! trace from `repro serve` shows each request's life as adjacent
//! slices: its `queue` wait from enqueue to dispatch, the `batch` it
//! was coalesced into, and the `compute` slice inside the batch —
//! with `reload` slices on the watcher lane cutting across them when a
//! hot checkpoint swap lands.
//!
//! Recording is gated on `telemetry::enabled()`; each thread buffers
//! into its own [`telemetry::ThreadLocalSink`] handle and buffers
//! survive thread death, so a replica killed by the crash drill still
//! contributes its slices to [`take_events`].

use telemetry::json::Json;
use telemetry::sink::Handle;
use telemetry::trace::TraceEvent;
use telemetry::ThreadLocalSink;

/// The pid lane for serving events in combined trace files.
pub const SERVE_TRACE_PID: u64 = 4;

static EVENTS: ThreadLocalSink<TraceEvent> = ThreadLocalSink::new();

thread_local! {
    static LOCAL_EVENTS: Handle<TraceEvent> = EVENTS.handle();
}

/// Microseconds on the shared trace clock (see `telemetry::clock`).
pub fn now_us() -> f64 {
    telemetry::clock::now_us()
}

/// Records one slice on a serving lane. `cat` is one of `queue`,
/// `batch`, `compute`, `reload`; the analyzer and the Perfetto UI both
/// split on it.
pub fn record_slice(
    lane: u64,
    cat: &'static str,
    name: String,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Json)>,
) {
    if !telemetry::enabled() {
        return;
    }
    LOCAL_EVENTS.with(|buf| {
        buf.lock().push(TraceEvent {
            name,
            cat: cat.into(),
            pid: SERVE_TRACE_PID,
            tid: lane,
            ts_us,
            dur_us,
            args,
        })
    });
}

/// Drains every recorded serving slice (for trace-file assembly),
/// including buffers of threads that have already exited.
pub fn take_events() -> Vec<TraceEvent> {
    EVENTS.drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_land_on_pid_4_and_drain_once() {
        let _guard = telemetry::registry::test_lock();
        telemetry::set_enabled(true);
        record_slice(2, "compute", "batch n=8".into(), now_us(), 3.0, vec![]);
        std::thread::spawn(|| {
            record_slice(5, "queue", "req 9".into(), 1.0, 2.0, vec![]);
        })
        .join()
        .unwrap();
        let evs = take_events();
        assert!(evs.iter().all(|e| e.pid == SERVE_TRACE_PID));
        assert!(evs.iter().any(|e| e.tid == 2 && e.cat == "compute"));
        assert!(evs.iter().any(|e| e.tid == 5 && e.cat == "queue"), "dead-thread slice survives");
        assert!(take_events().is_empty());
        telemetry::set_enabled(false);
    }
}
