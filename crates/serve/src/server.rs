//! The serving endpoint: listener, per-connection readers, the
//! batching dispatcher, the replica pool, and the reload watcher —
//! all std threads and channels, stitched together exactly like the
//! training transport (20 ms poll loops, shutdown flags, no async
//! runtime).
//!
//! ```text
//!  clients ──TCP──▶ reader threads ──┐
//!                                    │ DispatchMsg::Request
//!                                    ▼
//!  reload watcher ──Reload──▶  dispatcher  ──Batch/Swap──▶ replicas ──▶ ConnWriter ──TCP──▶ clients
//!                               (fill-or-deadline, round-robin,
//!                                respawn-on-dead-replica)
//! ```
//!
//! The dispatcher is the only consumer of the central channel. It
//! seeds a batch with the first request, runs the fill-or-deadline
//! collector (control messages arriving mid-fill are deferred, not
//! dropped — see `batcher`), and hands the batch to the next replica
//! round-robin. A send onto a dead replica's channel (killed by the
//! crash drill) bounces back with the batch, which is re-sent to a
//! freshly spawned replica built from the dispatcher's current
//! checkpoint snapshot — the batch in hand survives every crash.

use crate::batcher::{fill_or_deadline, BatchPolicy};
use crate::model::{build_model, Backend, BuiltModel};
use crate::protocol::{self, ServerBound};
use crate::reload::{spawn_watcher, WatcherConfig};
use crate::replica::{spawn_replica, ConnWriter, Pending, ReplicaCmd, ReplicaHandle};
use crate::stats::{ServeStats, Shared};
use crate::trace;
use comms::tcp::framing;
use nn::mixed::Optimizer;
use samo::{CheckpointSubscriber, SamoLayerState};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Matches the transport's reader poll cadence.
const POLL: Duration = Duration::from_millis(20);

/// Everything a serving endpoint needs to start.
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (read it back
    /// from [`Server::addr`]).
    pub addr: String,
    /// Checkpoint directory watched for `{prefix}.published`.
    pub ckpt_dir: PathBuf,
    pub prefix: String,
    pub backend: Backend,
    /// Model copies, one OS thread each.
    pub replicas: usize,
    pub policy: BatchPolicy,
    /// Optimizer the checkpoints were written under (sizes the
    /// compressed optimizer-state sections when parsing).
    pub opt: Optimizer,
    /// Publish-marker poll cadence.
    pub reload_poll: Duration,
}

impl ServeConfig {
    pub fn new(ckpt_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ckpt_dir: ckpt_dir.into(),
            prefix: "ckpt".to_string(),
            backend: Backend::Dense,
            replicas: 2,
            policy: BatchPolicy::default(),
            opt: crate::harness::adam(),
            reload_poll: Duration::from_millis(25),
        }
    }
}

/// The dispatcher's inbox: requests interleaved with control traffic.
pub(crate) enum DispatchMsg {
    Request(Pending),
    /// Ready-built models from the reload watcher, one per replica,
    /// plus the raw states kept as the respawn snapshot.
    Reload {
        step: u64,
        states: Vec<SamoLayerState>,
        models: Vec<BuiltModel>,
        ack: Sender<usize>,
    },
    /// Fault drill: kill replica `idx`.
    Crash(usize),
    Shutdown,
}

/// A running serving endpoint. Dropping it without [`Server::stop`]
/// leaks threads; tests and the binary always stop explicitly.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    dispatch: Sender<DispatchMsg>,
    listener_join: JoinHandle<()>,
    dispatcher_join: JoinHandle<()>,
    watcher_join: JoinHandle<()>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, loads the currently published checkpoint (an error if
    /// none is published yet — a serving endpoint with no model is a
    /// misconfiguration, not a state to wait in), spawns the replica
    /// pool, and starts accepting.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        if cfg.replicas == 0 {
            return Err("need at least one replica".into());
        }
        if cfg.policy.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        let mut sub = CheckpointSubscriber::new(&cfg.ckpt_dir, &cfg.prefix);
        let (step, path) = sub.poll().ok_or_else(|| {
            format!(
                "no published checkpoint under {} (prefix {:?})",
                cfg.ckpt_dir.display(),
                cfg.prefix
            )
        })?;
        let loaded = crate::model::load_verified(&path, step, &cfg.opt)?;
        let mut models = Vec::with_capacity(cfg.replicas);
        for _ in 0..cfg.replicas {
            models.push(build_model(&loaded.states, cfg.backend)?);
        }

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shared = Arc::new(Shared::new(step));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (dispatch_tx, dispatch_rx) = channel::<DispatchMsg>();

        let handles: Vec<ReplicaHandle> = models
            .into_iter()
            .enumerate()
            .map(|(i, m)| spawn_replica(i, m, step, shared.clone()))
            .collect();

        let dispatcher_join = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let policy = cfg.policy;
            let backend = cfg.backend;
            let states = loaded.states;
            std::thread::Builder::new()
                .name("samo-serve-dispatch".to_string())
                .spawn(move || {
                    dispatch_loop(dispatch_rx, handles, states, step, backend, policy, shared, shutdown)
                })
                .map_err(|e| format!("spawn dispatcher: {e}"))?
        };

        let watcher_join = spawn_watcher(
            WatcherConfig {
                sub,
                opt: cfg.opt.clone(),
                backend: cfg.backend,
                replicas: cfg.replicas,
                poll: cfg.reload_poll,
            },
            shared.clone(),
            dispatch_tx.clone(),
            shutdown.clone(),
        );

        let conn_joins = Arc::new(Mutex::new(Vec::new()));
        let listener_join = {
            let shutdown = shutdown.clone();
            let tx = dispatch_tx.clone();
            let conn_joins = conn_joins.clone();
            std::thread::Builder::new()
                .name("samo-serve-listen".to_string())
                .spawn(move || accept_loop(listener, tx, shutdown, conn_joins))
                .map_err(|e| format!("spawn listener: {e}"))?
        };

        telemetry::log_info!(
            "samo-serve: listening on {addr}, {} x {} replicas, serving step {step}",
            cfg.replicas,
            cfg.backend
        );
        Ok(Server {
            addr,
            shutdown,
            shared,
            dispatch: dispatch_tx,
            listener_join,
            dispatcher_join,
            watcher_join,
            conn_joins,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters, for tests and the load generator mid-run.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Injects the kill-replica fault drill from the server side.
    pub fn inject_replica_crash(&self, idx: usize) {
        let _ = self.dispatch.send(DispatchMsg::Crash(idx));
    }

    /// True once a client's shutdown request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Blocks until a shutdown request arrives or `timeout` passes.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.shutdown_requested() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(POLL);
        }
        true
    }

    /// Stops everything, joins every thread, mirrors the counters into
    /// the global registry, and returns the lifetime totals.
    pub fn stop(self) -> ServeStats {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.dispatch.send(DispatchMsg::Shutdown);
        let _ = self.dispatcher_join.join();
        let _ = self.listener_join.join();
        let _ = self.watcher_join.join();
        let joins = std::mem::take(&mut *self.conn_joins.lock().unwrap_or_else(|e| e.into_inner()));
        for j in joins {
            let _ = j.join();
        }
        self.shared.publish_global();
        self.shared.snapshot()
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<DispatchMsg>,
    shutdown: Arc<AtomicBool>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0u64;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn;
                next_conn += 1;
                let tx = tx.clone();
                let shutdown = shutdown.clone();
                let join = std::thread::Builder::new()
                    .name(format!("samo-serve-conn-{conn_id}"))
                    .spawn(move || conn_loop(stream, tx, shutdown))
                    .expect("spawn conn reader");
                conn_joins.lock().unwrap_or_else(|e| e.into_inner()).push(join);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn conn_loop(mut stream: TcpStream, tx: Sender<DispatchMsg>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    loop {
        match framing::read_message(&mut stream, &shutdown) {
            Ok(Some(msg)) => match protocol::parse_server_bound(msg) {
                Ok(ServerBound::Request { id, features }) => {
                    let pending = Pending {
                        id,
                        features,
                        enqueued: Instant::now(),
                        enqueued_us: trace::now_us(),
                        conn: writer.clone(),
                    };
                    if tx.send(DispatchMsg::Request(pending)).is_err() {
                        return;
                    }
                }
                Ok(ServerBound::Shutdown) => {
                    // Ack first so the requesting client unblocks, then
                    // flip the flag every poll loop watches.
                    writer.send(&protocol::shutdown_ack());
                    shutdown.store(true, Ordering::Relaxed);
                    let _ = tx.send(DispatchMsg::Shutdown);
                    return;
                }
                Ok(ServerBound::CrashReplica(idx)) => {
                    if tx.send(DispatchMsg::Crash(idx)).is_err() {
                        return;
                    }
                }
                Ok(ServerBound::Ping) => {
                    writer.send(&protocol::pong());
                }
                Err(e) => {
                    writer.send(&protocol::error_reply(0, &e));
                }
            },
            Ok(None) => return,         // client hung up, or server shutdown
            Err(_) => return,           // corrupt frame: drop the connection
        }
    }
}

/// The dispatcher: owns the replica pool and the respawn snapshot.
#[allow(clippy::too_many_arguments)]
fn dispatch_loop(
    rx: Receiver<DispatchMsg>,
    mut handles: Vec<ReplicaHandle>,
    mut states: Vec<SamoLayerState>,
    mut step: u64,
    backend: Backend,
    policy: BatchPolicy,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
) {
    let mut rr = 0usize;
    'outer: loop {
        match rx.recv_timeout(POLL) {
            Ok(DispatchMsg::Request(first)) => {
                let (batch, control) = fill_or_deadline(&rx, first, &policy, |m| match m {
                    DispatchMsg::Request(p) => Ok(p),
                    other => Err(other),
                });
                dispatch_batch(
                    batch, &mut handles, &mut rr, &states, step, backend, &shared,
                );
                for ctl in control {
                    if handle_control(ctl, &mut handles, &mut states, &mut step, &shared) {
                        break 'outer;
                    }
                }
            }
            Ok(ctl) => {
                if handle_control(ctl, &mut handles, &mut states, &mut step, &shared) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    for h in &handles {
        let _ = h.tx.send(ReplicaCmd::Stop);
    }
    for h in handles {
        let _ = h.join.join();
    }
}

/// Returns `true` on shutdown.
fn handle_control(
    msg: DispatchMsg,
    handles: &mut [ReplicaHandle],
    states: &mut Vec<SamoLayerState>,
    step: &mut u64,
    shared: &Arc<Shared>,
) -> bool {
    match msg {
        DispatchMsg::Shutdown => true,
        DispatchMsg::Crash(idx) => {
            if let Some(h) = handles.get(idx) {
                let _ = h.tx.send(ReplicaCmd::Crash);
            }
            false
        }
        DispatchMsg::Reload { step: new_step, states: new_states, models, ack } => {
            *states = new_states;
            *step = new_step;
            for (idx, model) in models.into_iter().enumerate() {
                let h = &mut handles[idx];
                if let Err(bounced) = h.tx.send(ReplicaCmd::Swap(Box::new(model), new_step, ack.clone()))
                {
                    // The replica died before the swap: respawn it
                    // straight onto the new model.
                    let ReplicaCmd::Swap(model, s, ack) = bounced.0 else { unreachable!() };
                    *h = spawn_replica(idx, *model, s, shared.clone());
                    shared.respawns.fetch_add(1, Ordering::Relaxed);
                    let _ = ack.send(idx);
                }
            }
            false
        }
        DispatchMsg::Request(_) => unreachable!("requests are batched, not control"),
    }
}

fn dispatch_batch(
    batch: Vec<Pending>,
    handles: &mut [ReplicaHandle],
    rr: &mut usize,
    states: &[SamoLayerState],
    step: u64,
    backend: Backend,
    shared: &Arc<Shared>,
) {
    let idx = *rr % handles.len();
    *rr = rr.wrapping_add(1);
    if let Err(bounced) = handles[idx].tx.send(ReplicaCmd::Batch(batch)) {
        // Dead replica (crash drill): rebuild it from the snapshot and
        // re-send the very batch that bounced.
        let ReplicaCmd::Batch(batch) = bounced.0 else { unreachable!() };
        match build_model(states, backend) {
            Ok(model) => {
                handles[idx] = spawn_replica(idx, model, step, shared.clone());
                shared.respawns.fetch_add(1, Ordering::Relaxed);
                telemetry::log_warn!("serve: replica {idx} died; respawned at step {step}");
                let _ = handles[idx].tx.send(ReplicaCmd::Batch(batch));
            }
            Err(e) => {
                // Snapshot unusable (should be impossible: it built
                // once already). Fail the batch loudly.
                for p in batch {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    p.conn.send(&protocol::error_reply(p.id, &format!("replica rebuild: {e}")));
                }
            }
        }
    }
}
