//! Hot checkpoint reload: watch, verify off-path, swap, measure.
//!
//! A watcher thread polls [`CheckpointSubscriber`] for a new
//! `{prefix}.published` marker (the atomic publish contract from
//! `samo::checkpoint`). On a new publish it does ALL the expensive
//! work on its own thread — read, CRC-validate, prove bitwise against
//! a fresh load ([`crate::load_verified`]), and lower one [`crate::BuiltModel`] per
//! replica — and only then hands the ready models to the dispatcher,
//! which enqueues one swap command per replica. Serving never
//! pauses: a replica applies its swap between two batches, so the only
//! observable cost is the **blackout window** — the span from the
//! first swap enqueued to the last replica's ack, during which mixed
//! old-step/new-step replies coexist (each still bitwise-correct for
//! the step it is stamped with). The watcher measures that window and
//! records it as `serve.reload_blackout_ms`; the bench gates on it.
//!
//! A checkpoint that fails verification is skipped with an error log
//! and a `serve.reload_rejected` count — the serving fleet keeps
//! answering on the model it already trusts.

use crate::model::{build_model, Backend};
use crate::server::DispatchMsg;
use crate::stats::Shared;
use crate::trace;
use nn::mixed::Optimizer;
use samo::CheckpointSubscriber;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::json::Json;

pub(crate) struct WatcherConfig {
    pub sub: CheckpointSubscriber,
    pub opt: Optimizer,
    pub backend: Backend,
    pub replicas: usize,
    pub poll: Duration,
}

pub(crate) fn spawn_watcher(
    cfg: WatcherConfig,
    shared: Arc<Shared>,
    dispatch: Sender<DispatchMsg>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("samo-serve-reload".to_string())
        .spawn(move || watch(cfg, shared, dispatch, shutdown))
        .expect("spawn reload watcher")
}

fn watch(
    mut cfg: WatcherConfig,
    shared: Arc<Shared>,
    dispatch: Sender<DispatchMsg>,
    shutdown: Arc<AtomicBool>,
) {
    let watcher_lane = cfg.replicas as u64;
    while !shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(cfg.poll);
        let Some((step, path)) = cfg.sub.poll() else { continue };
        let t0 = Instant::now();
        let load_ts = trace::now_us();
        // Load + verify + build: all off the serving path.
        let loaded = match crate::model::load_verified(&path, step, &cfg.opt) {
            Ok(l) => l,
            Err(e) => {
                telemetry::log_warn!("serve: rejected published step {step}: {e}");
                telemetry::global().counter("serve.reload_rejected").inc();
                continue;
            }
        };
        let mut models = Vec::with_capacity(cfg.replicas);
        let mut ok = true;
        for _ in 0..cfg.replicas {
            match build_model(&loaded.states, cfg.backend) {
                Ok(m) => models.push(m),
                Err(e) => {
                    telemetry::log_warn!("serve: cannot lower published step {step}: {e}");
                    telemetry::global().counter("serve.reload_rejected").inc();
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Hand the ready models over and time first-swap -> last-ack.
        let (ack_tx, ack_rx) = channel::<usize>();
        let swap_t0 = Instant::now();
        let msg = DispatchMsg::Reload { step, states: loaded.states, models, ack: ack_tx };
        if dispatch.send(msg).is_err() {
            return; // dispatcher gone: server stopping
        }
        let mut acked = 0;
        while acked < cfg.replicas {
            match ack_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(_) => acked += 1,
                Err(_) => break, // a replica died mid-swap; respawn path covers it
            }
        }
        let blackout = swap_t0.elapsed();
        shared.reloads.fetch_add(1, Ordering::Relaxed);
        shared.serving_step.store(step, Ordering::Relaxed);
        shared
            .last_blackout_us
            .store(blackout.as_micros() as u64, Ordering::Relaxed);
        trace::record_slice(
            watcher_lane,
            "reload",
            format!("reload step={step}"),
            load_ts,
            t0.elapsed().as_secs_f64() * 1e6,
            vec![
                ("step".to_string(), Json::UInt(step)),
                ("blackout_us".to_string(), Json::UInt(blackout.as_micros() as u64)),
                ("acked".to_string(), Json::UInt(acked as u64)),
            ],
        );
        telemetry::log_info!(
            "serve: hot-reloaded step {step} on {acked}/{} replicas, blackout {:.2} ms",
            cfg.replicas,
            blackout.as_secs_f64() * 1e3
        );
    }
}
