//! The serving wire protocol, layered on the comms frame format.
//!
//! Requests and replies ride the exact length-prefixed framing the
//! training transport uses (`comms::tcp::framing`), so a serving
//! endpoint speaks the same bytes-on-the-wire dialect as a training
//! rank: `[len | ptype | kind | epoch | id | step | delay | payload]`.
//! The serving dialect claims its own [`Tag::epoch`] magic so a frame
//! from a confused training peer is rejected instead of misread, and
//! reuses the existing [`Kind`]s rather than extending the enum:
//!
//! * [`Kind::P2p`] — inference traffic. A request carries the feature
//!   vector as bit-exact [`Payload::F32`] with a client-chosen `id`;
//!   the reply echoes the `id` and stamps `tag.step` with the
//!   checkpoint step of the model that produced it — the hot-reload
//!   tests key their bitwise oracles off that stamp.
//! * [`Kind::Barrier`] — clean shutdown handshake (`id` 0 request,
//!   `id` 1 ack), mirroring its collective meaning: everyone agrees to
//!   stop.
//! * [`Kind::Telemetry`] — best-effort control: error replies (payload
//!   carries the message text) and the kill-replica fault drill.
//! * [`Kind::Heartbeat`] — liveness ping/pong, echoing the transport's
//!   probe convention (`step` 0 ping, `step` 1 pong).

use comms::{Kind, Message, Payload, Tag};

/// Serving-dialect epoch magic ("SERV"); never collides with training
/// epochs, which start at 0 and bump by 1 per recovery.
pub const PROTO_EPOCH: u32 = 0x5345_5256;

/// `Tag::id` of a shutdown request (Barrier).
pub const SHUTDOWN_ID: u64 = 0;
/// `Tag::id` of a shutdown acknowledgement (Barrier).
pub const SHUTDOWN_ACK_ID: u64 = 1;
/// `Tag::id` marking a kill-replica fault drill (Telemetry); the
/// replica index rides in `tag.step`.
pub const CRASH_DRILL_ID: u64 = u64::MAX - 1;

fn tag(kind: Kind, id: u64, step: u32) -> Tag {
    Tag { epoch: PROTO_EPOCH, kind, id, step }
}

/// An inference request: client-chosen `id`, f32 feature vector.
pub fn request(id: u64, features: Vec<f32>) -> Message {
    Message { tag: tag(Kind::P2p, id, 0), payload: Payload::F32(features) }
}

/// An inference reply: echoes the request `id`, stamps the checkpoint
/// `step` of the serving model (saturated into the u32 tag field).
pub fn reply(id: u64, step: u64, output: Vec<f32>) -> Message {
    let step32 = u32::try_from(step).unwrap_or(u32::MAX);
    Message { tag: tag(Kind::P2p, id, step32), payload: Payload::F32(output) }
}

/// An error reply for request `id` (or 0 when the request could not
/// even be parsed); the payload carries the message text.
pub fn error_reply(id: u64, text: &str) -> Message {
    Message { tag: tag(Kind::Telemetry, id, 0), payload: Payload::Bytes(text.as_bytes().to_vec()) }
}

/// A clean-shutdown request.
pub fn shutdown() -> Message {
    Message { tag: tag(Kind::Barrier, SHUTDOWN_ID, 0), payload: Payload::Bytes(Vec::new()) }
}

/// The server's acknowledgement of a shutdown request.
pub fn shutdown_ack() -> Message {
    Message { tag: tag(Kind::Barrier, SHUTDOWN_ACK_ID, 0), payload: Payload::Bytes(Vec::new()) }
}

/// A fault drill: kill replica `idx`'s thread (the pool must respawn
/// it; see `replica`).
pub fn crash_replica(idx: usize) -> Message {
    let step = u32::try_from(idx).unwrap_or(u32::MAX);
    Message { tag: tag(Kind::Telemetry, CRASH_DRILL_ID, step), payload: Payload::Bytes(Vec::new()) }
}

/// A liveness ping.
pub fn ping() -> Message {
    Message { tag: tag(Kind::Heartbeat, 0, 0), payload: Payload::Bytes(Vec::new()) }
}

/// The pong answering a ping.
pub fn pong() -> Message {
    Message { tag: tag(Kind::Heartbeat, 0, 1), payload: Payload::Bytes(Vec::new()) }
}

/// Everything a client may send a server.
#[derive(Debug, PartialEq)]
pub enum ServerBound {
    Request { id: u64, features: Vec<f32> },
    Shutdown,
    CrashReplica(usize),
    Ping,
}

/// Everything a server may send a client.
#[derive(Debug, PartialEq)]
pub enum ClientBound {
    Reply { id: u64, step: u64, output: Vec<f32> },
    Error { id: u64, text: String },
    ShutdownAck,
    Pong,
}

/// Classifies a decoded frame arriving at the server. `Err` names the
/// defect; the server answers with [`error_reply`] instead of dying.
pub fn parse_server_bound(msg: Message) -> Result<ServerBound, String> {
    if msg.tag.epoch != PROTO_EPOCH {
        return Err(format!("frame epoch {:#010x} is not the serving dialect", msg.tag.epoch));
    }
    match (msg.tag.kind, msg.payload) {
        (Kind::P2p, Payload::F32(features)) => Ok(ServerBound::Request { id: msg.tag.id, features }),
        (Kind::P2p, p) => Err(format!("request {} payload must be F32, got {p:?}", msg.tag.id)),
        (Kind::Barrier, _) if msg.tag.id == SHUTDOWN_ID => Ok(ServerBound::Shutdown),
        (Kind::Telemetry, _) if msg.tag.id == CRASH_DRILL_ID => {
            Ok(ServerBound::CrashReplica(msg.tag.step as usize))
        }
        (Kind::Heartbeat, _) if msg.tag.step == 0 => Ok(ServerBound::Ping),
        (kind, _) => Err(format!("unexpected server-bound frame kind {kind:?} id {}", msg.tag.id)),
    }
}

/// Classifies a decoded frame arriving at a client.
pub fn parse_client_bound(msg: Message) -> Result<ClientBound, String> {
    if msg.tag.epoch != PROTO_EPOCH {
        return Err(format!("frame epoch {:#010x} is not the serving dialect", msg.tag.epoch));
    }
    match (msg.tag.kind, msg.payload) {
        (Kind::P2p, Payload::F32(output)) => Ok(ClientBound::Reply {
            id: msg.tag.id,
            step: u64::from(msg.tag.step),
            output,
        }),
        (Kind::Telemetry, Payload::Bytes(b)) => Ok(ClientBound::Error {
            id: msg.tag.id,
            text: String::from_utf8_lossy(&b).into_owned(),
        }),
        (Kind::Barrier, _) if msg.tag.id == SHUTDOWN_ACK_ID => Ok(ClientBound::ShutdownAck),
        (Kind::Heartbeat, _) if msg.tag.step == 1 => Ok(ClientBound::Pong),
        (kind, _) => Err(format!("unexpected client-bound frame kind {kind:?} id {}", msg.tag.id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comms::tcp::framing;

    fn wire(msg: Message) -> Message {
        let bytes = framing::encode(&msg);
        framing::decode(&bytes[4..]).expect("frame decodes")
    }

    #[test]
    fn request_and_reply_roundtrip_bitwise() {
        let feats = vec![-0.0, f32::MIN_POSITIVE, 1.5e-7, 3.0];
        match parse_server_bound(wire(request(42, feats.clone()))).unwrap() {
            ServerBound::Request { id, features } => {
                assert_eq!(id, 42);
                let got: Vec<u32> = features.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = feats.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "feature bits must survive the wire");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_client_bound(wire(reply(42, 17, feats.clone()))).unwrap() {
            ClientBound::Reply { id, step, output } => {
                assert_eq!((id, step), (42, 17));
                assert_eq!(output.len(), feats.len());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn control_frames_classify() {
        assert_eq!(parse_server_bound(wire(shutdown())).unwrap(), ServerBound::Shutdown);
        assert_eq!(parse_server_bound(wire(crash_replica(3))).unwrap(), ServerBound::CrashReplica(3));
        assert_eq!(parse_server_bound(wire(ping())).unwrap(), ServerBound::Ping);
        assert_eq!(parse_client_bound(wire(shutdown_ack())).unwrap(), ClientBound::ShutdownAck);
        assert_eq!(parse_client_bound(wire(pong())).unwrap(), ClientBound::Pong);
        match parse_client_bound(wire(error_reply(9, "bad shape"))).unwrap() {
            ClientBound::Error { id, text } => assert_eq!((id, text.as_str()), (9, "bad shape")),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn foreign_epoch_is_rejected() {
        let mut msg = request(1, vec![1.0]);
        msg.tag.epoch = 0; // a training-dialect epoch
        assert!(parse_server_bound(msg).is_err());
    }
}
