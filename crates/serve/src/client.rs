//! A blocking serving client: one TCP connection, closed-loop
//! request/reply, deadline-aware reads.
//!
//! The transport-side frame reader (`comms::tcp::framing`) rides out
//! read timeouts forever by design — a training rank would rather
//! stall than miss a collective. A serving client is the opposite: an
//! SLA load generator must be able to *give up* on a reply at its
//! deadline and keep the connection usable. So the client keeps its
//! own incremental frame buffer: a read that hits the deadline
//! mid-frame simply resumes from the buffered prefix on the next
//! call, and a late reply for an abandoned request is skipped by `id`
//! when it finally lands — the stream never desynchronizes.

use crate::protocol::{self, ClientBound};
use comms::tcp::framing;
use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Matches the server's poll cadence.
const POLL: Duration = Duration::from_millis(20);

/// A reply to one inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    pub id: u64,
    /// Checkpoint step of the model that produced the output.
    pub step: u64,
    pub output: Vec<f32>,
}

/// Client-visible failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No reply by the deadline; the request may still complete later.
    Timeout,
    /// The server answered with an error frame.
    Server(String),
    /// The connection died.
    Closed,
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Timeout => f.write_str("timed out waiting for a reply"),
            ServeError::Server(e) => write!(f, "server error: {e}"),
            ServeError::Closed => f.write_str("connection closed"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

pub struct ServeClient {
    stream: TcpStream,
    /// Incremental receive buffer; survives abandoned reads so a
    /// deadline hit mid-frame never tears the stream.
    rdbuf: Vec<u8>,
    /// Total frame bytes (length word included) wanted before the
    /// buffered frame completes; 0 while the length word is pending.
    need: usize,
    next_id: u64,
}

impl ServeClient {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| ServeError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(POLL))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(ServeClient { stream, rdbuf: Vec::new(), need: 0, next_id: 1 })
    }

    /// Sends `features` and blocks for the matching reply until
    /// `deadline`. Late replies to earlier abandoned requests are
    /// discarded by id.
    pub fn infer_deadline(
        &mut self,
        features: &[f32],
        deadline: Duration,
    ) -> Result<InferReply, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&protocol::request(id, features.to_vec()))?;
        let until = Instant::now() + deadline;
        loop {
            match self.read_frame(until)? {
                None => return Err(ServeError::Timeout),
                Some(ClientBound::Reply { id: rid, step, output }) if rid == id => {
                    return Ok(InferReply { id, step, output })
                }
                Some(ClientBound::Error { id: rid, text }) if rid == id || rid == 0 => {
                    return Err(ServeError::Server(text))
                }
                Some(_) => continue, // stale reply or pong: skip
            }
        }
    }

    /// [`Self::infer_deadline`] with a generous 30 s deadline.
    pub fn infer(&mut self, features: &[f32]) -> Result<InferReply, ServeError> {
        self.infer_deadline(features, Duration::from_secs(30))
    }

    /// Round-trips a liveness ping.
    pub fn ping(&mut self, deadline: Duration) -> Result<(), ServeError> {
        self.send(&protocol::ping())?;
        let until = Instant::now() + deadline;
        loop {
            match self.read_frame(until)? {
                None => return Err(ServeError::Timeout),
                Some(ClientBound::Pong) => return Ok(()),
                Some(_) => continue,
            }
        }
    }

    /// Asks the server to kill replica `idx` (fault drill). Fire and
    /// forget: the drill's effect is observed through serving behavior.
    pub fn crash_replica(&mut self, idx: usize) -> Result<(), ServeError> {
        self.send(&protocol::crash_replica(idx))
    }

    /// Requests a clean server shutdown and waits for the ack (or the
    /// server closing the stream, which means the same thing).
    pub fn shutdown_server(&mut self, deadline: Duration) -> Result<(), ServeError> {
        self.send(&protocol::shutdown())?;
        let until = Instant::now() + deadline;
        loop {
            match self.read_frame(until) {
                Ok(None) => return Err(ServeError::Timeout),
                Ok(Some(ClientBound::ShutdownAck)) | Err(ServeError::Closed) => return Ok(()),
                Ok(Some(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, msg: &comms::Message) -> Result<(), ServeError> {
        framing::write_message(&mut self.stream, msg).map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                ServeError::Closed
            }
            _ => ServeError::Io(e.to_string()),
        })
    }

    /// Reads one frame, resuming any buffered partial frame. `Ok(None)`
    /// on deadline; the partial stays buffered for the next call.
    fn read_frame(&mut self, until: Instant) -> Result<Option<ClientBound>, ServeError> {
        loop {
            if self.need == 0 && self.rdbuf.len() >= 4 {
                let len = u32::from_le_bytes(self.rdbuf[..4].try_into().unwrap());
                if len == 0 || len > framing::MAX_FRAME_BYTES {
                    return Err(ServeError::Io(format!("corrupt frame length {len}")));
                }
                self.need = 4 + len as usize;
            }
            if self.need > 0 && self.rdbuf.len() >= self.need {
                let body = self.rdbuf[4..self.need].to_vec();
                self.rdbuf.drain(..self.need);
                self.need = 0;
                let msg = framing::decode(&body).map_err(ServeError::Io)?;
                return protocol::parse_client_bound(msg).map(Some).map_err(ServeError::Io);
            }
            if Instant::now() >= until {
                return Ok(None);
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Err(ServeError::Closed),
                Ok(n) => self.rdbuf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(ServeError::Io(e.to_string())),
            }
        }
    }
}
