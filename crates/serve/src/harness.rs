//! The training side of the serving tests and benches: a deterministic
//! toy-MLP trainer that publishes checkpoints the server hot-reloads.
//!
//! The serving runtime never trains; its whole input surface is the
//! checkpoint directory and the `{prefix}.published` marker. This
//! harness stands in for the training job on the other side of that
//! contract: it builds the repo's toy MLP (alternating `Linear` /
//! `Gelu`, 50%-magnitude-pruned weights, dense biases — the same shape
//! `model::build_model` reconstructs), trains it with a real
//! [`SamoTrainer`] on seeded synthetic regression batches, and
//! publishes through [`CheckpointManager::save_and_publish`] — the
//! atomic tmp + fsync + rename discipline the torn-publish tests pin
//! down. Tests drive [`TrainPublisher::publish_after`] repeatedly to
//! stage the multi-generation reloads, then call
//! [`TrainPublisher::oracle_outputs`] to precompute, per published
//! step, the bitwise reply a correct server must produce.

use crate::model::{build_model, Backend};
use nn::layer::{Layer, Sequential};
use nn::mixed::Optimizer;
use nn::optim::AdamConfig;
use nn::{Gelu, Linear};
use prune::Mask;
use samo::{CheckpointConfig, CheckpointManager, SamoTrainer};
use std::path::{Path, PathBuf};
use tensor::Tensor;

/// The repo-default optimizer; serving assumes it when parsing
/// checkpoints (see `ServeConfig::opt`).
pub fn adam() -> Optimizer {
    Optimizer::Adam(AdamConfig::default())
}

/// The toy MLP: `dims = [in, hidden.., out]`, GELU between linears.
pub fn toy_model(dims: &[usize], seed: u64) -> Sequential {
    assert!(dims.len() >= 2, "dims needs at least [in, out]");
    let mut seq = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        seq = seq.push(Linear::new(w[0], w[1], true, seed + i as u64));
        if i + 2 < dims.len() {
            seq = seq.push(Gelu::new());
        }
    }
    seq
}

/// 50% magnitude pruning on weights, dense biases — the paper's
/// pruned-network setting, and what makes the checkpoint compressible.
pub fn toy_masks(model: &Sequential) -> Vec<Mask> {
    model
        .params()
        .iter()
        .map(|p| {
            let shape = p.value.shape();
            if shape.len() >= 2 {
                prune::magnitude_prune(p.value.as_slice(), shape, 0.5)
            } else {
                Mask::dense(shape)
            }
        })
        .collect()
}

/// A training job that publishes checkpoints for a serving endpoint.
pub struct TrainPublisher {
    model: Sequential,
    trainer: SamoTrainer,
    mgr: CheckpointManager,
    dir: PathBuf,
    dims: Vec<usize>,
    seed: u64,
}

impl TrainPublisher {
    /// Creates the toy model and a checkpoint manager rooted at `dir`
    /// (prefix `ckpt`, the serving default). Nothing is published yet.
    pub fn new(dir: &Path, dims: &[usize], seed: u64) -> Result<TrainPublisher, String> {
        let mut model = toy_model(dims, seed);
        let masks = toy_masks(&model);
        let trainer = SamoTrainer::new(&mut model, masks, adam());
        let mgr = CheckpointManager::new(CheckpointConfig::new(dir))?;
        Ok(TrainPublisher {
            model,
            trainer,
            mgr,
            dir: dir.to_path_buf(),
            dims: dims.to_vec(),
            seed,
        })
    }

    fn batch_for(&self, step: u64) -> (Tensor, Tensor) {
        let (d_in, d_out) = (self.dims[0], *self.dims.last().unwrap());
        let seed = self.seed.wrapping_mul(31).wrapping_add(1000 + step);
        (
            Tensor::randn(&[8, d_in], 1.0, seed),
            Tensor::randn(&[8, d_out], 1.0, seed + 10_000),
        )
    }

    /// Trains `steps` more optimizer steps and atomically publishes the
    /// resulting checkpoint. Returns `(step, path)` of the publish.
    pub fn publish_after(&mut self, steps: usize) -> Result<(u64, PathBuf), String> {
        for _ in 0..steps {
            let step = self.trainer.steps_taken() + self.trainer.steps_skipped();
            let (x, target) = self.batch_for(step);
            let y = self.model.forward(&x);
            let n = y.numel() as f32;
            let mut dy = Tensor::from_vec(
                y.shape(),
                y.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(yi, ti)| 2.0 * (yi - ti) / n)
                    .collect(),
            );
            tensor::ops::scale(self.trainer.loss_scale(), dy.as_mut_slice());
            self.model.backward(&dy);
            self.trainer.step(&mut self.model);
        }
        let step = self.trainer.steps_taken();
        let path = self.mgr.save_and_publish(step, &self.trainer.save())?;
        Ok((step, path))
    }

    /// The bitwise reply a correct server must produce for `probe` at
    /// the checkpoint it is currently serving: loads the published
    /// file exactly as the server does and runs the same
    /// `infer_batch(1)` the replica runs.
    pub fn oracle_outputs(
        &self,
        path: &Path,
        step: u64,
        backend: Backend,
        probe: &[f32],
    ) -> Result<Vec<f32>, String> {
        let loaded = crate::model::load_verified(path, step, &adam())?;
        let mut built = build_model(&loaded.states, backend)?;
        let mut out = Vec::new();
        built.seq.infer_batch(probe, 1, built.in_features, &mut out);
        Ok(out)
    }

    pub fn checkpoint_dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_loadable_checkpoints_that_advance() {
        let dir = std::env::temp_dir().join(format!("samo-serve-harness-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut pub_ = TrainPublisher::new(&dir, &[8, 16, 4], 3).unwrap();
        let (s1, p1) = pub_.publish_after(2).unwrap();
        let (s2, p2) = pub_.publish_after(3).unwrap();
        assert!(s2 > s1, "steps advance: {s1} -> {s2}");
        let probe = vec![0.5; 8];
        let o1 = pub_.oracle_outputs(&p1, s1, Backend::Dense, &probe).unwrap();
        let o2 = pub_.oracle_outputs(&p2, s2, Backend::Dense, &probe).unwrap();
        assert_eq!(o1.len(), 4);
        let same = o1.iter().zip(&o2).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(!same, "training must actually change the served function");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
