//! Checkpoint → servable model: verified loads and backend selection.
//!
//! A SAMO checkpoint stores per-layer compressed model state; serving
//! needs only the dense θ16 compute parameters, widened to f32 (see
//! `SamoLayerState::dense_f32_params` — exactly the values a training
//! forward uses). The builder reconstructs the MLP architecture from
//! the parameter shapes alone — `[out, in]` tensors are linear weights,
//! each followed by its `[out]` bias, with a GELU between consecutive
//! linears (the repo's toy-MLP convention, see `harness`) — and lowers
//! it onto one of three compute backends from DESIGN.md §16:
//!
//! * [`Backend::Dense`] — `Linear`, dense f32 GEMM (AVX2 when detected),
//! * [`Backend::Nm24`] — `NmLinear`, magnitude-projected 2:4 structured
//!   sparse weights and the packed spMM,
//! * [`Backend::Int8`] — `QuantLinear`, per-channel symmetric int8
//!   weights with `maddubs` dot kernels.
//!
//! [`load_verified`] is the only way the serving path reads a
//! checkpoint: on top of the format's own CRC validation it loads the
//! file **twice** and proves the dense parameters bitwise identical
//! across the two loads, so the model swapped into a replica is — by
//! construction, not by trust — exactly what a fresh process would
//! load from that file.

use nn::layer::Sequential;
use nn::mixed::Optimizer;
use nn::{Gelu, Linear, NmLinear, QuantLinear};
use samo::{SamoLayerState, TrainerMeta};
use std::path::{Path, PathBuf};
use tensor::Tensor;

/// Which compute tier a replica runs its forward on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Dense θ16 widened to f32; plain `Linear` GEMM.
    Dense,
    /// 2:4 structured-sparse weights (`NmLinear`); requires
    /// `in_features % 4 == 0` on every linear.
    Nm24,
    /// Per-channel symmetric int8 weights (`QuantLinear`).
    Int8,
}

impl Backend {
    pub const ALL: [Backend; 3] = [Backend::Dense, Backend::Nm24, Backend::Int8];

    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Nm24 => "nm24",
            Backend::Int8 => "int8",
        }
    }

    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "dense" => Ok(Backend::Dense),
            "nm24" => Ok(Backend::Nm24),
            "int8" => Ok(Backend::Int8),
            other => Err(format!("unknown backend {other:?} (dense|nm24|int8)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A checkpoint read, CRC-validated, and proven deterministic.
pub struct LoadedCheckpoint {
    /// Training step the checkpoint file name carries.
    pub step: u64,
    pub path: PathBuf,
    pub states: Vec<SamoLayerState>,
    pub meta: Option<TrainerMeta>,
}

/// Reads `path` and parses it under `opt` (the v2 format CRC-checks
/// every section), then reads and parses it a *second* time and
/// asserts the dense f32 parameters bitwise equal across the loads —
/// the "verified against a fresh load" guarantee the hot-reload path
/// promises before a model is swapped into replicas.
pub fn load_verified(path: &Path, step: u64, opt: &Optimizer) -> Result<LoadedCheckpoint, String> {
    let read = || -> Result<(Vec<SamoLayerState>, Option<TrainerMeta>), String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        samo::serialize::load_checkpoint(&bytes, opt)
    };
    let (states, meta) = read()?;
    let (states2, _) = read()?;
    if states.len() != states2.len() {
        return Err(format!("{}: layer count changed between loads", path.display()));
    }
    for (li, (a, b)) in states.iter().zip(&states2).enumerate() {
        let (pa, pb) = (a.dense_f32_params(), b.dense_f32_params());
        let same = pa.len() == pb.len()
            && pa.iter().zip(&pb).all(|(x, y)| x.to_bits() == y.to_bits());
        if !same {
            return Err(format!(
                "{}: layer {li} dense params differ between two loads of the same file",
                path.display()
            ));
        }
    }
    Ok(LoadedCheckpoint { step, path: path.to_path_buf(), states, meta })
}

/// One replica's servable model: the lowered [`Sequential`] plus the
/// input/output widths the batcher validates request shapes against.
pub struct BuiltModel {
    pub seq: Sequential,
    pub in_features: usize,
    pub out_features: usize,
}

/// Lowers checkpoint layer states onto `backend`. See the module docs
/// for the shape-driven architecture reconstruction.
pub fn build_model(states: &[SamoLayerState], backend: Backend) -> Result<BuiltModel, String> {
    let mut linears: Vec<(Tensor, Option<Tensor>)> = Vec::new();
    for (li, st) in states.iter().enumerate() {
        let shape = st.mask().shape().to_vec();
        let vals = st.dense_f32_params();
        match shape.len() {
            2 => linears.push((Tensor::from_vec(&shape, vals), None)),
            1 => match linears.last_mut() {
                Some((w, bias @ None)) if w.shape()[0] == shape[0] => {
                    *bias = Some(Tensor::from_vec(&shape, vals));
                }
                _ => {
                    return Err(format!(
                        "layer {li}: bias of {} features has no matching weight",
                        shape[0]
                    ))
                }
            },
            _ => return Err(format!("layer {li}: unsupported param rank {}", shape.len())),
        }
    }
    if linears.is_empty() {
        return Err("checkpoint holds no linear layers".into());
    }
    let in_features = linears[0].0.shape()[1];
    let out_features = linears.last().unwrap().0.shape()[0];
    let mut seq = Sequential::new();
    let n = linears.len();
    for (i, (w, b)) in linears.into_iter().enumerate() {
        if backend == Backend::Nm24 && w.shape()[1] % 4 != 0 {
            return Err(format!(
                "nm24 backend needs in_features % 4 == 0, linear {i} has {}",
                w.shape()[1]
            ));
        }
        seq = match backend {
            Backend::Dense => seq.push(Linear::from_weights(w, b)),
            Backend::Nm24 => seq.push(NmLinear::from_dense(&w, b)),
            Backend::Int8 => seq.push(QuantLinear::from_weights(&w, b)),
        };
        if i + 1 < n {
            seq = seq.push(Gelu::new());
        }
    }
    Ok(BuiltModel { seq, in_features, out_features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::layer::Layer;
    use nn::optim::AdamConfig;

    fn adam() -> Optimizer {
        Optimizer::Adam(AdamConfig::default())
    }

    /// States for a 2-linear MLP [8 -> 12 -> 4] with biases.
    fn mlp_states(seed: u64) -> Vec<SamoLayerState> {
        let mk = |shape: &[usize], salt: u64| {
            let n: usize = shape.iter().product();
            let vals: Vec<f32> = (0..n)
                .map(|i| {
                    let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed ^ salt);
                    ((h >> 40) as f32) / (1u64 << 24) as f32 - 0.5
                })
                .collect();
            SamoLayerState::from_params(&vals, prune::Mask::dense(shape), &adam())
        };
        vec![mk(&[12, 8], 1), mk(&[12], 2), mk(&[4, 12], 3), mk(&[4], 4)]
    }

    #[test]
    fn shapes_reconstruct_the_mlp_on_every_backend() {
        let states = mlp_states(7);
        for backend in Backend::ALL {
            let mut m = build_model(&states, backend).unwrap();
            assert_eq!((m.in_features, m.out_features), (8, 4), "{backend}");
            let mut out = Vec::new();
            let cols = m.seq.infer_batch(&[0.25; 16], 2, 8, &mut out);
            assert_eq!(cols, 4, "{backend}");
            assert_eq!(out.len(), 8, "{backend}");
            assert!(out.iter().all(|v| v.is_finite()), "{backend}");
        }
    }

    #[test]
    fn dense_backend_matches_direct_construction_bitwise() {
        let states = mlp_states(11);
        let mut built = build_model(&states, Backend::Dense).unwrap();
        let w1 = Tensor::from_vec(&[12, 8], states[0].dense_f32_params());
        let b1 = Tensor::from_vec(&[12], states[1].dense_f32_params());
        let w2 = Tensor::from_vec(&[4, 12], states[2].dense_f32_params());
        let b2 = Tensor::from_vec(&[4], states[3].dense_f32_params());
        let mut oracle = Sequential::new()
            .push(Linear::from_weights(w1, Some(b1)))
            .push(Gelu::new())
            .push(Linear::from_weights(w2, Some(b2)));
        let x: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        built.seq.infer_batch(&x, 1, 8, &mut got);
        oracle.infer_batch(&x, 1, 8, &mut want);
        let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb);
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        let adam = adam();
        let lone_bias =
            vec![SamoLayerState::from_params(&[0.1; 6], prune::Mask::dense(&[6]), &adam)];
        assert!(build_model(&lone_bias, Backend::Dense).is_err());
        let states = mlp_states(3);
        assert!(build_model(&states[..0], Backend::Dense).is_err(), "empty");
        // 8 and 12 input features are not % 4 == 0? They are; force a bad one.
        let odd = vec![SamoLayerState::from_params(
            &[0.1; 10 * 3],
            prune::Mask::dense(&[10, 3]),
            &adam,
        )];
        assert!(build_model(&odd, Backend::Nm24).is_err(), "nm24 needs in % 4 == 0");
        assert!(build_model(&odd, Backend::Dense).is_ok());
    }

    #[test]
    fn load_verified_rejects_corruption_and_accepts_clean_files() {
        let dir = std::env::temp_dir().join(format!("samo-serve-model-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let states = mlp_states(5);
        let meta = TrainerMeta { loss_scale: 1.0, good_steps: 3, steps_taken: 9, steps_skipped: 0 };
        let bytes = samo::serialize::save_checkpoint(&states, &meta);
        let path = dir.join("ckpt-000000000009.samo");
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_verified(&path, 9, &adam()).unwrap();
        assert_eq!(loaded.step, 9);
        assert_eq!(loaded.states.len(), 4);
        assert_eq!(loaded.meta.as_ref().map(|m| m.steps_taken), Some(9));
        // Flip one payload byte: the CRC layer must refuse it.
        let mut torn = bytes.to_vec();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x40;
        std::fs::write(&path, &torn).unwrap();
        assert!(load_verified(&path, 9, &adam()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
