//! Per-server counters and latency accounting, shared lock-free
//! between the listener, replicas, dispatcher, and reload watcher.
//!
//! The registry in `telemetry` is process-global; tests run several
//! servers in one process, so each server owns its own [`Shared`]
//! block and mirrors it into the global registry only at shutdown
//! (when `telemetry::enabled()`), where `repro serve` drains it into
//! `metrics.jsonl`. Latency and batch-fill use the same bucketed
//! [`Histogram`] the registry hands out, with microsecond bounds wide
//! enough to resolve a p99 from tens of microseconds to seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use telemetry::registry::Histogram;

/// Geometric microsecond bounds, 10 µs .. ~84 s, ratio ~1.3; bucketed
/// quantiles resolve to better than ±15%.
fn latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(60);
    let mut v = 10.0f64;
    while v < 1e8 {
        bounds.push(v);
        v *= 1.3;
    }
    bounds
}

/// One server's live counters. All relaxed: readers want a snapshot,
/// not an ordering.
pub(crate) struct Shared {
    pub requests: AtomicU64,
    pub responses: AtomicU64,
    pub errors: AtomicU64,
    pub dropped: AtomicU64,
    pub batches: AtomicU64,
    pub reloads: AtomicU64,
    pub respawns: AtomicU64,
    pub serving_step: AtomicU64,
    /// Most recent reload blackout (first swap sent → last replica
    /// ack), in microseconds; 0 before any reload.
    pub last_blackout_us: AtomicU64,
    pub latency_us: Histogram,
    pub batch_fill: Histogram,
}

impl Shared {
    pub fn new(initial_step: u64) -> Shared {
        Shared {
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            serving_step: AtomicU64::new(initial_step),
            last_blackout_us: AtomicU64::new(0),
            latency_us: Histogram::with_bounds(&latency_bounds()),
            batch_fill: Histogram::with_bounds(
                &(0..12).map(|i| (1u64 << i) as f64).collect::<Vec<_>>(),
            ),
        }
    }

    pub fn snapshot(&self) -> ServeStats {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeStats {
            requests: r(&self.requests),
            responses: r(&self.responses),
            errors: r(&self.errors),
            dropped: r(&self.dropped),
            batches: r(&self.batches),
            reloads: r(&self.reloads),
            respawns: r(&self.respawns),
            serving_step: r(&self.serving_step),
            last_blackout_ms: r(&self.last_blackout_us) as f64 / 1e3,
            p50_latency_ms: self.latency_us.quantile(0.5).unwrap_or(0.0) / 1e3,
            p99_latency_ms: self.latency_us.quantile(0.99).unwrap_or(0.0) / 1e3,
            mean_batch_fill: self.batch_fill.mean().unwrap_or(0.0),
        }
    }

    /// Mirrors the final counters into the process-global registry
    /// under `serve.*`, for the `metrics.jsonl` drain.
    pub fn publish_global(&self) {
        if !telemetry::enabled() {
            return;
        }
        let reg = telemetry::global();
        let s = self.snapshot();
        reg.counter("serve.requests").add(s.requests);
        reg.counter("serve.responses").add(s.responses);
        reg.counter("serve.errors").add(s.errors);
        reg.counter("serve.batches").add(s.batches);
        reg.counter("serve.reloads").add(s.reloads);
        reg.counter("serve.replica_respawns").add(s.respawns);
        reg.gauge("serve.p50_latency_ms").set(s.p50_latency_ms);
        reg.gauge("serve.p99_latency_ms").set(s.p99_latency_ms);
        reg.gauge("serve.reload_blackout_ms").set_max(s.last_blackout_ms);
        reg.gauge("serve.mean_batch_fill").set(s.mean_batch_fill);
    }
}

/// A server's lifetime totals, reported by `Server::stop` and polled
/// mid-run by tests via `Server::stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    pub requests: u64,
    pub responses: u64,
    pub errors: u64,
    /// Responses abandoned because the client hung up mid-flight.
    pub dropped: u64,
    pub batches: u64,
    pub reloads: u64,
    pub respawns: u64,
    pub serving_step: u64,
    pub last_blackout_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub mean_batch_fill: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_quantiles() {
        let sh = Shared::new(7);
        sh.requests.fetch_add(100, Ordering::Relaxed);
        sh.batches.fetch_add(10, Ordering::Relaxed);
        for _ in 0..90 {
            sh.latency_us.record(1_000.0);
        }
        for _ in 0..10 {
            sh.latency_us.record(500_000.0);
        }
        let s = sh.snapshot();
        assert_eq!((s.requests, s.batches, s.serving_step), (100, 10, 7));
        assert!(s.p50_latency_ms >= 0.5 && s.p50_latency_ms <= 2.0, "p50 {}", s.p50_latency_ms);
        assert!(s.p99_latency_ms >= 100.0, "p99 must see the tail: {}", s.p99_latency_ms);
    }
}
