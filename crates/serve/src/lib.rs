//! samo-serve — a batched inference runtime over SAMO checkpoints,
//! with hot reload (DESIGN.md §17).
//!
//! Training under the paper's memory optimization produces a stream of
//! compressed checkpoints; this crate is the other half of that
//! lifecycle: a serving endpoint that answers inference requests from
//! the **dense θ16 compute parameters** of the latest *published*
//! checkpoint, batching concurrent requests into GEMM-friendly shapes
//! and swapping in newly published checkpoints without dropping a
//! request.
//!
//! The runtime is std threads and channels end to end — the same
//! no-async discipline as the training transport, whose length-
//! prefixed TCP framing it reuses verbatim (`comms::tcp::framing`):
//!
//! * [`protocol`] — the serving dialect over the comms frame format,
//! * [`batcher`] — fill-or-deadline request coalescing,
//! * [`model`] — verified checkpoint loads, backend lowering
//!   (dense / 2:4 structured sparse / int8, DESIGN.md §16),
//! * `replica` (private) — the thread-per-replica pool (crash + respawn),
//! * [`reload`] — the publish-marker watcher and blackout metering,
//! * [`server`] — listener, readers, dispatcher: the endpoint,
//! * [`client`] — a blocking deadline-aware client,
//! * [`loadgen`] — the closed-loop SLA load generator,
//! * [`harness`] — the toy training job the tests and benches publish
//!   checkpoints from,
//! * [`trace`] — request/batch/compute/reload slices on trace pid 4.
//!
//! The serving invariant that everything above hangs off: a reply
//! stamped with checkpoint step `s` is **bitwise identical** to a
//! fresh process loading checkpoint `s` and running the same batched
//! forward — batching, hot reload, and replica crashes change *when*
//! a model answers, never *what* it answers.

pub mod batcher;
pub mod client;
pub mod harness;
pub mod loadgen;
pub mod model;
pub mod protocol;
mod replica;
pub mod reload;
pub mod server;
mod stats;
pub mod trace;

pub use batcher::BatchPolicy;
pub use client::{InferReply, ServeClient, ServeError};
pub use harness::TrainPublisher;
pub use loadgen::{LoadGenConfig, LoadGenReport};
pub use model::{build_model, load_verified, Backend, BuiltModel, LoadedCheckpoint};
pub use server::{ServeConfig, Server};
pub use stats::ServeStats;
