//! `samo-serve` — the serving endpoint, its SLA load generator, and a
//! self-contained cross-process smoke drill.
//!
//! Three modes, mirroring `samo-launch`'s worker/parent split:
//!
//! * `samo-serve --serve --dir CKPT_DIR [--addr A] [--addr-file F]
//!   [--backend dense|nm24|int8] [--replicas N] [--max-batch M]
//!   [--max-wait-us U]` — serve the currently published checkpoint
//!   until a client sends the shutdown frame. The actually bound
//!   address is published atomically to `--addr-file` (write tmp,
//!   rename), so a parent process can rendezvous without a race.
//! * `samo-serve --loadgen --addr A --features F [--clients C]
//!   [--duration-ms D] [--sla-p99-ms S]` — closed-loop load; exits
//!   nonzero if any request fails or the measured p99 misses the SLA.
//! * `samo-serve --smoke [--dir D]` — the CI end-to-end drill: train
//!   and publish a checkpoint, spawn a *child process* serving it,
//!   run a load burst, publish a newer checkpoint mid-burst and
//!   require the serving step to advance (cross-process hot reload),
//!   then shut the child down cleanly. Exits nonzero on any failure.

use serve::{Backend, BatchPolicy, LoadGenConfig, ServeClient, ServeConfig, Server, TrainPublisher};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("--serve") => serve_mode(&args[1..]),
        Some("--loadgen") => loadgen_mode(&args[1..]),
        Some("--smoke") => smoke_mode(&args[1..]),
        _ => Err(format!(
            "usage: samo-serve --serve|--loadgen|--smoke [options]\n{USAGE}"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("samo-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
  --serve   --dir D [--addr A] [--addr-file F] [--backend B] [--replicas N]
            [--max-batch M] [--max-wait-us U]
  --loadgen --addr A --features F [--clients C] [--duration-ms D] [--sla-p99-ms S]
  --smoke   [--dir D]";

/// `--key value` argument lookup; repo-style manual parsing.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn opt_num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{key}: cannot parse {v:?}")),
    }
}

/// Atomic rendezvous-file publish: tmp + rename, like samo-launch.
fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

fn serve_mode(args: &[String]) -> Result<(), String> {
    let dir = opt(args, "--dir").ok_or("--serve needs --dir CKPT_DIR")?;
    let mut cfg = ServeConfig::new(PathBuf::from(dir));
    if let Some(a) = opt(args, "--addr") {
        cfg.addr = a.to_string();
    }
    cfg.backend = Backend::parse(opt(args, "--backend").unwrap_or("dense"))?;
    cfg.replicas = opt_num(args, "--replicas", 2usize)?;
    cfg.policy = BatchPolicy {
        max_batch: opt_num(args, "--max-batch", 32usize)?,
        max_wait: Duration::from_micros(opt_num(args, "--max-wait-us", 1_000u64)?),
    };
    let server = Server::start(cfg)?;
    println!("samo-serve: listening on {}", server.addr());
    if let Some(f) = opt(args, "--addr-file") {
        write_atomic(Path::new(f), &format!("{}\n", server.addr()))?;
    }
    // Serve until a client asks us to stop (no timeout: the parent in
    // --smoke owns our lifetime and always sends the shutdown frame).
    while !server.wait_shutdown(Duration::from_secs(3600)) {}
    let stats = server.stop();
    println!(
        "samo-serve: done; {} requests in {} batches (mean fill {:.1}), \
         {} reloads, {} respawns, p50 {:.2} ms p99 {:.2} ms",
        stats.requests,
        stats.batches,
        stats.mean_batch_fill,
        stats.reloads,
        stats.respawns,
        stats.p50_latency_ms,
        stats.p99_latency_ms
    );
    Ok(())
}

fn loadgen_mode(args: &[String]) -> Result<(), String> {
    let addr = opt(args, "--addr").ok_or("--loadgen needs --addr HOST:PORT")?;
    let features = opt_num(args, "--features", 0usize)?;
    if features == 0 {
        return Err("--loadgen needs --features N (the model's input width)".into());
    }
    let mut cfg = LoadGenConfig::new(addr, features);
    cfg.clients = opt_num(args, "--clients", 8usize)?;
    cfg.duration = Duration::from_millis(opt_num(args, "--duration-ms", 1_000u64)?);
    let sla_p99_ms: f64 = opt_num(args, "--sla-p99-ms", 0.0f64)?;
    let report = serve::loadgen::run(&cfg)?;
    println!(
        "samo-serve loadgen: {} ok / {} sent ({} timeouts, {} errors), \
         {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, steps {:?}",
        report.ok,
        report.sent,
        report.timeouts,
        report.errors,
        report.throughput_rps,
        report.p50_ms,
        report.p99_ms,
        report.steps_seen
    );
    if report.failed() > 0 {
        return Err(format!("{} requests failed", report.failed()));
    }
    if sla_p99_ms > 0.0 && report.p99_ms > sla_p99_ms {
        return Err(format!("p99 {:.2} ms misses the {sla_p99_ms:.2} ms SLA", report.p99_ms));
    }
    Ok(())
}

/// The E2E smoke drill CI runs: cross-process serve + hot reload.
fn smoke_mode(args: &[String]) -> Result<(), String> {
    let dir = match opt(args, "--dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("samo-serve-smoke-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&dir);
    const DIMS: [usize; 3] = [16, 32, 8];
    let mut publisher = TrainPublisher::new(&dir, &DIMS, 42)?;
    let (step0, _) = publisher.publish_after(2)?;
    println!("smoke: published initial checkpoint at step {step0}");

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let addr_file = dir.join("serve.addr");
    let mut child = std::process::Command::new(&exe)
        .args([
            "--serve",
            "--dir",
            dir.to_str().unwrap(),
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--replicas",
            "2",
        ])
        .spawn()
        .map_err(|e| format!("spawn server child: {e}"))?;
    let smoke = (|| -> Result<(), String> {
        // Rendezvous on the atomically published address file.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            if Instant::now() >= deadline {
                return Err("server child never published its address".into());
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        println!("smoke: server up at {addr}");

        // Burst 1 against the initial checkpoint.
        let mut cfg = LoadGenConfig::new(addr.clone(), DIMS[0]);
        cfg.clients = 4;
        cfg.duration = Duration::from_millis(300);
        let r1 = serve::loadgen::run(&cfg)?;
        println!("smoke: burst 1: {} ok, {} failed, steps {:?}", r1.ok, r1.failed(), r1.steps_seen);
        if r1.ok == 0 || r1.failed() > 0 {
            return Err(format!("burst 1: {} ok, {} failed", r1.ok, r1.failed()));
        }

        // Publish a newer checkpoint; the child must hot-reload it.
        let (step1, _) = publisher.publish_after(2)?;
        cfg.seed = 2;
        let reload_deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let r = serve::loadgen::run(&cfg)?;
            if r.failed() > 0 {
                return Err(format!("burst under reload: {} failed", r.failed()));
            }
            if r.steps_seen.contains(&step1) {
                println!("smoke: hot reload observed, serving step {step1}");
                break;
            }
            if Instant::now() >= reload_deadline {
                return Err(format!(
                    "server never served step {step1} (saw {:?})",
                    r.steps_seen
                ));
            }
        }

        // Clean shutdown handshake.
        let mut client = ServeClient::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        client
            .shutdown_server(Duration::from_secs(10))
            .map_err(|e| format!("shutdown: {e}"))?;
        Ok(())
    })();
    if smoke.is_err() {
        let _ = child.kill();
    }
    let status = child.wait().map_err(|e| format!("wait child: {e}"))?;
    smoke?;
    if !status.success() {
        return Err(format!("server child exited with {status}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("smoke: PASS");
    Ok(())
}
